"""p4plint self-tests: the tree gate, per-rule fixtures, baseline, CLI.

Three layers:

* **tree gate** -- running every rule over ``src/repro`` must produce
  zero findings beyond ``lint_baseline.json``, and the baseline itself
  must respect the ratchet policy (strict rules empty, discipline rules
  small and justified);
* **fixture self-tests** -- each rule has a trigger fixture it must
  flag and a near-miss fixture it must pass, so a rule that silently
  stops matching fails its own test rather than quietly passing the
  tree;
* **plumbing** -- baseline round-trip, CLI exit codes and JSON output,
  and :class:`LintRuleError` for unknown rule ids.
"""

from __future__ import annotations

import ast
import io
import json
import time
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    Analyzer,
    Baseline,
    LintRuleError,
    Module,
    Project,
    resolve_rules,
)
from repro.analysis.baseline import BaselineEntry
from repro.analysis.cli import default_baseline_path, default_root
from repro.tools.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"
BASELINE_PATH = REPO_ROOT / "lint_baseline.json"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

#: Rules whose baseline must be empty (ISSUE acceptance criteria).
STRICT_RULES = ("DET001", "TEL001", "EXC001", "RES001")
#: Rules allowed a small justified baseline.
DISCIPLINE_RULES = ("LCK001", "API001", "ASY001", "ASY002")


def load_fixture_project(filename: str, relpath: str) -> Project:
    """Build a one-module project from a fixture, mapping its relpath.

    The mapped relpath controls rule scoping (e.g. DET001's wall-clock
    check only applies under ``repro/simulator/`` and friends).
    """
    path = FIXTURES / filename
    source = path.read_text(encoding="utf-8")
    module = Module(
        path=path,
        relpath=relpath,
        source=source,
        tree=ast.parse(source, filename=str(path)),
    )
    return Project(root=FIXTURES, modules=[module])


def run_rule(rule_id: str, filename: str, relpath: str):
    project = load_fixture_project(filename, relpath)
    report = Analyzer(resolve_rules(select=[rule_id])).run(project)
    return report.findings


# -- the tree gate ---------------------------------------------------------


@pytest.fixture(scope="module")
def tree_report():
    project = Project.load(SRC_ROOT)
    return Analyzer([rule_cls() for rule_cls in ALL_RULES]).run(project)


def test_tree_has_no_nonbaselined_findings(tree_report):
    baseline = Baseline.load(BASELINE_PATH)
    new, _suppressed, unused = baseline.apply(tree_report.findings)
    assert new == [], "non-baselined findings:\n" + "\n".join(
        finding.format() for finding in new
    )
    assert unused == [], "stale baseline entries:\n" + "\n".join(
        f"{entry.rule} {entry.path}: {entry.message}" for entry in unused
    )


def test_baseline_ratchet_policy():
    baseline = Baseline.load(BASELINE_PATH)
    by_rule = baseline.by_rule()
    for rule_id in STRICT_RULES:
        assert not by_rule.get(rule_id), (
            f"{rule_id} must keep an empty baseline; fix the code instead"
        )
    for rule_id, entries in by_rule.items():
        assert rule_id in STRICT_RULES + DISCIPLINE_RULES
        assert len(entries) <= 3, f"{rule_id} baseline exceeds 3 entries"
        for entry in entries:
            assert entry.justification.strip(), (
                f"baseline entry for {entry.rule} at {entry.path} "
                "needs a justification"
            )


def test_tree_lint_is_fast(tree_report):
    """The full-tree run must stay well under the 5 s CI budget."""
    project = Project.load(SRC_ROOT)
    started = time.perf_counter()
    Analyzer([rule_cls() for rule_cls in ALL_RULES]).run(project)
    assert time.perf_counter() - started < 5.0


def test_syntax_errors_surface_as_findings(tmp_path):
    package = tmp_path / "repro"
    package.mkdir()
    (package / "broken.py").write_text("def oops(:\n", encoding="utf-8")
    report = Analyzer([rule_cls() for rule_cls in ALL_RULES]).run(
        Project.load(tmp_path)
    )
    assert [finding.rule for finding in report.findings] == ["SYN000"]


# -- per-rule fixture self-tests ------------------------------------------

# (rule id, trigger fixture, near-miss fixture, mapped relpath,
#  minimum trigger findings)
FIXTURE_CASES = [
    ("DET001", "det001_trigger.py", "det001_nearmiss.py",
     "repro/simulator/fixture.py", 5),
    ("LCK001", "lck001_trigger.py", "lck001_nearmiss.py",
     "repro/observability/fixture.py", 2),
    ("TEL001", "tel001_trigger.py", "tel001_nearmiss.py",
     "repro/observability/fixture.py", 5),
    ("EXC001", "exc001_trigger.py", "exc001_nearmiss.py",
     "repro/portal/fixture.py", 2),
    ("API001", "api001_trigger.py", "api001_nearmiss.py",
     "repro/portal/fixture.py", 2),
    ("ASY001", "asy001_trigger.py", "asy001_nearmiss.py",
     "repro/portal/fixture.py", 3),
    ("ASY002", "asy002_trigger.py", "asy002_nearmiss.py",
     "repro/portal/fixture.py", 2),
    ("RES001", "res001_trigger.py", "res001_nearmiss.py",
     "repro/portal/fixture.py", 3),
]


@pytest.mark.parametrize(
    "rule_id,trigger,nearmiss,relpath,minimum",
    FIXTURE_CASES,
    ids=[case[0] for case in FIXTURE_CASES],
)
def test_rule_flags_trigger_fixture(rule_id, trigger, nearmiss, relpath, minimum):
    findings = run_rule(rule_id, trigger, relpath)
    assert len(findings) >= minimum, [f.format() for f in findings]
    assert {finding.rule for finding in findings} == {rule_id}


@pytest.mark.parametrize(
    "rule_id,trigger,nearmiss,relpath,minimum",
    FIXTURE_CASES,
    ids=[case[0] for case in FIXTURE_CASES],
)
def test_rule_passes_nearmiss_fixture(rule_id, trigger, nearmiss, relpath, minimum):
    findings = run_rule(rule_id, nearmiss, relpath)
    assert findings == [], [f.format() for f in findings]


def test_det001_wall_clock_scoped_to_simulation_paths():
    """The same source outside the clock scopes only reports RNG misuse."""
    in_scope = run_rule("DET001", "det001_trigger.py", "repro/simulator/x.py")
    out_of_scope = run_rule("DET001", "det001_trigger.py", "repro/tools/x.py")
    in_messages = {finding.message for finding in in_scope}
    out_messages = {finding.message for finding in out_of_scope}
    clock_messages = in_messages - out_messages
    assert clock_messages, "expected wall-clock findings in simulator scope"
    assert all("wall-clock" in message for message in clock_messages)
    assert len(out_of_scope) < len(in_scope)


def test_api001_covers_get_state_delta(tree_report):
    """The replication wire method stays under API001's parity contract.

    ``get_state_delta`` (how a standby tails its primary's WAL) must keep
    a handler, a schema entry, and a clean tree gate -- a drift in either
    direction would let replication requests through unvalidated or leave
    an orphan schema rotting.
    """
    from repro.portal import protocol
    from repro.portal.server import PortalServer

    assert "get_state_delta" in protocol.METHOD_SCHEMAS
    assert callable(getattr(PortalServer, "_do_get_state_delta"))
    # The schema constrains `since` (optional integer) rather than
    # accepting arbitrary params.
    assert protocol.METHOD_SCHEMAS["get_state_delta"] == {
        "since": (False, "integer")
    }
    assert not [
        finding
        for finding in tree_report.findings
        if finding.rule == "API001" and "get_state_delta" in finding.message
    ]


def test_analysis_package_lints_clean(tree_report):
    """The analyzer holds itself to its own rules, with no baseline."""
    own = [
        finding
        for finding in tree_report.findings
        if finding.path.startswith("repro/analysis/")
    ]
    assert own == [], [finding.format() for finding in own]


def test_asy001_finding_carries_reachability_chain():
    """The message explains *why* the coroutine can block, hop by hop."""
    findings = run_rule(
        "ASY001", "asy001_trigger.py", "repro/portal/fixture.py"
    )
    transitive = [
        f for f in findings if "handle_transitive" in f.message
    ]
    assert transitive, [f.format() for f in findings]
    message = transitive[0].message
    assert "handle_transitive -> _refresh -> _throttle -> time.sleep()" in message
    assert "no executor hop" in message


def test_asy001_findings_are_deterministic():
    first = run_rule("ASY001", "asy001_trigger.py", "repro/portal/fixture.py")
    second = run_rule("ASY001", "asy001_trigger.py", "repro/portal/fixture.py")
    assert [f.format() for f in first] == [f.format() for f in second]
    lines = [(f.path, f.line, f.col, f.message) for f in first]
    assert lines == sorted(lines)


# -- baseline round-trip ---------------------------------------------------


def test_baseline_round_trip(tmp_path):
    findings = run_rule("LCK001", "lck001_trigger.py", "repro/x/fixture.py")
    assert findings
    baseline = Baseline.from_findings(findings)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    reloaded = Baseline.load(path)
    new, suppressed, unused = reloaded.apply(findings)
    assert new == [] and unused == []
    assert len(suppressed) == len(findings)
    # A finding that was not baselined still fails.
    extra = run_rule("EXC001", "exc001_trigger.py", "repro/x/fixture.py")
    new, _suppressed, _unused = reloaded.apply(findings + extra)
    assert new == extra


def test_baseline_multiset_semantics(tmp_path):
    findings = run_rule("LCK001", "lck001_trigger.py", "repro/x/fixture.py")
    one_entry = Baseline(
        entries=[
            BaselineEntry(
                rule=findings[0].rule,
                path=findings[0].path,
                message=findings[0].message,
            )
        ]
    )
    new, suppressed, _unused = one_entry.apply(findings)
    assert len(suppressed) == 1
    assert len(new) == len(findings) - 1


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_baseline_loads_v1_without_stamps(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "findings": [
                    {"rule": "LCK001", "path": "repro/x.py", "message": "m"}
                ],
            }
        )
    )
    baseline = Baseline.load(path)
    assert len(baseline.entries) == 1
    assert baseline.rule_versions == {}
    assert baseline.stale_versions({"LCK001": "1.0"}) == []


def test_baseline_version_stamps_round_trip(tmp_path):
    baseline = Baseline.from_findings([], rule_versions={"ASY001": "1.0"})
    path = tmp_path / "baseline.json"
    baseline.save(path)
    reloaded = Baseline.load(path)
    assert reloaded.rule_versions == {"ASY001": "1.0"}
    assert reloaded.stale_versions({"ASY001": "2.0"}) == [
        ("ASY001", "1.0", "2.0")
    ]


def test_baseline_update_preserves_justifications():
    findings = run_rule("LCK001", "lck001_trigger.py", "repro/x/fixture.py")
    assert len(findings) >= 2
    old = Baseline(
        entries=[
            BaselineEntry(
                rule=findings[0].rule,
                path=findings[0].path,
                message=findings[0].message,
                justification="reviewed and accepted",
            ),
            # An entry of a rule outside the run passes through untouched.
            BaselineEntry(
                rule="API001", path="repro/y.py", message="other",
                justification="kept",
            ),
        ],
        rule_versions={"LCK001": "0.9", "API001": "1.0"},
    )
    updated = old.updated(findings, {"LCK001": "1.0"}, selected={"LCK001"})
    by_rule = updated.by_rule()
    assert len(by_rule["LCK001"]) == len(findings)
    carried = [e for e in by_rule["LCK001"] if e.justification]
    assert [e.justification for e in carried] == ["reviewed and accepted"]
    assert by_rule["API001"][0].justification == "kept"
    assert updated.rule_versions == {"LCK001": "1.0", "API001": "1.0"}


def test_baseline_restricted_to_selected_rules():
    baseline = Baseline(
        entries=[
            BaselineEntry(rule="LCK001", path="a.py", message="m1"),
            BaselineEntry(rule="ASY001", path="b.py", message="m2"),
        ],
        rule_versions={"LCK001": "1.0", "ASY001": "1.0"},
    )
    restricted = baseline.restricted_to({"LCK001"})
    assert [e.rule for e in restricted.entries] == ["LCK001"]
    assert restricted.rule_versions == {"LCK001": "1.0"}


# -- CLI -------------------------------------------------------------------


def run_cli(*argv: str):
    out = io.StringIO()
    status = cli_main(["lint", *argv], out=out)
    return status, out.getvalue()


def test_cli_defaults_resolve_repo_layout():
    assert default_root() == SRC_ROOT
    assert default_baseline_path(SRC_ROOT) == BASELINE_PATH


def test_cli_exits_zero_with_baseline():
    status, text = run_cli()
    assert status == 0, text
    assert "0 finding(s)" in text


def test_cli_exits_nonzero_without_baseline():
    # The checked-in baseline suppresses at least one finding, so
    # disabling it must flip the exit code.
    status, text = run_cli("--baseline", "none")
    assert status == 1
    assert "LCK001" in text


def test_cli_json_output():
    status, text = run_cli("--format", "json")
    assert status == 0
    document = json.loads(text)
    assert set(document["counts"]) == {rule.id for rule in ALL_RULES}
    assert document["findings"] == []
    assert document["suppressed"] >= 1  # the checked-in LCK001 entry
    assert document["baseline_stale"] == []
    assert document["elapsed_seconds"] < 30.0
    # Per-rule timings, plus the shared index build, are reported.
    assert set(document["timings"]) == {rule.id for rule in ALL_RULES} | {"index"}


def test_cli_select_restricts_rules():
    status, text = run_cli("--format", "json", "--select", "DET001",
                           "--baseline", "none")
    assert status == 0
    document = json.loads(text)
    assert set(document["counts"]) == {"DET001"}


def test_cli_unknown_rule_is_usage_error():
    status, _text = run_cli("--select", "NOPE001")
    assert status == 2


def test_cli_write_baseline_round_trip(tmp_path):
    path = tmp_path / "generated_baseline.json"
    status, text = run_cli("--baseline", str(path), "--write-baseline")
    assert status == 0 and path.exists(), text
    status, text = run_cli("--baseline", str(path))
    assert status == 0, text
    # --write-baseline with the baseline disabled is a usage error.
    status, _text = run_cli("--baseline", "none", "--write-baseline")
    assert status == 2


def test_cli_update_baseline_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    # Seed via --write-baseline, inject a justification, then update.
    status, text = run_cli("--baseline", str(path), "--write-baseline")
    assert status == 0, text
    document = json.loads(path.read_text())
    assert document["version"] == 2
    assert document["rule_versions"]  # stamped for every rule that ran
    for item in document["findings"]:
        item["justification"] = "accepted: " + item["rule"]
    path.write_text(json.dumps(document))
    status, text = run_cli("--baseline", str(path), "--update-baseline")
    assert status == 0, text
    updated = json.loads(path.read_text())
    assert updated["findings"], "tree findings should survive the update"
    assert all(
        item["justification"] == "accepted: " + item["rule"]
        for item in updated["findings"]
    ), updated["findings"]
    status, text = run_cli("--baseline", str(path))
    assert status == 0, text


def test_cli_stale_baseline_entry_is_hard_error(tmp_path):
    path = tmp_path / "baseline.json"
    status, _text = run_cli("--baseline", str(path), "--write-baseline")
    assert status == 0
    document = json.loads(path.read_text())
    document["findings"].append(
        {
            "rule": "LCK001",
            "path": "repro/portal/views.py",
            "message": "a finding that no longer exists",
            "justification": "obsolete",
        }
    )
    path.write_text(json.dumps(document))
    status, text = run_cli("--baseline", str(path))
    assert status == 1, text
    assert "stale baseline entry" in text


def test_cli_rule_version_mismatch_is_usage_error(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    status, _text = run_cli("--baseline", str(path), "--write-baseline")
    assert status == 0
    document = json.loads(path.read_text())
    document["rule_versions"]["ASY001"] = "0.1"
    path.write_text(json.dumps(document))
    status, _text = run_cli("--baseline", str(path))
    assert status == 2
    stderr = capsys.readouterr().err
    assert "ASY001" in stderr and "--update-baseline" in stderr
    # A run that does not select the mismatched rule is unaffected.
    status, _text = run_cli("--baseline", str(path), "--select", "LCK001")
    assert status == 0


def test_cli_text_output_reports_per_rule_timings():
    status, text = run_cli()
    assert status == 0, text
    timing_lines = [
        line for line in text.splitlines() if line.startswith("timings: ")
    ]
    assert len(timing_lines) == 1
    for rule_cls in ALL_RULES:
        assert f"{rule_cls.id}=" in timing_lines[0]
    assert "index=" in timing_lines[0]


def test_resolve_rules_raises_named_error():
    with pytest.raises(LintRuleError) as excinfo:
        resolve_rules(select=["DET001", "BOGUS9"])
    assert "BOGUS9" in str(excinfo.value)
    assert "DET001" in str(excinfo.value)  # known ids listed for the user
    with pytest.raises(LintRuleError):
        resolve_rules(ignore=["NOPE001"])


def test_resolve_rules_select_and_ignore():
    rules = resolve_rules(select=["DET001", "LCK001"], ignore=["LCK001"])
    assert [rule.id for rule in rules] == ["DET001"]
