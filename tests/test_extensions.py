"""Tests for the future-work extensions: coordinate embedding, Nash
bargaining for inter-AS conflicts, and capability-driven caches."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apptracker.caches import deploy_caches
from repro.apptracker.interas import (
    bargaining_from_views,
    client_view_weights,
    nash_bargaining_weights,
)
from repro.apptracker.selection import PeerInfo, RandomSelection
from repro.core.capability import AccessDeniedError, Capability, CapabilityKind
from repro.core.embedding import (
    embed_pdistances,
    embed_with_target_stress,
    embedding_quality,
)
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.pdistance import PDistanceMap, external_view
from repro.network.library import abilene
from repro.network.routing import RoutingTable


def abilene_mileage_view() -> PDistanceMap:
    """A p-distance view from link miles (embeddable: near-metric)."""
    topo = abilene()
    routing = RoutingTable.build(topo)
    prices = {key: link.distance for key, link in topo.links.items()}
    return external_view(topo, routing, prices)


class TestEmbedding:
    def test_dimensions_and_pids(self):
        view = abilene_mileage_view()
        embedding = embed_pdistances(view, dimensions=3)
        assert embedding.dimensions == 3
        assert embedding.pids == view.pids

    def test_low_stress_on_metric_data(self):
        view = abilene_mileage_view()
        embedding = embed_pdistances(view, dimensions=4)
        quality = embedding_quality(view, embedding)
        assert quality.stress < 0.15

    def test_compression_ratio(self):
        view = abilene_mileage_view()
        embedding = embed_pdistances(view, dimensions=2)
        quality = embedding_quality(view, embedding)
        # 11 PIDs: full mesh 121 floats vs 22 coordinates.
        assert quality.compression_ratio == pytest.approx(121 / 22)

    def test_perfect_embedding_of_euclidean_points(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 10, size=(6, 2))
        pids = tuple(f"P{i}" for i in range(6))
        distances = {}
        for i, a in enumerate(pids):
            for j, b in enumerate(pids):
                distances[(a, b)] = float(np.linalg.norm(points[i] - points[j]))
        view = PDistanceMap(pids=pids, distances=distances)
        embedding = embed_pdistances(view, dimensions=2)
        quality = embedding_quality(view, embedding)
        assert quality.stress < 1e-6

    def test_self_distance_zero(self):
        embedding = embed_pdistances(abilene_mileage_view(), dimensions=3)
        assert embedding.distance("SEAT", "SEAT") == 0.0

    def test_materialized_map_valid(self):
        embedding = embed_pdistances(abilene_mileage_view(), dimensions=3)
        approx = embedding.to_pdistance_map()
        assert set(approx.pids) == set(embedding.pids)
        assert approx.distance("SEAT", "NYCM") >= 0

    def test_target_stress_search(self):
        view = abilene_mileage_view()
        embedding, quality = embed_with_target_stress(view, target_stress=0.2)
        assert quality.stress <= 0.2
        assert embedding.dimensions <= 16

    def test_validation(self):
        view = abilene_mileage_view()
        with pytest.raises(ValueError):
            embed_pdistances(view, dimensions=0)
        single = PDistanceMap(pids=("A",), distances={})
        with pytest.raises(ValueError):
            embed_pdistances(single, dimensions=2)
        with pytest.raises(ValueError):
            embed_with_target_stress(view, target_stress=0.0)

    def test_dimensions_clamped(self):
        view = abilene_mileage_view()
        embedding = embed_pdistances(view, dimensions=50)
        assert embedding.dimensions == len(view.pids) - 1


class TestNashBargaining:
    def test_mutual_gain_found(self):
        # Pair p1 is terrible for A, p2 terrible for B, p3 decent for both:
        # the NBS should concentrate on p3.
        pairs = [("a1", "b1"), ("a2", "b2"), ("a3", "b3")]
        cost_a = {pairs[0]: 10.0, pairs[1]: 2.0, pairs[2]: 1.0}
        cost_b = {pairs[0]: 2.0, pairs[1]: 10.0, pairs[2]: 1.0}
        outcome = nash_bargaining_weights(pairs, cost_a, cost_b)
        assert outcome.weights[pairs[2]] > 0.9
        assert outcome.utility_a > 0
        assert outcome.utility_b > 0

    def test_weights_are_distribution(self):
        pairs = [("x", "y"), ("u", "v")]
        outcome = nash_bargaining_weights(
            pairs, {pairs[0]: 3.0, pairs[1]: 1.0}, {pairs[0]: 1.0, pairs[1]: 3.0}
        )
        assert sum(outcome.weights.values()) == pytest.approx(1.0)
        assert all(w >= -1e-9 for w in outcome.weights.values())

    def test_no_deal_returns_uniform(self):
        # Identical costs: no allocation beats uniform for both strictly.
        pairs = [("x", "y"), ("u", "v")]
        costs = {pairs[0]: 2.0, pairs[1]: 2.0}
        outcome = nash_bargaining_weights(pairs, costs, costs)
        assert outcome.weights[pairs[0]] == pytest.approx(0.5)
        assert outcome.nash_product == 0.0

    def test_symmetric_conflict_splits_surplus(self):
        # A prefers pair 0, B prefers pair 1, both hate pair 2; symmetric.
        pairs = [("p", "q"), ("r", "s"), ("t", "u")]
        cost_a = {pairs[0]: 1.0, pairs[1]: 5.0, pairs[2]: 9.0}
        cost_b = {pairs[0]: 5.0, pairs[1]: 1.0, pairs[2]: 9.0}
        outcome = nash_bargaining_weights(pairs, cost_a, cost_b)
        assert outcome.utility_a == pytest.approx(outcome.utility_b, rel=0.05)
        assert outcome.weights[pairs[2]] < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            nash_bargaining_weights([], {}, {})
        pairs = [("x", "y")]
        with pytest.raises(ValueError):
            nash_bargaining_weights(pairs, {pairs[0]: -1.0}, {pairs[0]: 1.0})

    def test_from_views(self):
        pids = ("A1", "B1")
        view_a = PDistanceMap(pids=pids, distances={("A1", "B1"): 1.0, ("B1", "A1"): 1.0})
        view_b = PDistanceMap(pids=pids, distances={("A1", "B1"): 2.0, ("B1", "A1"): 2.0})
        outcome = bargaining_from_views(view_a, view_b, [("A1", "B1")])
        assert outcome.weights[("A1", "B1")] == pytest.approx(1.0)

    def test_client_view_weights_delegates(self):
        view = abilene_mileage_view()
        weights = client_view_weights(view, "SEAT", ["NYCM", "SNVA"], gamma=1.0)
        assert weights["SNVA"] > weights["NYCM"]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=20.0),
                st.floats(min_value=0.1, max_value=20.0),
            ),
            min_size=2,
            max_size=5,
        )
    )
    def test_nbs_never_worse_than_disagreement(self, costs):
        pairs = [(f"s{i}", f"d{i}") for i in range(len(costs))]
        cost_a = {pair: a for pair, (a, _) in zip(pairs, costs)}
        cost_b = {pair: b for pair, (_, b) in zip(pairs, costs)}
        outcome = nash_bargaining_weights(pairs, cost_a, cost_b)
        assert outcome.utility_a >= -1e-9
        assert outcome.utility_b >= -1e-9


class TestCacheDeployment:
    def make_itracker(self):
        itracker = ITracker(
            topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        itracker.capabilities.add(
            Capability(CapabilityKind.CACHE, pid="NYCM", capacity_mbps=500.0)
        )
        itracker.capabilities.add(
            Capability(CapabilityKind.ON_DEMAND_SERVER, pid="CHIN", capacity_mbps=200.0)
        )
        return itracker

    def test_deploys_advertised_caches(self):
        deployment = deploy_caches(self.make_itracker(), "apptracker", first_peer_id=100)
        assert len(deployment.seeds) == 2
        assert deployment.total_capacity_mbps == pytest.approx(700.0)
        assert {seed.pid for seed in deployment.seeds} == {"NYCM", "CHIN"}
        assert set(deployment.access_overrides) == {100, 101}

    def test_access_control_enforced(self):
        itracker = self.make_itracker()
        itracker.capabilities.trust("friendly")
        with pytest.raises(AccessDeniedError):
            deploy_caches(itracker, "stranger", first_peer_id=100)
        assert deploy_caches(itracker, "friendly", first_peer_id=100).seeds

    def test_default_capacity_applied(self):
        itracker = ITracker(
            topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        itracker.capabilities.add(Capability(CapabilityKind.CACHE, pid="SEAT"))
        deployment = deploy_caches(itracker, "x", first_peer_id=5, default_capacity_mbps=77.0)
        assert deployment.access_overrides[5][0] == 77.0

    def test_cache_accelerates_swarm(self):
        """A capability cache at a popular PoP cuts completion time."""
        from repro.simulator.swarm import SwarmConfig, SwarmSimulation
        from repro.workloads.placement import place_peers

        topo = abilene()
        routing = RoutingTable.build(topo)
        rng = random.Random(4)
        peers = place_peers(topo, 20, rng, first_id=1)
        origin = PeerInfo(peer_id=0, pid="CHIN", as_number=topo.node("CHIN").as_number)
        config = SwarmConfig(
            file_mbit=32.0, block_mbit=2.0, neighbors=8, join_window=5.0,
            access_up_mbps=2.0, access_down_mbps=10.0, seed_up_mbps=4.0,
            completion_quantum=0.05, rng_seed=6,
        )

        plain = SwarmSimulation(
            topo, routing, config, RandomSelection(), peers, [origin]
        ).run(until=50000)

        itracker = self.make_itracker()
        deployment = deploy_caches(itracker, "apptracker", first_peer_id=100)
        cached = SwarmSimulation(
            topo,
            routing,
            config,
            RandomSelection(),
            peers,
            [origin] + deployment.seeds,
            access_overrides=deployment.access_overrides,
        ).run(until=50000)

        assert cached.mean_completion() < plain.mean_completion()
