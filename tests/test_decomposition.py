"""Tests for the optimization-decomposition loop (Sec. 5)."""

import numpy as np
import pytest

from repro.core.decomposition import DecompositionLoop, optimality_gap
from repro.core.objectives import BandwidthDistanceProduct, MinMaxUtilization
from repro.core.session import SessionDemand
from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.network.topology import Topology


def diamond_topology():
    """A and C connected via B (cap 10) and via D (cap 10)."""
    topo = Topology()
    for pid in "ABCD":
        topo.add_pid(pid)
    topo.add_edge("A", "B", capacity=10.0)
    topo.add_edge("B", "C", capacity=10.0)
    topo.add_edge("A", "D", capacity=10.0)
    topo.add_edge("D", "C", capacity=10.0)
    return topo


def swarm(pids, cap=5.0, name="swarm"):
    return SessionDemand(
        name=name,
        uploads={pid: cap for pid in pids},
        downloads={pid: cap for pid in pids},
    )


def make_loop(topo, sessions, objective=None, **kwargs):
    routing = RoutingTable.build(topo)
    return DecompositionLoop(
        topology=topo,
        routing=routing,
        objective=objective or MinMaxUtilization(),
        sessions=sessions,
        **kwargs,
    )


class TestLoopMechanics:
    def test_initial_prices_on_simplex(self):
        loop = make_loop(diamond_topology(), [swarm("ABCD")])
        prices = loop.initial_prices()
        capacities = np.array(
            [loop.topology.links[key].capacity for key in loop.topology.links]
        )
        assert float(capacities @ prices) == pytest.approx(1.0)

    def test_price_update_stays_on_simplex(self):
        loop = make_loop(diamond_topology(), [swarm("ABCD")])
        prices = loop.initial_prices()
        updated = loop.price_update(prices, {("A", "B"): 5.0})
        capacities = np.array(
            [loop.topology.links[key].capacity for key in loop.topology.links]
        )
        assert float(capacities @ updated) == pytest.approx(1.0)
        assert np.all(updated >= 0)

    def test_hot_link_price_rises(self):
        loop = make_loop(diamond_topology(), [swarm("ABCD")], step_size=0.01)
        prices = loop.initial_prices()
        updated = loop.price_update(prices, {("A", "B"): 9.0})
        order = list(loop.topology.links)
        hot = order.index(("A", "B"))
        cold = order.index(("D", "C"))
        assert updated[hot] > updated[cold]

    def test_run_produces_history(self):
        loop = make_loop(diamond_topology(), [swarm("ABCD")])
        result = loop.run(n_iterations=5)
        assert result.iterations == 5
        assert len(result.price_history) == 5
        assert len(result.final_patterns) == 1

    def test_invalid_parameters_rejected(self):
        topo = diamond_topology()
        with pytest.raises(ValueError):
            make_loop(topo, [swarm("ABCD")], step_size=0.0)
        with pytest.raises(ValueError):
            make_loop(topo, [swarm("ABCD")], damping=0.0)
        with pytest.raises(ValueError):
            make_loop(topo, [swarm("ABCD")]).run(n_iterations=0)

    def test_throughput_floor_maintained(self):
        loop = make_loop(diamond_topology(), [swarm("ABCD", cap=2.0)], beta=0.9)
        result = loop.run(n_iterations=8)
        from repro.core.session import max_matching_throughput

        opt, _ = max_matching_throughput(loop.sessions[0])
        assert result.final_patterns[0].total() >= 0.9 * opt - 1e-6

    def test_custom_best_response_used(self):
        from repro.core.session import TrafficPattern

        calls = []

        def fixed_response(session, pdistance):
            calls.append(session.name)
            return TrafficPattern(flows={("A", "C"): 1.0})

        loop = make_loop(
            diamond_topology(), [swarm("ABCD")], best_response=fixed_response
        )
        result = loop.run(n_iterations=3)
        assert calls == ["swarm"] * 3
        assert result.final_patterns[0].flow("A", "C") == pytest.approx(1.0)


class TestConvergence:
    def test_mlu_approaches_centralized_optimum(self):
        """The headline decomposition property: the distributed loop's MLU
        comes close to the full-information LP optimum."""
        topo = diamond_topology()
        sessions = [swarm("ABCD", cap=4.0)]
        # Damping < 1 is essential here: with theta = 1 the best response
        # oscillates between equal-cost vertex solutions (the behaviour the
        # paper's damped update t + theta * (t-bar - t) is designed to fix);
        # a diminishing schedule then averages the residual oscillation out.
        loop = make_loop(
            topo, sessions, step_size=0.02, beta=1.0, damping=0.5, step_decay=0.1
        )
        result = loop.run(n_iterations=80)
        achieved, optimum = optimality_gap(loop, result)
        assert optimum > 0
        assert achieved <= optimum * 1.25 + 1e-9

    def test_mlu_improves_over_first_iteration(self):
        topo = abilene()
        pids = ["SEAT", "NYCM", "CHIN", "ATLA", "WASH", "LOSA"]
        sessions = [swarm(pids, cap=500.0)]
        loop = make_loop(topo, sessions, step_size=0.001, beta=0.9)
        result = loop.run(n_iterations=30)
        assert result.best_objective <= result.objective_history[0] + 1e-9

    def test_converged_detection(self):
        loop = make_loop(diamond_topology(), [swarm("ABCD", cap=1.0)], step_size=0.01)
        result = loop.run(n_iterations=40)
        assert result.converged(tolerance=0.2, window=5)

    def test_damped_response_moves_gradually(self):
        loop = make_loop(
            diamond_topology(), [swarm("ABCD", cap=4.0)], damping=0.3, beta=1.0
        )
        result = loop.run(n_iterations=2)
        from repro.core.session import max_matching_throughput

        opt, _ = max_matching_throughput(loop.sessions[0])
        # After one damped step the pattern is only 30% of the way there.
        first_total = result.final_patterns[0].total()
        assert first_total < opt

    def test_bdp_objective_decreases(self):
        topo = abilene()
        pids = ["SEAT", "NYCM", "CHIN", "ATLA"]
        sessions = [swarm(pids, cap=200.0)]
        loop = make_loop(
            topo, sessions, objective=BandwidthDistanceProduct(), step_size=1e-5, beta=0.8
        )
        result = loop.run(n_iterations=10)
        assert result.best_objective <= result.objective_history[0] + 1e-9
