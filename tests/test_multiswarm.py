"""Tests for parallel swarms sharing one network."""

import random

import pytest

from repro.apptracker.selection import PeerInfo, RandomSelection
from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.simulator.multiswarm import MultiSwarmSimulation, shared_substrate
from repro.simulator.swarm import SwarmConfig, SwarmSimulation
from repro.workloads.placement import place_peers


def bottleneck_pair() -> Topology:
    topo = Topology(name="pair")
    topo.add_pid("L")
    topo.add_pid("R")
    topo.add_edge("L", "R", capacity=8.0)
    return topo


def make_swarm(topo, routing, net, engine, swarm_id, peer_ids, rng_seed):
    config = SwarmConfig(
        file_mbit=16.0, block_mbit=2.0, neighbors=6, join_window=1.0,
        access_up_mbps=50.0, access_down_mbps=50.0, seed_up_mbps=50.0,
        completion_quantum=0.05, rng_seed=rng_seed,
    )
    peers = [PeerInfo(peer_id=i, pid="L" if i % 2 else "R", as_number=0)
             for i in peer_ids]
    seed = PeerInfo(peer_id=peer_ids[0] - 1, pid="L", as_number=0)
    return SwarmSimulation(
        topo, routing, config, RandomSelection(), peers, [seed],
        shared_net=net, shared_engine=engine, swarm_id=swarm_id,
    )


class TestConstruction:
    def test_requires_shared_substrate(self):
        topo = bottleneck_pair()
        routing = RoutingTable.build(topo)
        net, engine = shared_substrate()
        shared = make_swarm(topo, routing, net, engine, "a", [1, 2, 3], 1)
        config = SwarmConfig(neighbors=4, rng_seed=1)
        solo = SwarmSimulation(
            topo, routing, config, RandomSelection(),
            [PeerInfo(peer_id=50, pid="L", as_number=0)],
            [PeerInfo(peer_id=51, pid="R", as_number=0)],
        )
        with pytest.raises(ValueError):
            MultiSwarmSimulation([shared, solo])

    def test_duplicate_ids_rejected(self):
        topo = bottleneck_pair()
        routing = RoutingTable.build(topo)
        net, engine = shared_substrate()
        a = make_swarm(topo, routing, net, engine, "same", [1, 2, 3], 1)
        b = make_swarm(topo, routing, net, engine, "same", [10, 11, 12], 2)
        with pytest.raises(ValueError):
            MultiSwarmSimulation([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiSwarmSimulation([])

    def test_shared_swarm_cannot_run_alone(self):
        topo = bottleneck_pair()
        routing = RoutingTable.build(topo)
        net, engine = shared_substrate()
        swarm = make_swarm(topo, routing, net, engine, "a", [1, 2, 3], 1)
        with pytest.raises(RuntimeError):
            swarm.run()

    def test_mismatched_shared_args_rejected(self):
        topo = bottleneck_pair()
        routing = RoutingTable.build(topo)
        net, _ = shared_substrate()
        config = SwarmConfig(neighbors=4, rng_seed=1)
        with pytest.raises(ValueError):
            SwarmSimulation(
                topo, routing, config, RandomSelection(),
                [PeerInfo(peer_id=1, pid="L", as_number=0)],
                [PeerInfo(peer_id=0, pid="R", as_number=0)],
                shared_net=net,
            )


class TestParallelRuns:
    def test_both_swarms_complete(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        net, engine = shared_substrate()
        rng = random.Random(2)
        peers_a = place_peers(topo, 8, rng, first_id=100)
        peers_b = place_peers(topo, 8, rng, first_id=200)
        config = SwarmConfig(
            file_mbit=16.0, block_mbit=2.0, neighbors=6, join_window=5.0,
            access_up_mbps=10.0, access_down_mbps=20.0, seed_up_mbps=20.0,
            completion_quantum=0.05, rng_seed=3,
        )
        seed_a = PeerInfo(peer_id=99, pid="CHIN", as_number=0)
        seed_b = PeerInfo(peer_id=199, pid="CHIN", as_number=0)
        swarm_a = SwarmSimulation(
            topo, routing, config, RandomSelection(), peers_a, [seed_a],
            shared_net=net, shared_engine=engine, swarm_id="a",
        )
        swarm_b = SwarmSimulation(
            topo, routing, config, RandomSelection(), peers_b, [seed_b],
            shared_net=net, shared_engine=engine, swarm_id="b",
        )
        results = MultiSwarmSimulation([swarm_a, swarm_b]).run(until=10_000.0)
        assert len(results["a"].completion_times) == 8
        assert len(results["b"].completion_times) == 8

    def test_contention_slows_both(self):
        """Two swarms over one 8 Mbps bottleneck finish slower than one
        swarm alone -- the contention separate runs cannot express."""
        topo = bottleneck_pair()
        routing = RoutingTable.build(topo)

        def run_alone():
            solo_topo = bottleneck_pair()
            solo_routing = RoutingTable.build(solo_topo)
            config = SwarmConfig(
                file_mbit=16.0, block_mbit=2.0, neighbors=6, join_window=1.0,
                access_up_mbps=50.0, access_down_mbps=50.0, seed_up_mbps=50.0,
                completion_quantum=0.05, rng_seed=5,
            )
            peers = [PeerInfo(peer_id=i, pid="L" if i % 2 else "R", as_number=0)
                     for i in range(1, 7)]
            seed = PeerInfo(peer_id=0, pid="L", as_number=0)
            sim = SwarmSimulation(
                solo_topo, solo_routing, config, RandomSelection(), peers, [seed]
            )
            return sim.run(until=10_000.0).mean_completion()

        net, engine = shared_substrate()
        swarm_a = make_swarm(topo, routing, net, engine, "a", list(range(1, 7)), 5)
        swarm_b = make_swarm(
            topo, routing, net, engine, "b", list(range(101, 107)), 6
        )
        results = MultiSwarmSimulation([swarm_a, swarm_b]).run(until=10_000.0)
        alone = run_alone()
        shared_mean = results["a"].mean_completion()
        assert shared_mean > alone

    def test_attributed_traffic_split_between_swarms(self):
        topo = bottleneck_pair()
        routing = RoutingTable.build(topo)
        net, engine = shared_substrate()
        swarm_a = make_swarm(topo, routing, net, engine, "a", [1, 2, 3, 4], 7)
        swarm_b = make_swarm(topo, routing, net, engine, "b", [11, 12, 13, 14], 8)
        results = MultiSwarmSimulation([swarm_a, swarm_b]).run(until=10_000.0)
        total_a = sum(results["a"].link_traffic_mbit.values())
        total_b = sum(results["b"].link_traffic_mbit.values())
        assert total_a > 0 and total_b > 0
        # Attribution covers completed blocks only; the shared net counters
        # bound the sum from above.
        net_total = sum(
            volume
            for name, volume in net.link_traffic().items()
            if isinstance(name, tuple) and name[0] == "bb"
        )
        assert total_a + total_b <= net_total + 1e-6


class TestEquivalence:
    def test_single_swarm_shared_matches_solo(self):
        """Driving one swarm through the coordinator reproduces the solo
        run's completion times exactly (same seeds, same event order)."""
        topo = abilene()
        routing = RoutingTable.build(topo)
        config = SwarmConfig(
            file_mbit=16.0, block_mbit=2.0, neighbors=6, join_window=5.0,
            access_up_mbps=10.0, access_down_mbps=20.0, seed_up_mbps=20.0,
            completion_quantum=0.05, rng_seed=13,
        )
        rng = random.Random(4)
        peers = place_peers(topo, 10, rng, first_id=1)
        seed = PeerInfo(peer_id=0, pid="CHIN", as_number=0)

        solo = SwarmSimulation(
            topo, routing, config, RandomSelection(), peers, [seed]
        ).run(until=10_000.0)

        net, engine = shared_substrate()
        shared_sim = SwarmSimulation(
            topo, routing, config, RandomSelection(), peers, [seed],
            shared_net=net, shared_engine=engine, swarm_id="only",
        )
        shared = MultiSwarmSimulation([shared_sim]).run(until=10_000.0)["only"]
        assert shared.completion_times == solo.completion_times

    def test_multiswarm_run_is_deterministic(self):
        def run_once():
            topo = bottleneck_pair()
            routing = RoutingTable.build(topo)
            net, engine = shared_substrate()
            a = make_swarm(topo, routing, net, engine, "a", [1, 2, 3, 4], 21)
            b = make_swarm(topo, routing, net, engine, "b", [11, 12, 13, 14], 22)
            return MultiSwarmSimulation([a, b]).run(until=10_000.0)

        first = run_once()
        second = run_once()
        assert first["a"].completion_times == second["a"].completion_times
        assert first["b"].completion_times == second["b"].completion_times
