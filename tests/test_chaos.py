"""Chaos-harness tests: the PR's acceptance criteria, asserted in CI.

Runs the seeded crash/restart/partition/corruption scenario of
:mod:`repro.simulator.chaos` and asserts the survivability invariants:

* a killed-and-restarted iTracker resumes the exact persisted price
  vector with a strictly higher ``(epoch, version)`` (no price reset);
* with the primary partitioned, the failover client serves from the
  standby with bounded staleness and zero selector exceptions;
* the faulted run's MLU re-converges to within epsilon of the fault-free
  twin;
* everything is bit-deterministic under a fixed seed.

All tests carry the ``chaos`` marker (dedicated CI job) and a SIGALRM
timeout so a hung socket can never stall the suite.
"""

import io

import pytest

from repro.simulator.chaos import (
    ChaosEvent,
    ChaosEventKind,
    ChaosSchedule,
    format_chaos,
    run_chaos,
)
from repro.tools.cli import main as cli_main

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(120)]

SEED = 11


@pytest.fixture(scope="module")
def with_state():
    return run_chaos(seed=SEED, with_state=True)


@pytest.fixture(scope="module")
def without_state():
    return run_chaos(seed=SEED, with_state=False)


class TestKillAndRestart:
    def test_all_invariants_hold_with_state(self, with_state):
        assert with_state.violations == []

    def test_restored_prices_match_pre_crash_iterate(self, with_state):
        assert with_state.restored_price_gap is not None
        assert with_state.restored_price_gap == pytest.approx(0.0, abs=1e-9)

    def test_identity_stays_monotone_across_restart(self, with_state):
        identities = [
            (obs.epoch, obs.version)
            for obs in with_state.observations
            if obs.status == "ok" and obs.epoch is not None
        ]
        assert identities == sorted(identities)
        # The restart is visible as an epoch boundary, not a reset.
        assert identities[-1][0] > identities[0][0]

    def test_mlu_reconverges_to_fault_free_twin(self, with_state):
        assert with_state.reconverged(epsilon=0.15)
        assert len(with_state.chaotic.completion_times) == len(
            with_state.baseline.completion_times
        )

    def test_torn_wal_did_not_prevent_recovery(self, with_state):
        kinds = [event.kind for event in with_state.events]
        assert ChaosEventKind.CORRUPT_WAL in kinds
        assert ChaosEventKind.RESTART in kinds
        assert not any(
            v.invariant == "price-reset" for v in with_state.violations
        )


class TestFailover:
    def test_selection_plane_never_sees_an_exception(self, with_state):
        assert with_state.selector_exceptions == 0
        assert with_state.native_fallbacks == 0

    def test_guidance_stays_fresh_through_crash_and_partition(self, with_state):
        assert with_state.statuses() == ["ok"]

    def test_standby_actually_served(self, with_state):
        endpoints = {obs.active_endpoint for obs in with_state.observations}
        assert endpoints == {0, 1}

    def test_staleness_is_bounded(self, with_state):
        assert not any(
            v.invariant == "stale-age" for v in with_state.violations
        )
        for obs in with_state.observations:
            if obs.origin_staleness is not None:
                # Standby staleness never exceeds one sync interval plus
                # the longest outage the schedule inflicts.
                assert obs.origin_staleness <= 60.0


class TestAmnesiacRestart:
    """The run the state store exists to prevent: restart without disk."""

    def test_primary_regression_is_recorded(self, without_state):
        invariants = {v.invariant for v in without_state.violations}
        assert "primary-version-regression" in invariants

    def test_standby_guard_keeps_readers_monotone(self, without_state):
        """Readers never observe the regression -- the standby refuses to
        apply a state delta that would roll its follower back."""
        invariants = {v.invariant for v in without_state.violations}
        assert "version-regression" not in invariants

    def test_no_restored_price_gap_to_speak_of(self, without_state):
        assert without_state.restored_price_gap is None  # nothing restored


class TestDeterminism:
    def test_identical_seed_identical_run(self, with_state):
        rerun = run_chaos(seed=SEED, with_state=True)
        assert [
            (o.time, o.status, o.epoch, o.version, o.stale, o.mlu)
            for o in rerun.observations
        ] == [
            (o.time, o.status, o.epoch, o.version, o.stale, o.mlu)
            for o in with_state.observations
        ]
        assert [
            (v.time, v.invariant) for v in rerun.violations
        ] == [(v.time, v.invariant) for v in with_state.violations]

    def test_seeded_schedule_is_reproducible(self):
        a = ChaosSchedule.seeded(SEED)
        b = ChaosSchedule.seeded(SEED)
        assert [(e.time, e.kind) for e in a] == [(e.time, e.kind) for e in b]
        assert len(a) == 5

    def test_schedule_orders_events(self):
        schedule = ChaosSchedule(
            [
                ChaosEvent(20.0, ChaosEventKind.RESTART),
                ChaosEvent(10.0, ChaosEventKind.CRASH),
            ]
        )
        assert [e.kind for e in schedule] == [
            ChaosEventKind.CRASH,
            ChaosEventKind.RESTART,
        ]

    def test_negative_event_time_rejected(self):
        with pytest.raises(ValueError):
            ChaosEvent(-1.0, ChaosEventKind.CRASH)


class TestReport:
    def test_format_mentions_every_section(self, with_state):
        text = format_chaos(with_state)
        for needle in ("chaos schedule", "mean active MLU", "health ladder",
                       "restored price gap", "invariants: all held"):
            assert needle in text

    def test_violations_are_listed(self, without_state):
        text = format_chaos(without_state)
        assert "INVARIANT VIOLATIONS" in text
        assert "primary-version-regression" in text


class TestCli:
    def test_chaos_subcommand_exits_zero_when_invariants_hold(self):
        out = io.StringIO()
        assert cli_main(["chaos", "--seed", str(SEED)], out=out) == 0
        assert "invariants: all held" in out.getvalue()

    def test_chaos_subcommand_exits_nonzero_on_violation(self):
        out = io.StringIO()
        assert cli_main(["chaos", "--seed", str(SEED), "--no-state"], out=out) == 1
        assert "INVARIANT VIOLATIONS" in out.getvalue()
