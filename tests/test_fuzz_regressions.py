"""Replay every checked-in fuzz fixture under ``tests/fixtures/fuzz/``.

Each fixture is a minimized failing scenario the fuzzer once found,
serialized with the failure signature it must (or must no longer)
produce:

* a fixture whose ``plants`` list is non-empty documents the fuzzing
  pipeline itself -- the plant is a deliberate, permanently-available
  regression hook, so replaying the fixture must still reproduce the
  expected failure;
* a fixture with no plants documents a *fixed* organic bug -- replaying
  it must NOT reproduce (if it does, the bug is back).

New fixtures land here automatically: copy any file from a fuzz run's
``findings/`` directory into ``tests/fixtures/fuzz/`` and this module
picks it up by glob -- no test edits needed.
"""

import glob
import os

import pytest

from repro.fuzz import load_fixture, replay_fixture

pytestmark = pytest.mark.fuzz

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures", "fuzz")
FIXTURE_PATHS = sorted(glob.glob(os.path.join(FIXTURE_DIR, "*.json")))


def test_fixture_directory_is_seeded():
    """The suite must never silently run against zero fixtures."""
    assert FIXTURE_PATHS, f"no fuzz fixtures found under {FIXTURE_DIR}"


@pytest.mark.parametrize(
    "path", FIXTURE_PATHS, ids=[os.path.basename(p) for p in FIXTURE_PATHS]
)
def test_fixture_replays(path):
    fixture = load_fixture(path)
    reproduced, outcome = replay_fixture(fixture)
    oracle, kind = fixture.expect
    if fixture.plants:
        assert reproduced, (
            f"planted fixture no longer reproduces {oracle}/{kind}; "
            f"observed {[f.signature for f in outcome.failures]} -- did the "
            f"plant hook in repro.fuzz.executor change?"
        )
    else:
        assert not reproduced, (
            f"fixed bug is back: {oracle}/{kind} reproduced from {path}; "
            f"detail: {[f.detail for f in outcome.failures]}"
        )


@pytest.mark.parametrize(
    "path", FIXTURE_PATHS, ids=[os.path.basename(p) for p in FIXTURE_PATHS]
)
def test_fixture_spec_round_trips(path):
    """Fixtures stay loadable and canonical even as the spec layer grows."""
    fixture = load_fixture(path)
    from repro.fuzz import ScenarioSpec

    assert ScenarioSpec.from_json(fixture.spec.to_json()) == fixture.spec
    assert fixture.expect[0] in ("differential", "chaos", "view", "universal")
