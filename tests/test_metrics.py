"""Tests for the evaluation metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.bdp import mean_pid_pair_hops, unit_bdp, weighted_unit_bdp
from repro.metrics.bottleneck import (
    bottleneck_traffic,
    high_load_duration,
    most_utilized_link,
    peak_utilization,
    utilization_timeline,
)
from repro.metrics.charging import charging_volumes_from_samples, volumes_per_interval
from repro.metrics.completion import (
    completion_cdf,
    excess_percent,
    improvement_percent,
    mean_completion,
    percentile_completion,
)
from repro.metrics.localization import TrafficLedger, localization_ratio
from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.simulator.swarm import UtilizationSample


class TestCompletionMetrics:
    def test_mean(self):
        assert mean_completion({1: 10.0, 2: 20.0}) == 15.0

    def test_mean_empty(self):
        assert mean_completion({}) == 0.0

    def test_cdf(self):
        cdf = completion_cdf({1: 30.0, 2: 10.0, 3: 20.0})
        assert cdf == [(10.0, pytest.approx(1 / 3)), (20.0, pytest.approx(2 / 3)), (30.0, pytest.approx(1.0))]

    def test_percentile(self):
        times = {i: float(i) for i in range(1, 101)}
        assert percentile_completion(times, 0.5) == pytest.approx(50.5)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile_completion({}, 0.5)
        with pytest.raises(ValueError):
            percentile_completion({1: 1.0}, 1.5)

    def test_improvement_percent(self):
        # Paper: 9460 -> 7312 is ~23%.
        assert improvement_percent(9460.0, 7312.0) == pytest.approx(22.7, abs=0.1)

    def test_excess_percent(self):
        # Paper: 4164 vs 2481 is ~68% higher.
        assert excess_percent(4164.0, 2481.0) == pytest.approx(67.8, abs=0.1)

    def test_baseline_validation(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 1.0)
        with pytest.raises(ValueError):
            excess_percent(1.0, 0.0)

    @settings(max_examples=50)
    @given(st.dictionaries(st.integers(), st.floats(min_value=0.1, max_value=1e5), min_size=1, max_size=50))
    def test_cdf_is_monotone(self, times):
        cdf = completion_cdf(times)
        values = [t for t, _ in cdf]
        fracs = [f for _, f in cdf]
        assert values == sorted(values)
        assert fracs == sorted(fracs)
        assert fracs[-1] == pytest.approx(1.0)


class TestBdp:
    def test_unit_bdp(self):
        traffic = {("A", "B"): 100.0, ("B", "C"): 50.0}
        assert unit_bdp(traffic, payload_mbit=50.0) == pytest.approx(3.0)

    def test_unit_bdp_validation(self):
        with pytest.raises(ValueError):
            unit_bdp({}, 0.0)

    def test_weighted_unit_bdp(self):
        topo = abilene()
        key = ("WASH", "NYCM")
        distance = topo.links[key].distance
        assert weighted_unit_bdp({key: 10.0}, 10.0, topo) == pytest.approx(distance)

    def test_mean_pid_pair_hops(self):
        routing = RoutingTable.build(abilene())
        mean_hops = mean_pid_pair_hops(routing)
        assert 1.5 < mean_hops < 5.0

    def test_mean_pid_pair_hops_needs_pids(self):
        routing = RoutingTable.build(abilene())
        with pytest.raises(ValueError):
            mean_pid_pair_hops(routing, pids=["SEAT"])


class TestBottleneck:
    def test_most_utilized_by_relative_load(self):
        topo = abilene()
        topo.links[("SEAT", "SNVA")].capacity = 100.0
        traffic = {("SEAT", "SNVA"): 50.0, ("WASH", "NYCM"): 400.0}
        assert most_utilized_link(topo, traffic) == ("SEAT", "SNVA")

    def test_most_utilized_requires_traffic(self):
        with pytest.raises(ValueError):
            most_utilized_link(abilene(), {})

    def test_bottleneck_traffic_explicit_link(self):
        topo = abilene()
        traffic = {("WASH", "NYCM"): 7.0}
        assert bottleneck_traffic(topo, traffic, link=("WASH", "NYCM")) == 7.0
        assert bottleneck_traffic(topo, traffic, link=("SEAT", "SNVA")) == 0.0

    def make_samples(self):
        return [
            UtilizationSample(time=t, max_utilization=u, link_utilization={("A", "B"): u / 2})
            for t, u in ((0.0, 0.1), (10.0, 0.5), (20.0, 0.3))
        ]

    def test_timeline_max(self):
        series = utilization_timeline(self.make_samples())
        assert series == [(0.0, 0.1), (10.0, 0.5), (20.0, 0.3)]

    def test_timeline_specific_link(self):
        series = utilization_timeline(self.make_samples(), link=("A", "B"))
        assert series[1] == (10.0, 0.25)

    def test_peak(self):
        assert peak_utilization(self.make_samples()) == 0.5
        assert peak_utilization([]) == 0.0

    def test_high_load_duration(self):
        assert high_load_duration(self.make_samples(), threshold=0.25) == pytest.approx(20.0)
        assert high_load_duration(self.make_samples(), threshold=0.6) == 0.0


class TestChargingMetrics:
    def test_volumes_per_interval(self):
        series = [(0.0, 0.0), (30.0, 30.0), (60.0, 50.0), (90.0, 90.0), (120.0, 100.0)]
        volumes = volumes_per_interval(series, interval_seconds=60.0)
        assert volumes == [pytest.approx(50.0), pytest.approx(50.0)]

    def test_volumes_empty(self):
        assert volumes_per_interval([], 60.0) == []

    def test_volumes_validation(self):
        with pytest.raises(ValueError):
            volumes_per_interval([(0.0, 0.0)], 0.0)

    def test_charging_from_samples(self):
        series = {
            ("A", "B"): [(float(t), float(t)) for t in range(0, 601, 30)],
        }
        volumes = charging_volumes_from_samples(series, interval_seconds=60.0, q=0.95)
        # Constant 60 Mbit per 60 s interval.
        assert volumes[("A", "B")] == pytest.approx(60.0)

    def test_charging_empty_series(self):
        volumes = charging_volumes_from_samples({("A", "B"): []}, 60.0)
        assert volumes[("A", "B")] == 0.0


class TestTrafficLedger:
    def make_ledger(self):
        return TrafficLedger(
            isp_as=100,
            metro_of={"P1": "NY", "P2": "NY", "P3": "LA"},
        )

    def test_categories(self):
        ledger = self.make_ledger()
        ledger.record("X", 999, "Y", 999, 10.0)
        ledger.record("X", 999, "P1", 100, 20.0)
        ledger.record("P1", 100, "X", 999, 30.0)
        ledger.record("P1", 100, "P2", 100, 40.0)
        ledger.record("P1", 100, "P3", 100, 50.0)
        assert ledger.external_external == 10.0
        assert ledger.external_to_isp == 20.0
        assert ledger.isp_to_external == 30.0
        assert ledger.intra_same_metro == 40.0
        assert ledger.intra_cross_metro == 50.0
        assert ledger.total == 150.0

    def test_localization_percent(self):
        ledger = self.make_ledger()
        ledger.record("P1", 100, "P2", 100, 58.0)
        ledger.record("P1", 100, "P3", 100, 42.0)
        assert ledger.localization_percent() == pytest.approx(58.0)

    def test_localization_empty(self):
        assert self.make_ledger().localization_percent() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            self.make_ledger().record("P1", 100, "P2", 100, -1.0)

    def test_table_rows(self):
        ledger = self.make_ledger()
        ledger.record("P1", 100, "P2", 100, 5.0)
        table = ledger.as_table()
        assert table["ISP <-> ISP"] == 5.0
        assert table["Total"] == 5.0

    def test_ratios(self):
        native = self.make_ledger()
        p4p = self.make_ledger()
        native.record("P1", 100, "X", 999, 17.0)
        p4p.record("P1", 100, "X", 999, 10.0)
        ratios = localization_ratio(native, p4p)
        assert ratios["ISP -> External"] == pytest.approx(1.7)

    def test_ratio_inf_when_p4p_zero(self):
        native = self.make_ledger()
        p4p = self.make_ledger()
        native.record("X", 999, "Y", 999, 1.0)
        assert localization_ratio(native, p4p)["External <-> External"] == float("inf")
