"""Tests for max-min fair allocation (session-level TCP model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimization.maxmin import (
    maxmin_rates,
    maxmin_rates_reference,
    verify_maxmin,
)


class TestMaxminBasics:
    def test_single_link_shared_equally(self):
        rates = maxmin_rates([[0], [0], [0]], [30.0])
        assert np.allclose(rates, [10.0, 10.0, 10.0])

    def test_disjoint_flows_get_full_capacity(self):
        rates = maxmin_rates([[0], [1]], [10.0, 20.0])
        assert np.allclose(rates, [10.0, 20.0])

    def test_classic_line_network(self):
        # Links A(cap 10) and B(cap 10); flow0 on both, flow1 on A, flow2 on B.
        rates = maxmin_rates([[0, 1], [0], [1]], [10.0, 10.0])
        assert np.allclose(rates, [5.0, 5.0, 5.0])

    def test_unequal_bottlenecks(self):
        # flow0 crosses tight link 0 (cap 2) and loose link 1; flow1 only link 1.
        rates = maxmin_rates([[0, 1], [1]], [2.0, 10.0])
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)

    def test_unconstrained_flow_is_infinite(self):
        rates = maxmin_rates([[], [0]], [10.0])
        assert np.isinf(rates[0])
        assert rates[1] == pytest.approx(10.0)

    def test_empty_flow_set(self):
        assert maxmin_rates([], [10.0]).size == 0

    def test_duplicate_link_entries_counted_once(self):
        rates = maxmin_rates([[0, 0], [0]], [10.0])
        assert np.allclose(rates, [5.0, 5.0])

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            maxmin_rates([[0]], [0.0])

    def test_bad_link_index_rejected(self):
        with pytest.raises(IndexError):
            maxmin_rates([[5]], [10.0])


class TestMaxminProperties:
    @staticmethod
    def scenarios():
        return st.integers(min_value=1, max_value=6).flatmap(
            lambda n_links: st.tuples(
                st.lists(
                    st.lists(
                        st.integers(min_value=0, max_value=n_links - 1),
                        min_size=1,
                        max_size=n_links,
                    ),
                    min_size=1,
                    max_size=12,
                ),
                st.lists(
                    st.floats(min_value=0.5, max_value=100.0),
                    min_size=n_links,
                    max_size=n_links,
                ),
            )
        )

    @settings(max_examples=150, deadline=None)
    @given(scenarios())
    def test_matches_reference_implementation(self, scenario):
        flow_links, capacities = scenario
        fast = maxmin_rates(flow_links, capacities)
        slow = maxmin_rates_reference(flow_links, capacities)
        assert np.allclose(fast, slow, rtol=1e-6, atol=1e-6)

    @settings(max_examples=150, deadline=None)
    @given(scenarios())
    def test_allocation_is_maxmin(self, scenario):
        flow_links, capacities = scenario
        rates = maxmin_rates(flow_links, capacities)
        assert verify_maxmin(flow_links, capacities, rates)

    @settings(max_examples=100, deadline=None)
    @given(scenarios())
    def test_feasibility(self, scenario):
        flow_links, capacities = scenario
        rates = maxmin_rates(flow_links, capacities)
        loads = np.zeros(len(capacities))
        for links, rate in zip(flow_links, rates):
            for link in set(links):
                loads[link] += rate
        assert np.all(loads <= np.asarray(capacities) * (1 + 1e-6) + 1e-6)


class TestVerifier:
    def test_accepts_optimal(self):
        assert verify_maxmin([[0], [0]], [10.0], [5.0, 5.0])

    def test_rejects_underallocation(self):
        assert not verify_maxmin([[0], [0]], [10.0], [2.0, 2.0])

    def test_rejects_infeasible(self):
        assert not verify_maxmin([[0], [0]], [10.0], [8.0, 8.0])

    def test_rejects_finite_rate_for_unconstrained(self):
        assert not verify_maxmin([[]], [10.0], [5.0])
