"""Tests for the optional data plane: classification, policing, scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.shaping import (
    PriorityScheduler,
    ShapedLink,
    TokenBucket,
    TrafficClassifier,
    p4p_marked,
)


class TestClassifier:
    def test_default_class(self):
        assert TrafficClassifier().classify({}) == "best-effort"

    def test_rules_in_order(self):
        classifier = TrafficClassifier()
        classifier.add_rule(p4p_marked, "p4p")
        classifier.add_rule(lambda f: f.get("port") == 80, "web")
        assert classifier.classify({"p4p": True, "port": 80}) == "p4p"
        assert classifier.classify({"port": 80}) == "web"
        assert classifier.classify({"port": 22}) == "best-effort"

    def test_p4p_marking_is_cooperative(self):
        assert p4p_marked({"p4p": True})
        assert not p4p_marked({"p4p": False})
        assert not p4p_marked({})


class TestTokenBucket:
    def test_burst_then_rate(self):
        bucket = TokenBucket(rate=3.0, burst=5.0)
        assert bucket.offer(0.0, 100.0) == 5.0  # burst drained
        assert bucket.offer(1.0, 100.0) == pytest.approx(3.0)  # refilled at rate

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        bucket.offer(0.0, 0.0)
        assert bucket.offer(100.0, 100.0) == 5.0

    def test_partial_consumption(self):
        bucket = TokenBucket(rate=1.0, burst=10.0)
        assert bucket.offer(0.0, 4.0) == 4.0
        assert bucket.available == pytest.approx(6.0)

    def test_time_monotonic(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.offer(5.0, 0.0)
        with pytest.raises(ValueError):
            bucket.offer(4.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=1.0).offer(0.0, -1.0)

    @settings(max_examples=50)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=50.0),
    ), min_size=1, max_size=20))
    def test_long_run_rate_bounded(self, offers):
        """Admitted volume never exceeds burst + rate * elapsed."""
        bucket = TokenBucket(rate=3.0, burst=7.0)
        now = 0.0
        admitted = 0.0
        for gap, amount in offers:
            now += gap
            admitted += bucket.offer(now, amount)
        assert admitted <= 7.0 + 3.0 * now + 1e-9


class TestPriorityScheduler:
    def test_background_preempts_p4p(self):
        scheduler = PriorityScheduler(capacity=10.0)
        allocation = scheduler.allocate({"background": 8.0, "p4p": 8.0})
        assert allocation["background"] == 8.0
        assert allocation["p4p"] == pytest.approx(2.0)

    def test_p4p_soaks_idle_capacity(self):
        scheduler = PriorityScheduler(capacity=10.0)
        allocation = scheduler.allocate({"background": 1.0, "p4p": 20.0})
        assert allocation["p4p"] == pytest.approx(9.0)

    def test_unknown_class_served_last(self):
        scheduler = PriorityScheduler(capacity=10.0)
        allocation = scheduler.allocate({"background": 6.0, "mystery": 10.0})
        assert allocation["mystery"] == pytest.approx(4.0)

    def test_headroom(self):
        scheduler = PriorityScheduler(capacity=10.0)
        assert scheduler.p4p_headroom(3.0) == 7.0
        assert scheduler.p4p_headroom(15.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityScheduler(capacity=0.0)
        with pytest.raises(ValueError):
            PriorityScheduler(capacity=1.0, priorities=("a", "a"))
        with pytest.raises(ValueError):
            PriorityScheduler(capacity=1.0).allocate({"x": -1.0})
        with pytest.raises(ValueError):
            PriorityScheduler(capacity=1.0).p4p_headroom(-1.0)

    @settings(max_examples=60)
    @given(st.dictionaries(
        st.sampled_from(["background", "best-effort", "p4p"]),
        st.floats(min_value=0.0, max_value=100.0),
        min_size=1,
    ))
    def test_work_conserving_and_feasible(self, demands):
        scheduler = PriorityScheduler(capacity=25.0)
        allocation = scheduler.allocate(demands)
        total = sum(allocation.values())
        assert total <= 25.0 + 1e-9
        # Work conserving: all capacity used unless demand is short.
        assert total == pytest.approx(min(25.0, sum(demands.values())), abs=1e-9)
        for traffic_class, granted in allocation.items():
            assert granted <= demands[traffic_class] + 1e-9


class TestShapedLink:
    def make_link(self):
        classifier = TrafficClassifier()
        classifier.add_rule(p4p_marked, "p4p")
        classifier.add_rule(lambda f: True, "background")
        return ShapedLink(
            scheduler=PriorityScheduler(capacity=10.0), classifier=classifier
        )

    def test_p4p_yields_to_background(self):
        link = self.make_link()
        rates = link.transmit(
            0.0,
            [({"p4p": True}, 10.0), ({}, 7.0)],
        )
        assert rates[1] == pytest.approx(7.0)
        assert rates[0] == pytest.approx(3.0)

    def test_pro_rata_within_class(self):
        link = self.make_link()
        rates = link.transmit(
            0.0,
            [({"p4p": True}, 6.0), ({"p4p": True}, 2.0), ({}, 6.0)],
        )
        # 4 left for p4p, split 3:1.
        assert rates[0] == pytest.approx(3.0)
        assert rates[1] == pytest.approx(1.0)

    def test_policer_applies_per_class(self):
        link = self.make_link()
        link.policers["p4p"] = TokenBucket(rate=1.0, burst=2.0)
        rates = link.transmit(0.0, [({"p4p": True}, 10.0)])
        assert rates[0] == pytest.approx(2.0)  # bucket-limited, not link-limited

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            self.make_link().transmit(0.0, [({}, -1.0)])

    def test_empty_flow_list(self):
        assert self.make_link().transmit(0.0, []) == []


class TestDataPlaneControlPlaneConsistency:
    """The scheduler's scavenger headroom equals the control plane's
    virtual-capacity intuition: what background leaves behind."""

    def test_headroom_matches_link_model(self):
        from repro.network.topology import Link

        link = Link(src="A", dst="B", capacity=100.0, background=37.5)
        scheduler = PriorityScheduler(capacity=link.capacity)
        assert scheduler.p4p_headroom(link.background) == pytest.approx(link.headroom)

    def test_scavenger_allocation_never_exceeds_headroom(self):
        scheduler = PriorityScheduler(capacity=100.0)
        for background in (0.0, 30.0, 99.0, 150.0):
            allocation = scheduler.allocate(
                {"background": background, "p4p": 1000.0}
            )
            assert allocation["p4p"] <= scheduler.p4p_headroom(background) + 1e-9
