"""Property tests for the coordinate embedding on random metric data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embedding import embed_pdistances, embedding_quality
from repro.core.pdistance import PDistanceMap


def euclidean_view(points: np.ndarray) -> PDistanceMap:
    pids = tuple(f"P{i}" for i in range(points.shape[0]))
    distances = {}
    for i, a in enumerate(pids):
        for j, b in enumerate(pids):
            distances[(a, b)] = float(np.linalg.norm(points[i] - points[j]))
    return PDistanceMap(pids=pids, distances=distances)


class TestEmbeddingProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=0, max_value=1000),
    )
    def test_euclidean_data_embeds_near_perfectly(self, n_points, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0.0, 100.0, size=(n_points, 2))
        view = euclidean_view(points)
        embedding = embed_pdistances(view, dimensions=2)
        quality = embedding_quality(view, embedding)
        assert quality.stress < 0.02

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=4, max_value=8), st.integers(min_value=0, max_value=500))
    def test_reconstruction_is_symmetric_and_nonnegative(self, n_points, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0.0, 50.0, size=(n_points, 3))
        view = euclidean_view(points)
        embedding = embed_pdistances(view, dimensions=3)
        for src in embedding.pids:
            for dst in embedding.pids:
                forward = embedding.distance(src, dst)
                assert forward >= 0
                assert forward == pytest.approx(embedding.distance(dst, src))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=300))
    def test_smacof_never_hurts(self, seed):
        """Refinement should not worsen the classical-MDS stress."""
        rng = np.random.default_rng(seed)
        points = rng.uniform(0.0, 10.0, size=(7, 2))
        # Perturb into a non-Euclidean dissimilarity.
        view_base = euclidean_view(points)
        noisy = {
            pair: value * float(rng.uniform(0.8, 1.2)) if pair[0] != pair[1] else 0.0
            for pair, value in view_base.distances.items()
        }
        # Re-symmetrize so the map is a valid dissimilarity.
        for (a, b) in list(noisy):
            mean = 0.5 * (noisy[(a, b)] + noisy[(b, a)])
            noisy[(a, b)] = noisy[(b, a)] = mean
        view = PDistanceMap(pids=view_base.pids, distances=noisy)
        raw = embedding_quality(view, embed_pdistances(view, 2, smacof_iterations=0))
        refined = embedding_quality(view, embed_pdistances(view, 2, smacof_iterations=60))
        assert refined.stress <= raw.stress + 1e-6
