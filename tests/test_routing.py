"""Unit tests for shortest-path routing and route indicators."""

import pytest

from repro.network.library import abilene
from repro.network.routing import NoRouteError, RoutingTable
from repro.network.topology import Topology


def line_topology(n: int = 4) -> Topology:
    topo = Topology(name="line")
    pids = [f"N{i}" for i in range(n)]
    for pid in pids:
        topo.add_pid(pid)
    for a, b in zip(pids, pids[1:]):
        topo.add_edge(a, b, capacity=10.0)
    return topo


class TestRoutingTable:
    def test_route_on_line(self):
        table = RoutingTable.build(line_topology(4))
        assert table.route("N0", "N3") == (("N0", "N1"), ("N1", "N2"), ("N2", "N3"))

    def test_self_route_is_empty(self):
        table = RoutingTable.build(line_topology(3))
        assert table.route("N1", "N1") == ()
        assert table.distance("N1", "N1") == 0.0

    def test_hop_count(self):
        table = RoutingTable.build(line_topology(5))
        assert table.hop_count("N0", "N4") == 4

    def test_path_pids(self):
        table = RoutingTable.build(line_topology(3))
        assert table.path_pids("N0", "N2") == ["N0", "N1", "N2"]

    def test_distance_sums_link_distances(self):
        topo = line_topology(3)
        topo.link("N0", "N1").distance = 5.0
        topo.link("N1", "N2").distance = 7.0
        table = RoutingTable.build(topo)
        assert table.distance("N0", "N2") == pytest.approx(12.0)

    def test_weights_steer_routing(self):
        # Square A-B-C-D; heavy weight on A->B pushes A->C traffic via D.
        topo = Topology()
        for pid in "ABCD":
            topo.add_pid(pid)
        topo.add_edge("A", "B", capacity=10.0)
        topo.add_edge("B", "C", capacity=10.0)
        topo.add_edge("A", "D", capacity=10.0)
        topo.add_edge("D", "C", capacity=10.0)
        topo.link("A", "B").ospf_weight = 10.0
        table = RoutingTable.build(topo)
        assert table.route("A", "C") == (("A", "D"), ("D", "C"))

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_pid("X")
        topo.add_pid("Y")
        table = RoutingTable.build(topo)
        assert not table.has_route("X", "Y")
        with pytest.raises(NoRouteError):
            table.route("X", "Y")
        with pytest.raises(NoRouteError):
            table.distance("X", "Y")

    def test_deterministic_tie_breaking(self):
        # Two equal-cost 2-hop paths A->C: via B and via D.  The route must
        # be identical across rebuilds.
        topo = Topology()
        for pid in "ABCD":
            topo.add_pid(pid)
        topo.add_edge("A", "B", capacity=10.0)
        topo.add_edge("B", "C", capacity=10.0)
        topo.add_edge("A", "D", capacity=10.0)
        topo.add_edge("D", "C", capacity=10.0)
        routes = {RoutingTable.build(topo).route("A", "C") for _ in range(5)}
        assert len(routes) == 1

    def test_on_route_indicator(self):
        table = RoutingTable.build(line_topology(4))
        assert table.on_route(("N1", "N2"), "N0", "N3")
        assert not table.on_route(("N2", "N1"), "N0", "N3")

    def test_indicator_matrix_consistent_with_routes(self):
        topo = abilene()
        table = RoutingTable.build(topo)
        matrix = table.indicator_matrix()
        for src in topo.pids:
            for dst in topo.pids:
                if src == dst:
                    continue
                for key in table.route(src, dst):
                    assert matrix[key].get((src, dst)) == 1

    def test_pairs_using(self):
        table = RoutingTable.build(line_topology(3))
        pairs = table.pairs_using(("N0", "N1"))
        assert ("N0", "N1") in pairs
        assert ("N0", "N2") in pairs
        assert ("N2", "N0") not in pairs


class TestAbileneRouting:
    def test_all_pairs_connected(self):
        topo = abilene()
        table = RoutingTable.build(topo)
        for src in topo.pids:
            for dst in topo.pids:
                assert table.has_route(src, dst)

    def test_routes_are_simple_paths(self):
        topo = abilene()
        table = RoutingTable.build(topo)
        for src in topo.pids:
            for dst in topo.pids:
                pids = table.path_pids(src, dst)
                assert len(pids) == len(set(pids))

    def test_subpath_optimality(self):
        # Any prefix of a shortest path is itself a shortest path.
        topo = abilene()
        table = RoutingTable.build(topo)
        for src in topo.pids:
            for dst in topo.pids:
                if src == dst:
                    continue
                pids = table.path_pids(src, dst)
                mid = pids[len(pids) // 2]
                assert table.hop_count(src, mid) + table.hop_count(mid, dst) == (
                    table.hop_count(src, dst)
                )
