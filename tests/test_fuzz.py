"""Self-tests for the coverage-guided scenario fuzzer.

Four properties the fuzzer's own machinery must hold (beyond what the
oracles it drives already guarantee):

* **spec round-trip** -- every ScenarioSpec survives to_json/from_json
  exactly (same canonical form, same digest), and malformed documents
  are rejected loudly;
* **mutator determinism** -- the same (parent, RNG seed) always yields
  the same child chain, and every mutator's output re-validates;
* **coverage-map stability** -- executing the same spec twice produces
  identical coverage keys and outcome digests;
* **minimizer convergence** -- against a planted regression, delta
  debugging shrinks a padded failing spec down to the essential core
  while preserving the exact failure signature.

Plus the end-to-end story: a short fuzz run re-discovers both planted
regressions, produces replayable fixtures, and two identically-seeded
runs agree bit for bit on the determinism digest.
"""

import json
import random

import pytest

from repro.fuzz import (
    ChaosSpec,
    DifferentialSpec,
    Executor,
    Fixture,
    FuzzConfig,
    Fuzzer,
    MUTATORS,
    Minimizer,
    PLANTS,
    ScenarioSpec,
    TopologySpec,
    ViewSpec,
    WorkloadSpec,
    load_fixture,
    mutate,
    replay_fixture,
)
from repro.fuzz.corpus import Corpus, CorpusEntry, CoverageMap
from repro.simulator.chaos import ChaosEvent, ChaosSchedule
from repro.simulator.differential import random_schedule
from repro.tools.cli import main as cli_main

pytestmark = pytest.mark.fuzz


def _diff_spec(seed=3, n_events=20, **kwargs):
    capacities, ops = random_schedule(seed, n_events=n_events)
    return ScenarioSpec(
        differential=DifferentialSpec(
            capacities=tuple(capacities), ops=tuple(ops)
        ),
        **kwargs,
    )


def _full_spec():
    capacities, ops = random_schedule(5, n_events=15)
    return ScenarioSpec(
        topology=TopologySpec(family="synthetic", n_pops=8, n_hubs=3, seed=4),
        workload=WorkloadSpec(until=2000.0, n_peers=8),
        engine="vectorized",
        differential=DifferentialSpec(
            capacities=tuple(capacities), ops=tuple(ops), regime="full-only"
        ),
        chaos=ChaosSpec(
            events=ChaosSchedule.seeded(9, horizon=100.0),
            stale_ttl=20.0,
            byzantine=("churn-mild",),
        ),
        view=ViewSpec(mutators=("drop-rows", "churn-wild")),
    )


# -- ScenarioSpec round-trip -------------------------------------------------------


def test_spec_round_trip_exact():
    for spec in (_diff_spec(), _full_spec(), ScenarioSpec(view=ViewSpec())):
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.digest() == spec.digest()
        # And through an actual JSON string, as fixtures are stored.
        assert ScenarioSpec.from_json(json.loads(spec.canonical())) == spec


def test_spec_rejects_garbage():
    spec = _diff_spec()
    good = spec.to_json()
    with pytest.raises(ValueError):
        ScenarioSpec.from_json({**good, "format": "p4p-fuzz-spec/99"})
    with pytest.raises(ValueError):
        ScenarioSpec.from_json({**good, "surprise": 1})
    with pytest.raises(ValueError):  # at least one oracle section
        ScenarioSpec.from_json(
            {**good, "differential": None, "chaos": None, "view": None}
        )
    with pytest.raises(ValueError):  # envelope violation
        ScenarioSpec.from_json(
            {**good, "workload": {**good["workload"], "n_peers": 4000}}
        )
    with pytest.raises(ValueError):  # unknown engine
        ScenarioSpec.from_json({**good, "engine": "quantum"})
    with pytest.raises(ValueError):  # malformed differential op
        bad_diff = {**good["differential"], "ops": [{"op": "teleport"}]}
        ScenarioSpec.from_json({**good, "differential": bad_diff})


def test_chaos_event_json_round_trip():
    schedule = ChaosSchedule.seeded(17, horizon=100.0)
    assert ChaosSchedule.from_json(schedule.to_json()) == schedule
    with pytest.raises(ValueError):
        ChaosEvent.from_json({"time": 1.0, "kind": "meteor-strike"})
    with pytest.raises(ValueError):
        ChaosEvent.from_json({"time": -1.0, "kind": "crash"})
    with pytest.raises(ValueError):
        ChaosEvent.from_json({"time": True, "kind": "crash"})
    with pytest.raises(ValueError):
        ChaosEvent.from_json({"time": 1.0, "kind": "crash", "blast_radius": 3})


# -- mutators ---------------------------------------------------------------------


def test_mutators_deterministic_and_valid():
    parent = _full_spec()
    chains = []
    for _ in range(2):
        rng = random.Random(42)
        chain = []
        current = parent
        for _round in range(30):
            current, applied = mutate(current, rng, rounds=1)
            chain.append((current.digest(), applied))
            # every child re-validates through the constructor round-trip
            assert ScenarioSpec.from_json(current.to_json()) == current
        chains.append(chain)
    assert chains[0] == chains[1]


def test_every_mutator_reachable_and_sound():
    """Each mutator either declines or emits a valid, different-or-equal spec."""
    rng = random.Random(7)
    specs = [_full_spec(), _diff_spec(), ScenarioSpec(view=ViewSpec(mutators=("negate",)))]
    fired = set()
    for spec in specs:
        for name, mutator in MUTATORS.items():
            for _ in range(5):
                child = mutator(spec, rng)
                if child is None:
                    continue
                fired.add(name)
                ScenarioSpec.from_json(child.to_json())
    assert fired == set(MUTATORS), f"never applied: {set(MUTATORS) - fired}"


# -- coverage map + corpus --------------------------------------------------------


def test_coverage_map_stability():
    spec = _diff_spec()
    executor = Executor()
    first = executor.run(spec)
    second = executor.run(spec)
    assert first.coverage == second.coverage
    assert first.digest == second.digest
    assert not first.failed


def test_coverage_map_first_seen_and_corpus_dedup():
    coverage = CoverageMap()
    assert coverage.observe(frozenset({"a", "b"}), 0) == frozenset({"a", "b"})
    assert coverage.observe(frozenset({"b", "c"}), 1) == frozenset({"c"})
    assert coverage.to_json() == {"a": 0, "b": 0, "c": 1}

    corpus = Corpus()
    spec = _diff_spec()
    entry = CorpusEntry(
        spec=spec, coverage=frozenset({"a"}), new_keys=frozenset({"a"}), iteration=0
    )
    assert corpus.add(entry)
    assert not corpus.add(entry)  # same digest -> rejected
    assert spec in corpus
    assert corpus.choose(random.Random(0)) == spec


def test_corpus_chaos_fraction_bounds_expensive_parents():
    corpus = Corpus()
    cheap = _diff_spec()
    chaotic = ScenarioSpec(
        workload=WorkloadSpec(until=2000.0),
        chaos=ChaosSpec(events=ChaosSchedule.seeded(1, horizon=100.0)),
    )
    for index, spec in enumerate((cheap, chaotic)):
        corpus.add(
            CorpusEntry(
                spec=spec,
                coverage=frozenset({str(index)}),
                new_keys=frozenset({str(index)}),
                iteration=index,
            )
        )
    rng = random.Random(0)
    draws = [corpus.choose(rng, chaos_fraction=0.15) for _ in range(400)]
    chaos_rate = sum(1 for spec in draws if spec.chaos is not None) / len(draws)
    assert 0.05 < chaos_rate < 0.30


# -- executor oracles -------------------------------------------------------------


def test_executor_plants_are_caught():
    cap_spec = ScenarioSpec(
        differential=DifferentialSpec(
            capacities=(20.0,),
            ops=(
                {"op": "arrive", "links": [0], "size": 4.0, "cap": 1.0},
                {"op": "advance", "idle": None},
            ),
        )
    )
    outcome = Executor(plants=("vector-cap-ignored",)).run(cap_spec)
    assert ("differential", "divergence") in outcome.signatures()
    assert not Executor().run(cap_spec).failed

    view_spec = ScenarioSpec(view=ViewSpec(mutators=("drop-rows",)))
    outcome = Executor(plants=("view-accept-missing-rows",)).run(view_spec)
    assert ("view", "byzantine-accepted") in outcome.signatures()
    clean = Executor().run(view_spec)
    assert not clean.failed
    assert "view:rejected:missing-row" in clean.coverage


def test_executor_view_acceptance_consistency():
    executor = Executor()
    pristine = Executor().run(ScenarioSpec(view=ViewSpec()))
    assert "view:accepted" in pristine.coverage and not pristine.failed
    for name, expect_reject in (
        ("negate", True),
        ("churn-wild", True),
        ("churn-mild", False),
    ):
        outcome = executor.run(ScenarioSpec(view=ViewSpec(mutators=(name,))))
        assert not outcome.failed, (name, outcome.failures)
        rejected = any(k.startswith("view:rejected") for k in outcome.coverage)
        assert rejected == expect_reject, (name, sorted(outcome.coverage))


def test_executor_rejects_unknown_plant():
    with pytest.raises(ValueError):
        Executor(plants=("warp-core-breach",))


# -- minimizer --------------------------------------------------------------------


def test_minimizer_converges_on_planted_failure():
    """A padded failing schedule shrinks to its essential core."""
    rng = random.Random(11)
    ops = [
        {"op": "arrive", "links": [0], "size": 4.0, "cap": 1.0},  # the trigger
    ]
    for _ in range(20):  # padding that does not matter
        ops.append(
            {
                "op": "arrive",
                "links": [rng.randrange(3)],
                "size": round(rng.uniform(1.0, 8.0), 3),
                "cap": None,
            }
        )
        ops.append({"op": "advance", "idle": None})
    spec = ScenarioSpec(
        topology=TopologySpec(family="synthetic", n_pops=10, n_hubs=4, seed=2),
        workload=WorkloadSpec(until=3000.0, n_peers=10),
        engine="vectorized",
        differential=DifferentialSpec(
            capacities=(20.0, 10.0, 30.0), ops=tuple(ops), regime="incremental-only"
        ),
        view=ViewSpec(mutators=("churn-mild",)),
    )
    executor = Executor(plants=("vector-cap-ignored",))
    signature = ("differential", "divergence")
    assert signature in executor.run(spec).signatures()

    results = [Minimizer(executor).minimize(spec, signature) for _ in range(2)]
    minimized = results[0].spec
    assert results[0].spec == results[1].spec  # deterministic
    assert signature in executor.run(minimized).signatures()
    assert minimized.sections == ("differential",)  # view section pruned
    assert len(minimized.differential.ops) <= 2
    assert len(minimized.differential.capacities) <= 1
    assert minimized.engine is None
    assert minimized.topology == TopologySpec()
    assert minimized.workload == WorkloadSpec()
    assert not results[0].budget_exhausted


def test_minimizer_leaves_nonreproducing_spec_alone():
    spec = _diff_spec()
    executor = Executor()  # no plant: the spec does not fail
    result = Minimizer(executor).minimize(spec, ("differential", "divergence"))
    assert result.spec == spec
    assert result.executions == 1


# -- fuzzer end to end ------------------------------------------------------------


def test_fuzzer_deterministic_and_finds_plants(tmp_path):
    config = FuzzConfig(
        seed=0,
        iterations=40,
        chaos_enabled=False,
        plants=tuple(sorted(PLANTS)),
        corpus_dir=str(tmp_path / "out"),
    )
    report = Fuzzer(config).run()
    twin = Fuzzer(FuzzConfig(**{**config.__dict__, "corpus_dir": None})).run()
    assert report.determinism_digest() == twin.determinism_digest()
    signatures = {f.failure.signature for f in report.findings}
    assert ("differential", "divergence") in signatures
    assert ("view", "byzantine-accepted") in signatures
    assert all(f.confirmed for f in report.findings)
    assert len(report.coverage) > 10
    assert len(report.corpus) >= 5

    fixture_files = sorted((tmp_path / "out" / "findings").glob("*.json"))
    assert len(fixture_files) == len(report.findings)
    for path in fixture_files:
        fixture = load_fixture(str(path))
        reproduced, outcome = replay_fixture(fixture)
        assert reproduced, (path.name, outcome.failures)
    assert (tmp_path / "out" / "coverage.json").exists()
    corpus_files = list((tmp_path / "out" / "corpus").glob("*.json"))
    assert len(corpus_files) == len(report.corpus)


def test_fuzzer_clean_run_has_no_findings():
    report = Fuzzer(FuzzConfig(seed=1, iterations=30, chaos_enabled=False)).run()
    assert not report.failed
    assert "determinism digest" in report.summary()


def test_fixture_validation_rejects_garbage(tmp_path):
    with pytest.raises(ValueError):
        Fixture.from_json({"format": "p4p-fuzz-fixture/99"})
    with pytest.raises(ValueError):
        Fixture.from_json(
            {
                "format": "p4p-fuzz-fixture/1",
                "spec": _diff_spec().to_json(),
                "expect": {"oracle": "differential"},  # missing kind
                "plants": [],
                "provenance": {},
            }
        )
    with pytest.raises(ValueError):
        Fixture.from_json(
            {
                "format": "p4p-fuzz-fixture/1",
                "spec": _diff_spec().to_json(),
                "expect": {"oracle": "differential", "kind": "divergence"},
                "plants": ["unknown-plant"],
                "provenance": {},
            }
        )


# -- CLI --------------------------------------------------------------------------


def test_cli_fuzz_exit_codes(tmp_path, capsys):
    # Clean short run: exit 0.
    code = cli_main(
        ["fuzz", "--seed", "1", "--iterations", "15", "--no-chaos"]
    )
    assert code == 0
    # Planted run: exit nonzero, fixtures written.
    out_dir = tmp_path / "run"
    code = cli_main(
        [
            "fuzz",
            "--seed", "0",
            "--iterations", "25",
            "--no-chaos",
            "--plant", "vector-cap-ignored",
            "--corpus-dir", str(out_dir),
        ]
    )
    assert code == 1
    fixtures = sorted((out_dir / "findings").glob("*.json"))
    assert fixtures
    # Replay the minimized fixture: reproduces -> exit 1.
    code = cli_main(["fuzz", "--replay", str(fixtures[0])])
    assert code == 1
    output = capsys.readouterr().out
    assert "REPRODUCED" in output
    # A garbage path: exit 2.
    assert cli_main(["fuzz", "--replay", str(tmp_path / "nope.json")]) == 2
