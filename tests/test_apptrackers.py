"""Tests for the appTracker integrations: BitTorrent, Pando, Liveswarms."""

import random

import pytest

from repro.apptracker.bittorrent import (
    P4PBitTorrentTracker,
    localized_tracker,
    native_tracker,
)
from repro.apptracker.pando import (
    ClientBandwidth,
    OptimizationService,
    PandoTracker,
    pattern_to_weights,
    session_from_estimates,
)
from repro.apptracker.selection import PeerInfo, PerAsSelector, RandomSelection
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.session import TrafficPattern
from repro.network.library import abilene
from repro.network.routing import RoutingTable


def abilene_itracker(**config_kwargs):
    return ITracker(
        topology=abilene(), config=ITrackerConfig(**config_kwargs)
    )


class TestP4PBitTorrentTracker:
    def make_tracker(self):
        itracker = abilene_itracker(mode=PriceMode.DYNAMIC, step_size=0.002)
        as_number = abilene().node("SEAT").as_number
        return P4PBitTorrentTracker(itrackers={as_number: itracker}), itracker

    def test_selector_uses_itracker_views(self):
        tracker, itracker = self.make_tracker()
        as_number = itracker.topology.node("SEAT").as_number
        assert as_number in tracker.selector.pdistances

    def test_select_peers(self):
        tracker, itracker = self.make_tracker()
        as_number = itracker.topology.node("SEAT").as_number
        client = PeerInfo(peer_id=0, pid="SEAT", as_number=as_number)
        candidates = [
            PeerInfo(peer_id=i, pid=pid, as_number=as_number)
            for i, pid in enumerate(["SEAT", "SEAT", "NYCM", "CHIN", "LOSA"], start=1)
        ]
        chosen = tracker.select_peers(client, candidates, 4, random.Random(0))
        assert len(chosen) == 4

    def test_hook_updates_views(self):
        tracker, itracker = self.make_tracker()
        as_number = itracker.topology.node("SEAT").as_number
        before = tracker.selector.pdistances[as_number]
        tracker.tracker_hook(100.0, {}, {("WASH", "NYCM"): 5000.0})
        after = tracker.selector.pdistances[as_number]
        assert after is not before
        assert after.distance("WASH", "NYCM") > before.distance("WASH", "NYCM")

    def test_hook_ignores_foreign_links(self):
        tracker, itracker = self.make_tracker()
        version = itracker.version
        tracker.tracker_hook(100.0, {}, {("X", "Y"): 100.0})
        assert itracker.version == version + 1  # update ran with empty loads

    def test_invalid_bounds_rejected(self):
        itracker = abilene_itracker()
        with pytest.raises(ValueError):
            P4PBitTorrentTracker(itrackers={1: itracker}, upper_intra=0.9, upper_inter=0.5)


class TestFactories:
    def test_native(self):
        assert native_tracker().name == "native"

    def test_localized_prefers_short_routes(self):
        routing = RoutingTable.build(abilene())
        selector = localized_tracker(routing, jitter=0.0)
        client = PeerInfo(peer_id=0, pid="NYCM", as_number=1)
        near = PeerInfo(peer_id=1, pid="WASH", as_number=1)
        far = PeerInfo(peer_id=2, pid="SEAT", as_number=1)
        chosen = selector.select(client, [far, near], 1, random.Random(0))
        assert chosen[0].pid == "WASH"


class TestPandoService:
    def estimates(self):
        return [
            ClientBandwidth(peer_id=1, pid="SEAT", upload_mbps=10.0, download_mbps=20.0),
            ClientBandwidth(peer_id=2, pid="SEAT", upload_mbps=10.0, download_mbps=20.0),
            ClientBandwidth(peer_id=3, pid="NYCM", upload_mbps=5.0, download_mbps=20.0),
            ClientBandwidth(peer_id=4, pid="WASH", upload_mbps=5.0, download_mbps=20.0),
        ]

    def test_session_aggregation(self):
        session = session_from_estimates(self.estimates())
        assert session.uploads["SEAT"] == 20.0
        assert session.downloads["NYCM"] == 20.0

    def test_negative_estimate_rejected(self):
        with pytest.raises(ValueError):
            ClientBandwidth(peer_id=1, pid="X", upload_mbps=-1.0, download_mbps=1.0)

    def test_weights_rows_normalized(self):
        service = OptimizationService(itracker=abilene_itracker(mode=PriceMode.HOP_COUNT))
        weights = service.compute_weights(self.estimates())
        assert weights
        by_src = {}
        for (src, dst), value in weights.items():
            assert value >= 0
            by_src.setdefault(src, 0.0)
            by_src[src] += value
        for src, total in by_src.items():
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_single_pid_yields_no_weights(self):
        service = OptimizationService(itracker=abilene_itracker(mode=PriceMode.HOP_COUNT))
        estimates = [
            ClientBandwidth(peer_id=1, pid="SEAT", upload_mbps=1.0, download_mbps=1.0)
        ]
        assert service.compute_weights(estimates) == {}

    def test_pattern_to_weights_symmetric(self):
        pattern = TrafficPattern(flows={("A", "B"): 10.0})
        weights = pattern_to_weights(pattern, gamma=1.0, symmetric=True)
        # Both directions get weight because connections carry both ways.
        assert weights[("A", "B")] == pytest.approx(1.0)
        assert weights[("B", "A")] == pytest.approx(1.0)

    def test_pattern_to_weights_directional(self):
        pattern = TrafficPattern(flows={("A", "B"): 10.0})
        weights = pattern_to_weights(pattern, gamma=1.0, symmetric=False)
        assert ("B", "A") not in weights


class TestPandoTracker:
    def test_refresh_installs_weights(self):
        service = OptimizationService(itracker=abilene_itracker(mode=PriceMode.HOP_COUNT))
        tracker = PandoTracker(service=service)
        estimates = [
            ClientBandwidth(peer_id=1, pid="SEAT", upload_mbps=10.0, download_mbps=10.0),
            ClientBandwidth(peer_id=2, pid="SNVA", upload_mbps=10.0, download_mbps=10.0),
        ]
        weights = tracker.refresh(estimates)
        assert weights
        # Intra-PID diagonal present.
        assert any(src == dst for src, dst in weights)

    def test_selection_follows_refreshed_weights(self):
        service = OptimizationService(itracker=abilene_itracker(mode=PriceMode.HOP_COUNT))
        tracker = PandoTracker(service=service)
        estimates = [
            ClientBandwidth(peer_id=1, pid="SEAT", upload_mbps=10.0, download_mbps=10.0),
            ClientBandwidth(peer_id=2, pid="SNVA", upload_mbps=10.0, download_mbps=10.0),
        ]
        tracker.refresh(estimates)
        client = PeerInfo(peer_id=9, pid="SEAT", as_number=1)
        candidates = [
            PeerInfo(peer_id=1, pid="SNVA", as_number=1),
            PeerInfo(peer_id=2, pid="NYCM", as_number=1),
        ]
        chosen = tracker.select_peers(client, candidates, 1, random.Random(1))
        assert len(chosen) == 1


class TestPerAsSelector:
    def test_dispatch(self):
        calls = []

        class Recorder(RandomSelection):
            def __init__(self, label):
                self.label = label

            def select(self, client, candidates, m, rng):
                calls.append(self.label)
                return super().select(client, candidates, m, rng)

        selector = PerAsSelector(
            by_as={1: Recorder("one")}, default=Recorder("default")
        )
        client_one = PeerInfo(peer_id=0, pid="A", as_number=1)
        client_other = PeerInfo(peer_id=1, pid="A", as_number=2)
        selector.select(client_one, [], 1, random.Random(0))
        selector.select(client_other, [], 1, random.Random(0))
        assert calls == ["one", "default"]
