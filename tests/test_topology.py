"""Unit tests for the PID-level topology model."""

import math

import pytest

from repro.network.topology import (
    Link,
    Node,
    NodeKind,
    Topology,
    great_circle_miles,
    total_capacity,
)


def make_triangle() -> Topology:
    topo = Topology(name="triangle")
    for pid in ("A", "B", "C"):
        topo.add_pid(pid)
    topo.add_edge("A", "B", capacity=100.0)
    topo.add_edge("B", "C", capacity=100.0)
    topo.add_edge("C", "A", capacity=100.0)
    return topo


class TestNode:
    def test_defaults(self):
        node = Node(pid="X")
        assert node.kind is NodeKind.AGGREGATION
        assert node.externally_visible
        assert node.metro == "X"

    def test_core_not_visible(self):
        assert not Node(pid="r1", kind=NodeKind.CORE).externally_visible

    def test_external_not_visible(self):
        assert not Node(pid="ext", kind=NodeKind.EXTERNAL).externally_visible

    def test_empty_pid_rejected(self):
        with pytest.raises(ValueError):
            Node(pid="")

    def test_explicit_metro_kept(self):
        assert Node(pid="X", metro="NYC").metro == "NYC"


class TestLink:
    def test_key(self):
        link = Link(src="A", dst="B", capacity=10.0)
        assert link.key == ("A", "B")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(src="A", dst="A", capacity=10.0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            Link(src="A", dst="B", capacity=0.0)

    def test_negative_background_rejected(self):
        with pytest.raises(ValueError):
            Link(src="A", dst="B", capacity=10.0, background=-1.0)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            Link(src="A", dst="B", capacity=10.0, ospf_weight=0.0)

    def test_headroom(self):
        link = Link(src="A", dst="B", capacity=10.0, background=4.0)
        assert link.headroom == pytest.approx(6.0)

    def test_headroom_never_negative(self):
        link = Link(src="A", dst="B", capacity=10.0, background=15.0)
        assert link.headroom == 0.0

    def test_utilization(self):
        link = Link(src="A", dst="B", capacity=10.0, background=2.0)
        assert link.utilization() == pytest.approx(0.2)
        assert link.utilization(3.0) == pytest.approx(0.5)


class TestTopology:
    def test_add_and_query(self):
        topo = make_triangle()
        assert len(topo) == 3
        assert topo.has_link("A", "B")
        assert topo.has_link("B", "A")
        assert set(topo.neighbors("A")) == {"B", "C"}

    def test_duplicate_pid_rejected(self):
        topo = make_triangle()
        with pytest.raises(ValueError):
            topo.add_pid("A")

    def test_duplicate_link_rejected(self):
        topo = make_triangle()
        with pytest.raises(ValueError):
            topo.add_link(Link(src="A", dst="B", capacity=1.0))

    def test_link_to_unknown_pid_rejected(self):
        topo = make_triangle()
        with pytest.raises(KeyError):
            topo.add_link(Link(src="A", dst="Z", capacity=1.0))

    def test_aggregation_pids_excludes_core(self):
        topo = make_triangle()
        topo.add_pid("r1", kind=NodeKind.CORE)
        assert "r1" not in topo.aggregation_pids
        assert set(topo.aggregation_pids) == {"A", "B", "C"}

    def test_interdomain_partition_of_links(self):
        topo = make_triangle()
        topo.links[("A", "B")].interdomain = True
        assert len(topo.interdomain_links) == 1
        assert len(topo.intradomain_links) == 5

    def test_validate_ok(self):
        make_triangle().validate()

    def test_validate_empty_fails(self):
        with pytest.raises(ValueError):
            Topology().validate()

    def test_copy_is_deep(self):
        topo = make_triangle()
        dup = topo.copy()
        dup.links[("A", "B")].background = 42.0
        assert topo.links[("A", "B")].background == 0.0
        dup.nodes["A"].metro = "changed"
        assert topo.nodes["A"].metro == "A"

    def test_pids_in_as(self):
        topo = make_triangle()
        topo.nodes["A"].as_number = 7
        assert topo.pids_in_as(7) == ["A"]

    def test_assign_distances_from_locations(self):
        topo = Topology()
        topo.add_pid("NY", location=(40.71, -74.01))
        topo.add_pid("DC", location=(38.91, -77.04))
        topo.add_edge("NY", "DC", capacity=10.0)
        topo.assign_distances_from_locations()
        distance = topo.link("NY", "DC").distance
        # NYC <-> Washington D.C. is roughly 200 miles.
        assert 180 < distance < 230
        assert topo.link("DC", "NY").distance == pytest.approx(distance)

    def test_total_capacity(self):
        topo = make_triangle()
        assert total_capacity(topo.links.values()) == pytest.approx(600.0)


class TestGreatCircle:
    def test_zero_distance(self):
        assert great_circle_miles((10.0, 20.0), (10.0, 20.0)) == pytest.approx(0.0)

    def test_symmetry(self):
        a, b = (47.6, -122.3), (25.8, -80.2)
        assert great_circle_miles(a, b) == pytest.approx(great_circle_miles(b, a))

    def test_quarter_circumference(self):
        # Pole to equator is a quarter of Earth's circumference (~6218 mi).
        distance = great_circle_miles((90.0, 0.0), (0.0, 0.0))
        assert distance == pytest.approx(math.pi / 2 * 3958.8, rel=1e-6)
