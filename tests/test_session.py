"""Tests for session demands and the application-side LPs (eqs. 1-7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pdistance import PDistanceMap
from repro.core.session import (
    SessionDemand,
    TrafficPattern,
    combine_link_loads,
    max_matching_throughput,
    min_cost_traffic,
)
from repro.network.library import abilene
from repro.network.routing import RoutingTable


def two_pid_session(u1=10.0, d1=10.0, u2=10.0, d2=10.0, rho=None):
    return SessionDemand(
        name="s",
        uploads={"A": u1, "B": u2},
        downloads={"A": d1, "B": d2},
        rho=rho or {},
    )


def pdistances(pab=1.0, pba=1.0):
    return PDistanceMap(
        pids=("A", "B"), distances={("A", "B"): pab, ("B", "A"): pba}
    )


class TestTrafficPattern:
    def test_total_and_flow(self):
        pattern = TrafficPattern(flows={("A", "B"): 3.0, ("B", "A"): 2.0})
        assert pattern.total() == 5.0
        assert pattern.flow("A", "B") == 3.0
        assert pattern.flow("B", "C") == 0.0

    def test_incoming_outgoing(self):
        pattern = TrafficPattern(flows={("A", "B"): 3.0, ("C", "B"): 2.0})
        assert pattern.incoming("B") == 5.0
        assert pattern.outgoing("A") == 3.0

    def test_self_flow_rejected(self):
        with pytest.raises(ValueError):
            TrafficPattern(flows={("A", "A"): 1.0})

    def test_negative_flow_rejected(self):
        with pytest.raises(ValueError):
            TrafficPattern(flows={("A", "B"): -1.0})

    def test_cost(self):
        pattern = TrafficPattern(flows={("A", "B"): 4.0})
        assert pattern.cost(pdistances(pab=2.0)) == 8.0

    def test_blend(self):
        current = TrafficPattern(flows={("A", "B"): 0.0})
        target = TrafficPattern(flows={("A", "B"): 10.0})
        halfway = current.blend(target, 0.5)
        assert halfway.flow("A", "B") == 5.0

    def test_blend_theta_one_reaches_target(self):
        current = TrafficPattern(flows={("A", "B"): 3.0})
        target = TrafficPattern(flows={("B", "A"): 7.0})
        result = current.blend(target, 1.0)
        assert result.flow("B", "A") == 7.0
        assert result.flow("A", "B") == 0.0

    def test_blend_validates_theta(self):
        with pytest.raises(ValueError):
            TrafficPattern.zero().blend(TrafficPattern.zero(), 1.5)

    def test_link_loads(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        pattern = TrafficPattern(flows={("SEAT", "NYCM"): 5.0})
        loads = combine_link_loads([pattern], routing)
        for key in routing.route("SEAT", "NYCM"):
            assert loads[key] == 5.0


class TestSessionDemand:
    def test_pids(self):
        assert set(two_pid_session().pids) == {"A", "B"}

    def test_pairs(self):
        assert set(two_pid_session().pairs()) == {("A", "B"), ("B", "A")}

    def test_mismatched_pids_rejected(self):
        with pytest.raises(ValueError):
            SessionDemand(name="s", uploads={"A": 1.0}, downloads={"B": 1.0})

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SessionDemand(name="s", uploads={"A": -1.0}, downloads={"A": 1.0})

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            two_pid_session(rho={("A", "A"): 0.1})
        with pytest.raises(ValueError):
            two_pid_session(rho={("A", "B"): 1.2})

    def test_rho_sum_must_stay_below_one(self):
        with pytest.raises(ValueError):
            SessionDemand(
                name="s",
                uploads={"A": 1.0, "B": 1.0, "C": 1.0},
                downloads={"A": 1.0, "B": 1.0, "C": 1.0},
                rho={("A", "B"): 0.6, ("A", "C"): 0.5},
            )
        SessionDemand(
            name="s",
            uploads={"A": 1.0, "B": 1.0, "C": 1.0},
            downloads={"A": 1.0, "B": 1.0, "C": 1.0},
            rho={("A", "B"): 0.4, ("A", "C"): 0.5},
        )


class TestMatchingLp:
    def test_symmetric_session(self):
        opt, pattern = max_matching_throughput(two_pid_session())
        # Each side can upload 10 and download 10 -> total matched 20.
        assert opt == pytest.approx(20.0)
        assert pattern.total() == pytest.approx(20.0)

    def test_upload_limited(self):
        opt, _ = max_matching_throughput(two_pid_session(u1=1.0, u2=1.0))
        assert opt == pytest.approx(2.0)

    def test_download_limited(self):
        opt, _ = max_matching_throughput(two_pid_session(d1=3.0, d2=0.0))
        assert opt == pytest.approx(3.0)

    def test_empty_session(self):
        session = SessionDemand(name="s", uploads={}, downloads={})
        opt, pattern = max_matching_throughput(session)
        assert opt == 0.0
        assert pattern.total() == 0.0

    def test_respects_capacities(self):
        session = SessionDemand(
            name="s",
            uploads={"A": 5.0, "B": 7.0, "C": 3.0},
            downloads={"A": 4.0, "B": 6.0, "C": 9.0},
        )
        _, pattern = max_matching_throughput(session)
        for pid in session.pids:
            assert pattern.outgoing(pid) <= session.uploads[pid] + 1e-6
            assert pattern.incoming(pid) <= session.downloads[pid] + 1e-6


class TestMinCostLp:
    def test_prefers_cheap_pairs(self):
        session = SessionDemand(
            name="s",
            uploads={"A": 10.0, "B": 10.0, "C": 10.0},
            downloads={"A": 10.0, "B": 10.0, "C": 10.0},
        )
        pmap = PDistanceMap(
            pids=("A", "B", "C"),
            distances={
                ("A", "B"): 1.0, ("B", "A"): 1.0,
                ("A", "C"): 100.0, ("C", "A"): 100.0,
                ("B", "C"): 100.0, ("C", "B"): 100.0,
            },
        )
        pattern = min_cost_traffic(session, pmap, beta=0.5)
        cheap = pattern.flow("A", "B") + pattern.flow("B", "A")
        expensive = pattern.total() - cheap
        assert cheap >= expensive

    def test_throughput_floor_met(self):
        session = two_pid_session()
        opt, _ = max_matching_throughput(session)
        pattern = min_cost_traffic(session, pdistances(), beta=0.8, opt=opt)
        assert pattern.total() >= 0.8 * opt - 1e-6

    def test_beta_zero_allows_empty(self):
        pattern = min_cost_traffic(two_pid_session(), pdistances(), beta=0.0)
        assert pattern.total() == pytest.approx(0.0, abs=1e-6)

    def test_robustness_bound_enforced(self):
        session = SessionDemand(
            name="s",
            uploads={"A": 10.0, "B": 10.0, "C": 10.0},
            downloads={"A": 10.0, "B": 10.0, "C": 10.0},
            rho={("A", "C"): 0.3},
        )
        pmap = PDistanceMap(
            pids=("A", "B", "C"),
            distances={
                ("A", "B"): 1.0, ("B", "A"): 1.0,
                ("A", "C"): 100.0, ("C", "A"): 100.0,
                ("B", "C"): 1.0, ("C", "B"): 1.0,
            },
        )
        pattern = min_cost_traffic(session, pmap, beta=0.8)
        out_a = pattern.outgoing("A")
        if out_a > 1e-6:
            assert pattern.flow("A", "C") >= 0.3 * out_a - 1e-6

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            min_cost_traffic(two_pid_session(), pdistances(), beta=1.5)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=20.0),
        st.floats(min_value=0.1, max_value=20.0),
        st.floats(min_value=0.1, max_value=1.0),
    )
    def test_cost_never_exceeds_matching_pattern_cost(self, u, d, beta):
        """The min-cost pattern is never costlier than the throughput-optimal
        one at the same floor."""
        session = two_pid_session(u1=u, d1=d, u2=u, d2=d)
        pmap = pdistances(pab=2.0, pba=3.0)
        opt, matching = max_matching_throughput(session)
        cheap = min_cost_traffic(session, pmap, beta=beta, opt=opt)
        assert cheap.cost(pmap) <= matching.cost(pmap) + 1e-6


class TestSessionLpProperties:
    """Property tests: LP solutions always respect the acceptable set."""

    @staticmethod
    def sessions():
        return st.integers(min_value=2, max_value=5).flatmap(
            lambda n: st.tuples(
                st.lists(
                    st.floats(min_value=0.0, max_value=50.0),
                    min_size=n, max_size=n,
                ),
                st.lists(
                    st.floats(min_value=0.0, max_value=50.0),
                    min_size=n, max_size=n,
                ),
            )
        )

    @settings(max_examples=40, deadline=None)
    @given(sessions(), st.floats(min_value=0.0, max_value=1.0))
    def test_min_cost_respects_caps_and_floor(self, caps, beta):
        uploads, downloads = caps
        pids = [f"P{i}" for i in range(len(uploads))]
        session = SessionDemand(
            name="prop",
            uploads=dict(zip(pids, uploads)),
            downloads=dict(zip(pids, downloads)),
        )
        distances = {
            (a, b): float((i * 7 + j * 3) % 11 + 1)
            for i, a in enumerate(pids)
            for j, b in enumerate(pids)
            if a != b
        }
        pmap = PDistanceMap(pids=tuple(pids), distances=distances)
        opt, _ = max_matching_throughput(session)
        pattern = min_cost_traffic(session, pmap, beta=beta, opt=opt)
        for pid in pids:
            assert pattern.outgoing(pid) <= session.uploads[pid] + 1e-6
            assert pattern.incoming(pid) <= session.downloads[pid] + 1e-6
        assert pattern.total() >= beta * opt - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(sessions())
    def test_matching_opt_bounded_by_capacity_sums(self, caps):
        uploads, downloads = caps
        pids = [f"P{i}" for i in range(len(uploads))]
        session = SessionDemand(
            name="prop",
            uploads=dict(zip(pids, uploads)),
            downloads=dict(zip(pids, downloads)),
        )
        opt, pattern = max_matching_throughput(session)
        assert opt <= min(sum(uploads), sum(downloads)) + 1e-6
        assert pattern.total() == pytest.approx(opt, abs=1e-6)
