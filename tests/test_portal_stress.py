"""Stress and adversarial-transport tests for both portal servers.

Concurrency (many clients, pipelined frames on one connection), torn and
oversized and garbage frames, mid-request disconnects -- and the async
serving plane's request-coalescing contract: k identical concurrent
``get_pdistances`` must cost exactly one view computation and produce k
correct replies.
"""

import json
import socket
import struct
import threading
import time

import pytest

from repro.core.itracker import ITracker
from repro.core.pdistance import uniform_pid_map
from repro.network.library import abilene
from repro.observability import NULL_TELEMETRY
from repro.portal import protocol
from repro.portal.aserver import AsyncPortalServer
from repro.portal.client import PortalClient
from repro.portal.server import PortalServer

SERVER_KINDS = ("threaded", "async-reuseport", "async-dispatcher")


def make_itracker() -> ITracker:
    topo = abilene()
    tracker = ITracker(
        topology=topo, pid_map=uniform_pid_map(topo), telemetry=NULL_TELEMETRY
    )
    links = sorted(topo.links)
    tracker.observe_loads(
        {link: 40.0 + 7.0 * index for index, link in enumerate(links)}, now=100.0
    )
    return tracker


def make_server(kind: str, tracker: ITracker, **kwargs):
    if kind == "threaded":
        return PortalServer(tracker, telemetry=NULL_TELEMETRY)
    accept_model = kind.split("-", 1)[1]
    kwargs.setdefault("workers", 2)
    return AsyncPortalServer(
        tracker, accept_model=accept_model, telemetry=NULL_TELEMETRY, **kwargs
    )


@pytest.fixture(params=SERVER_KINDS)
def server(request):
    with make_server(request.param, make_itracker()) as portal:
        yield portal


@pytest.mark.timeout(60)
class TestConcurrency:
    def test_many_concurrent_clients(self, server):
        n_clients, n_requests = 16, 8
        errors = []
        versions = []
        lock = threading.Lock()

        def worker():
            try:
                with PortalClient(*server.address) as client:
                    for _ in range(n_requests):
                        version = client.get_version()
                        view = client.get_pdistances(pids=["NYCM", "CHIN"])
                        with lock:
                            versions.append(version)
                            assert set(view.pids) == {"NYCM", "CHIN"}
            except Exception as exc:  # pragma: no cover - failure path
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(versions) == n_clients * n_requests
        assert set(versions) == {1}

    def test_pipelined_requests_answered_in_order(self, server):
        """A client may write many frames before reading: responses come
        back FIFO on that connection."""
        messages = [
            {"method": "get_version", "params": {}},
            {"method": "get_pdistances", "params": {"pids": ["NYCM"]}},
            {"method": "no_such_method", "params": {}},
            {"method": "get_policy", "params": {}},
            {"method": "get_version", "params": {}},
        ] * 10
        with socket.create_connection(server.address, timeout=10.0) as sock:
            for message in messages:
                sock.sendall(protocol.encode_frame(message))
            responses = [protocol.read_frame(sock) for _ in messages]
        for message, response in zip(messages, responses):
            if message["method"] == "no_such_method":
                assert "error" in response
            else:
                assert "result" in response
        # order: every 5th starting at 0 is a version response
        for index in range(0, len(messages), 5):
            assert responses[index]["result"]["version"] == 1


@pytest.mark.timeout(60)
class TestTornInput:
    def test_mid_request_disconnect_leaves_server_serving(self, server):
        # half a header
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(b"\x00\x00")
        # a header promising bytes that never arrive
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(struct.pack(">I", 512) + b'{"method":')
        # a clean request still works afterwards
        with PortalClient(*server.address) as client:
            assert client.get_version() == 1

    def test_oversized_frame_severs_connection(self, server):
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            sock.settimeout(10.0)
            assert sock.recv(1) == b""  # server hung up, no response
        with PortalClient(*server.address) as client:
            assert client.get_version() == 1

    def test_garbage_payload_severs_connection(self, server):
        payload = b"\xff\xfenot json"
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            sock.settimeout(10.0)
            assert sock.recv(1) == b""
        with PortalClient(*server.address) as client:
            assert client.get_version() == 1

    def test_non_object_payload_severs_connection(self, server):
        payload = json.dumps([1, 2, 3]).encode()
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            sock.settimeout(10.0)
            assert sock.recv(1) == b""
        with PortalClient(*server.address) as client:
            assert client.get_version() == 1


@pytest.mark.timeout(60)
class TestCoalescing:
    @pytest.mark.parametrize("accept_model", ["reuseport", "dispatcher"])
    def test_identical_concurrent_view_requests_compute_once(self, accept_model):
        """k concurrent ``get_pdistances`` against a stale snapshot: one
        slow view computation, k byte-identical correct replies."""
        tracker = make_itracker()
        computations = []
        real_snapshot = tracker.view_snapshot

        def slow_snapshot():
            computations.append(threading.get_ident())
            time.sleep(0.4)  # wide window: every request arrives mid-compute
            return real_snapshot()

        tracker.view_snapshot = slow_snapshot  # instance attr shadows method
        k = 8
        results = []
        errors = []
        lock = threading.Lock()
        barrier = threading.Barrier(k)

        def worker():
            try:
                barrier.wait(timeout=10)
                with socket.create_connection(server.address, timeout=15.0) as sock:
                    sock.sendall(
                        protocol.encode_frame(
                            {"method": "get_pdistances", "params": {}}
                        )
                    )
                    response = protocol.read_frame(sock)
                with lock:
                    results.append(response)
            except Exception as exc:  # pragma: no cover - failure path
                with lock:
                    errors.append(exc)

        with make_server(
            f"async-{accept_model}", tracker, workers=1
        ) as server:
            threads = [threading.Thread(target=worker) for _ in range(k)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)

        assert not errors
        assert len(results) == k
        assert len(computations) == 1, (
            f"{len(computations)} view computations for {k} identical "
            f"concurrent requests; coalescing must collapse them to one"
        )
        # every reply is correct and identical
        tracker.view_snapshot = real_snapshot
        expected = protocol.pdistance_to_wire(tracker.get_pdistances())
        for response in results:
            assert response == {"result": expected}

    def test_publication_reused_across_requests(self):
        """After the first request computes the snapshot, later requests
        (same version) must not recompute."""
        tracker = make_itracker()
        computations = []
        real_snapshot = tracker.view_snapshot

        def counting_snapshot():
            computations.append(1)
            return real_snapshot()

        tracker.view_snapshot = counting_snapshot
        with make_server("async-reuseport", tracker, workers=1) as server:
            with PortalClient(*server.address) as client:
                first = client.get_pdistances(pids=["NYCM", "CHIN"])
                second = client.get_pdistances(pids=["WASH"])
                third = client.get_pdistances()
        assert len(computations) == 1
        assert set(first.pids) == {"NYCM", "CHIN"}
        assert set(second.pids) == {"WASH"}
        assert len(third.pids) == len(tracker.topology.nodes)
