"""Tests for peer-selection engines (Sec. 6.2)."""

import random
from collections import Counter

import pytest

from repro.apptracker.selection import (
    DelayLocalizedSelection,
    P4PSelection,
    PeerInfo,
    RandomSelection,
    WeightedSelection,
    concave_transform,
    pdistance_weights,
)
from repro.core.pdistance import PDistanceMap


def make_peers(spec):
    """spec: list of (count, pid, as_number)."""
    peers = []
    next_id = 0
    for count, pid, as_number in spec:
        for _ in range(count):
            peers.append(PeerInfo(peer_id=next_id, pid=pid, as_number=as_number))
            next_id += 1
    return peers


def flat_pdistance(pids, intra=0.0, inter=1.0, overrides=None):
    distances = {}
    for a in pids:
        for b in pids:
            distances[(a, b)] = intra if a == b else inter
    for pair, value in (overrides or {}).items():
        distances[pair] = value
    return PDistanceMap(pids=tuple(pids), distances=distances)


class TestRandomSelection:
    def test_returns_m_peers(self):
        peers = make_peers([(30, "A", 1)])
        chosen = RandomSelection().select(peers[0], peers[1:], 10, random.Random(0))
        assert len(chosen) == 10
        assert len({p.peer_id for p in chosen}) == 10

    def test_small_pool_returns_all(self):
        peers = make_peers([(5, "A", 1)])
        chosen = RandomSelection().select(peers[0], peers[1:], 10, random.Random(0))
        assert len(chosen) == 4

    def test_uniform_over_pids(self):
        peers = make_peers([(100, "A", 1), (100, "B", 1)])
        client = PeerInfo(peer_id=999, pid="A", as_number=1)
        counts = Counter()
        rng = random.Random(7)
        for _ in range(200):
            for peer in RandomSelection().select(client, peers, 10, rng):
                counts[peer.pid] += 1
        ratio = counts["A"] / counts["B"]
        assert 0.8 < ratio < 1.25


class TestDelayLocalized:
    def test_prefers_low_delay(self):
        peers = make_peers([(10, "NEAR", 1), (10, "FAR", 1)])
        client = PeerInfo(peer_id=999, pid="NEAR", as_number=1)
        delay = lambda a, b: 1.0 if a == b else 100.0
        selector = DelayLocalizedSelection(delay=delay, jitter=0.0)
        chosen = selector.select(client, peers, 10, random.Random(0))
        assert all(peer.pid == "NEAR" for peer in chosen)

    def test_fills_from_far_when_near_exhausted(self):
        peers = make_peers([(3, "NEAR", 1), (10, "FAR", 1)])
        client = PeerInfo(peer_id=999, pid="NEAR", as_number=1)
        delay = lambda a, b: 1.0 if a == b else 100.0
        chosen = DelayLocalizedSelection(delay=delay).select(
            client, peers, 8, random.Random(0)
        )
        assert sum(1 for peer in chosen if peer.pid == "NEAR") == 3
        assert len(chosen) == 8


class TestConcaveTransform:
    def test_normalizes(self):
        result = concave_transform({"a": 1.0, "b": 3.0})
        assert sum(result.values()) == pytest.approx(1.0)

    def test_boosts_small_weights(self):
        flat = {"a": 1.0, "b": 9.0}
        plain_ratio = 1.0 / 10.0
        transformed = concave_transform(flat, gamma=0.5)
        assert transformed["a"] > plain_ratio

    def test_gamma_one_is_identity_normalization(self):
        result = concave_transform({"a": 1.0, "b": 3.0}, gamma=1.0)
        assert result["a"] == pytest.approx(0.25)

    def test_zero_total_uniform(self):
        result = concave_transform({"a": 0.0, "b": 0.0})
        assert result["a"] == pytest.approx(0.5)

    def test_empty(self):
        assert concave_transform({}) == {}

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            concave_transform({"a": 1.0}, gamma=0.0)


class TestPdistanceWeights:
    def test_inverse_distance(self):
        pmap = flat_pdistance(["A", "B", "C"], overrides={("A", "B"): 1.0, ("A", "C"): 4.0})
        weights = pdistance_weights(pmap, "A", ["B", "C"], gamma=1.0)
        assert weights["B"] == pytest.approx(0.8)
        assert weights["C"] == pytest.approx(0.2)

    def test_zero_distance_dominates(self):
        pmap = flat_pdistance(["A", "B", "C"], overrides={("A", "B"): 0.0, ("A", "C"): 1.0})
        weights = pdistance_weights(pmap, "A", ["B", "C"], gamma=1.0)
        assert weights["B"] > 0.99


class TestP4PSelection:
    def make_selector(self, pids=("P1", "P2", "P3"), **kwargs):
        pmap = flat_pdistance(
            list(pids),
            intra=0.0,
            inter=1.0,
            overrides=kwargs.pop("overrides", None),
        )
        return P4PSelection(pdistances={1: pmap}, **kwargs)

    def test_intra_pid_bounded_at_70_percent(self):
        peers = make_peers([(100, "P1", 1), (100, "P2", 1)])
        client = PeerInfo(peer_id=999, pid="P1", as_number=1)
        selector = self.make_selector()
        chosen = selector.select(client, peers, 20, random.Random(0))
        intra = sum(1 for peer in chosen if peer.pid == "P1")
        assert intra == 14  # floor(0.7 * 20)
        assert len(chosen) == 20

    def test_small_pid_uses_what_exists(self):
        peers = make_peers([(3, "P1", 1), (100, "P2", 1)])
        client = PeerInfo(peer_id=999, pid="P1", as_number=1)
        chosen = self.make_selector().select(client, peers, 20, random.Random(0))
        intra = sum(1 for peer in chosen if peer.pid == "P1")
        assert intra == 3
        assert len(chosen) == 20

    def test_inter_pid_follows_pdistance_weights(self):
        peers = make_peers([(200, "P2", 1), (200, "P3", 1)])
        client = PeerInfo(peer_id=999, pid="P1", as_number=1)
        selector = self.make_selector(
            overrides={("P1", "P2"): 1.0, ("P1", "P3"): 10.0}, gamma=1.0
        )
        counts = Counter()
        rng = random.Random(3)
        for _ in range(50):
            for peer in selector.select(client, peers, 16, rng):
                counts[peer.pid] += 1
        assert counts["P2"] > counts["P3"] * 2

    def test_inter_as_stage_used_for_foreign_peers(self):
        pmap = flat_pdistance(["P1", "P2", "X1", "X2"], overrides={
            ("P1", "X1"): 2.0, ("P1", "X2"): 20.0,
        })
        selector = P4PSelection(pdistances={1: pmap}, gamma=1.0)
        peers = make_peers([(50, "X1", 2), (50, "X2", 3)])
        client = PeerInfo(peer_id=999, pid="P1", as_number=1)
        counts = Counter()
        rng = random.Random(4)
        for _ in range(50):
            for peer in selector.select(client, peers, 10, rng):
                counts[peer.as_number] += 1
        assert counts[2] > counts[3]

    def test_unknown_as_falls_back_to_random(self):
        selector = self.make_selector()
        peers = make_peers([(30, "P1", 99)])
        client = PeerInfo(peer_id=999, pid="P1", as_number=99)
        chosen = selector.select(client, peers, 10, random.Random(0))
        assert len(chosen) == 10

    def test_never_exceeds_m(self):
        peers = make_peers([(50, "P1", 1), (50, "P2", 1), (50, "X1", 2)])
        client = PeerInfo(peer_id=999, pid="P1", as_number=1)
        pmap = flat_pdistance(["P1", "P2", "X1"])
        selector = P4PSelection(pdistances={1: pmap})
        for m in (1, 5, 17, 40):
            chosen = selector.select(client, peers, m, random.Random(m))
            assert len(chosen) == m
            assert len({peer.peer_id for peer in chosen}) == m

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            P4PSelection(pdistances={}, upper_intra=0.9, upper_inter=0.8)


class TestWeightedSelection:
    def test_follows_weights(self):
        selector = WeightedSelection(
            weights={("P1", "P2"): 0.9, ("P1", "P3"): 0.1}
        )
        peers = make_peers([(200, "P2", 1), (200, "P3", 1)])
        client = PeerInfo(peer_id=999, pid="P1", as_number=1)
        counts = Counter()
        rng = random.Random(5)
        for _ in range(100):
            for peer in selector.select(client, peers, 10, rng):
                counts[peer.pid] += 1
        assert counts["P2"] > counts["P3"] * 4

    def test_exhausts_pid_then_moves_on(self):
        selector = WeightedSelection(weights={("P1", "P2"): 1.0})
        peers = make_peers([(3, "P2", 1), (10, "P3", 1)])
        client = PeerInfo(peer_id=999, pid="P1", as_number=1)
        chosen = selector.select(client, peers, 8, random.Random(0))
        assert len(chosen) == 8

    def test_zero_weights_fall_back_to_random(self):
        selector = WeightedSelection(weights={})
        peers = make_peers([(20, "P2", 1)])
        client = PeerInfo(peer_id=999, pid="P1", as_number=1)
        chosen = selector.select(client, peers, 5, random.Random(0))
        assert len(chosen) == 5
