"""Tests for provider objectives and the centralized LP benchmarks."""

import numpy as np
import pytest

from repro.core.objectives import (
    BandwidthDistanceProduct,
    MinMaxUtilization,
    apply_peak_background,
    effective_capacity,
)
from repro.core.session import SessionDemand, max_matching_throughput
from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.network.topology import Link, Topology


def small_topology():
    """A--B--C line plus a long A--C detour; capacities 10 everywhere."""
    topo = Topology()
    for pid in "ABC":
        topo.add_pid(pid)
    topo.add_edge("A", "B", capacity=10.0, distance=1.0)
    topo.add_edge("B", "C", capacity=10.0, distance=1.0)
    topo.add_edge("A", "C", capacity=10.0, distance=5.0)
    return topo


def session_on(pids, cap=4.0):
    return SessionDemand(
        name="s",
        uploads={pid: cap for pid in pids},
        downloads={pid: cap for pid in pids},
    )


class TestEffectiveCapacity:
    def test_plain_link(self):
        link = Link(src="A", dst="B", capacity=10.0)
        assert effective_capacity(link) == 10.0

    def test_interdomain_without_estimate(self):
        link = Link(src="A", dst="B", capacity=10.0, interdomain=True)
        assert effective_capacity(link) == 10.0

    def test_interdomain_with_virtual_capacity(self):
        link = Link(
            src="A", dst="B", capacity=10.0, interdomain=True, virtual_capacity=3.0
        )
        assert effective_capacity(link) == 3.0

    def test_zero_virtual_capacity_clamped(self):
        link = Link(
            src="A", dst="B", capacity=10.0, interdomain=True, virtual_capacity=0.0
        )
        assert effective_capacity(link) > 0


class TestMinMaxUtilization:
    def test_evaluate(self):
        topo = small_topology()
        topo.link("A", "B").background = 5.0
        mlu = MinMaxUtilization()
        value = mlu.evaluate(topo, {("A", "B"): 2.0})
        assert value == pytest.approx(0.7)

    def test_supergradient_sign(self):
        """The most-utilized link gets the largest gradient component."""
        topo = small_topology()
        mlu = MinMaxUtilization()
        order = tuple(topo.links)
        loads = {("A", "B"): 8.0, ("B", "C"): 1.0}
        xi = mlu.supergradient(topo, order, loads)
        hot = order.index(("A", "B"))
        assert xi[hot] == max(xi)
        assert xi[hot] == pytest.approx(0.0)  # at alpha * c_e exactly

    def test_no_cost_offsets(self):
        assert MinMaxUtilization().cost_offsets(small_topology()) == {}

    def test_centralized_optimum_value(self):
        topo = small_topology()
        routing = RoutingTable.build(topo)
        session = session_on(["A", "C"], cap=8.0)
        mlu = MinMaxUtilization()
        value, patterns = mlu.centralized_optimum(topo, routing, [session], beta=1.0)
        # Routing pins A<->C to the direct link, so 8 Mbps each way over
        # capacity 10 gives MLU 0.8; throughput floor 16 is met exactly.
        assert value == pytest.approx(0.8, rel=1e-6)
        assert patterns[0].total() >= 16 - 1e-6

    def test_centralized_respects_virtual_capacity(self):
        topo = small_topology()
        topo.link("A", "C").interdomain = True
        topo.link("A", "C").virtual_capacity = 1.0
        routing = RoutingTable.build(topo)
        session = session_on(["A", "C"], cap=3.0)
        mlu = MinMaxUtilization()
        _, patterns = mlu.centralized_optimum(topo, routing, [session], beta=0.5)
        load_ac = patterns[0].link_loads(routing).get(("A", "C"), 0.0)
        assert load_ac <= 1.0 + 1e-6
        assert patterns[0].total() >= 3.0 - 1e-6


class TestBandwidthDistanceProduct:
    def test_cost_offsets_are_distances(self):
        topo = small_topology()
        offsets = BandwidthDistanceProduct().cost_offsets(topo)
        assert offsets[("A", "C")] == 5.0

    def test_evaluate(self):
        topo = small_topology()
        bdp = BandwidthDistanceProduct()
        assert bdp.evaluate(topo, {("A", "C"): 2.0}) == pytest.approx(10.0)

    def test_supergradient(self):
        topo = small_topology()
        bdp = BandwidthDistanceProduct()
        order = tuple(topo.links)
        xi = bdp.supergradient(topo, order, {("A", "B"): 4.0})
        index = order.index(("A", "B"))
        assert xi[index] == pytest.approx(4.0 - 10.0)

    def test_centralized_prefers_short_path(self):
        topo = small_topology()
        routing = RoutingTable.build(topo)
        # Make the short path the routing choice for (A, C): weight the
        # direct long link out of favor.
        topo.link("A", "C").ospf_weight = 10.0
        topo.link("C", "A").ospf_weight = 10.0
        routing = RoutingTable.build(topo)
        session = session_on(["A", "C"], cap=2.0)
        bdp = BandwidthDistanceProduct()
        value, patterns = bdp.centralized_optimum(topo, routing, [session], beta=1.0)
        # All traffic A<->C now rides the 2-hop distance-2 path: BDP = 4 * 2.
        assert value == pytest.approx(8.0, rel=1e-6)


class TestPeakBackground:
    def test_applies_peaks(self):
        topo = small_topology()
        peaked = apply_peak_background(topo, {("A", "B"): 9.0})
        assert peaked.link("A", "B").background == 9.0
        assert topo.link("A", "B").background == 0.0  # original untouched

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            apply_peak_background(small_topology(), {("X", "Y"): 1.0})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            apply_peak_background(small_topology(), {("A", "B"): -1.0})


class TestCentralizedOnAbilene:
    def test_mlu_beats_all_on_one_link(self):
        """The centralized optimum never exceeds the MLU of naive routing."""
        topo = abilene()
        routing = RoutingTable.build(topo)
        pids = ["SEAT", "NYCM", "CHIN", "ATLA"]
        session = SessionDemand(
            name="swarm",
            uploads={pid: 100.0 for pid in pids},
            downloads={pid: 100.0 for pid in pids},
        )
        mlu = MinMaxUtilization()
        optimum, patterns = mlu.centralized_optimum(topo, routing, [session], beta=1.0)
        # Naive: send the matching-optimal pattern as-is.
        _, naive = max_matching_throughput(session)
        naive_value = mlu.evaluate(
            topo, naive.link_loads(routing)
        )
        assert optimum <= naive_value + 1e-9


class TestObjectiveEdgeCases:
    def test_mlu_with_virtual_capacity_in_evaluation(self):
        topo = small_topology()
        topo.link("A", "C").interdomain = True
        topo.link("A", "C").virtual_capacity = 2.0
        mlu = MinMaxUtilization()
        # 1 Mbps over a 2 Mbps virtual capacity is 50% "utilization" even
        # though the physical link is 10 Mbps.
        value = mlu.evaluate(topo, {("A", "C"): 1.0})
        assert value == pytest.approx(0.5)

    def test_bdp_ignores_zero_load_links(self):
        topo = small_topology()
        bdp = BandwidthDistanceProduct()
        assert bdp.evaluate(topo, {}) == 0.0

    def test_centralized_with_two_sessions_shares_links(self):
        topo = small_topology()
        routing = RoutingTable.build(topo)
        sessions = [
            session_on(["A", "B"], cap=4.0),
            SessionDemand(
                name="s2",
                uploads={"B": 4.0, "C": 4.0},
                downloads={"B": 4.0, "C": 4.0},
            ),
        ]
        sessions[0].name = "s1"
        mlu = MinMaxUtilization()
        value, patterns = mlu.centralized_optimum(topo, routing, sessions, beta=1.0)
        assert len(patterns) == 2
        assert patterns[0].total() > 0
        assert patterns[1].total() > 0
        assert 0 < value <= 1.0
