"""Tests for the event engine and the session-level TCP flow network."""

import numpy as np
import pytest

from repro.simulator.engine import EventEngine
from repro.simulator.tcp import FlowNetwork, VectorizedFlowNetwork


class TestEventEngine:
    def test_timers_fire_in_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.run_timers_until(3.0)
        assert fired == ["a", "b"]
        assert engine.now == 3.0

    def test_same_time_fifo(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(1.0, lambda: fired.append(2))
        engine.run_timers_until(1.0)
        assert fired == [1, 2]

    def test_cancel(self):
        engine = EventEngine()
        fired = []
        timer = engine.schedule(1.0, lambda: fired.append("x"))
        engine.cancel(timer)
        engine.run_timers_until(2.0)
        assert fired == []
        assert engine.pending == 0

    def test_callback_can_schedule(self):
        engine = EventEngine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule(0.5, lambda: fired.append("second"))

        engine.schedule(1.0, first)
        engine.run_timers_until(2.0)
        assert fired == ["first", "second"]

    def test_future_timers_not_fired(self):
        engine = EventEngine()
        fired = []
        engine.schedule(5.0, lambda: fired.append("late"))
        engine.run_timers_until(2.0)
        assert fired == []
        assert engine.pending == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventEngine().schedule(-1.0, lambda: None)

    def test_peek_time(self):
        engine = EventEngine()
        assert engine.peek_time() is None
        engine.schedule(3.0, lambda: None)
        assert engine.peek_time() == 3.0

    def test_time_cannot_reverse(self):
        engine = EventEngine()
        engine.advance_to(5.0)
        with pytest.raises(ValueError):
            engine.advance_to(2.0)


class TestFlowNetwork:
    def test_single_flow_completion_time(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        net.start_flow([link], 50.0)
        assert net.next_completion() == pytest.approx(5.0)

    def test_two_flows_share_link(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        net.start_flow([link], 50.0)
        net.start_flow([link], 50.0)
        assert net.next_completion() == pytest.approx(10.0)

    def test_advance_and_finish(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        flow = net.start_flow([link], 50.0)
        net.advance(5.0)
        done = net.pop_finished()
        assert [f.flow_id for f in done] == [flow.flow_id]
        assert net.n_flows == 0

    def test_partial_progress(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        net.start_flow([link], 50.0)
        net.advance(2.0)
        assert net.pop_finished() == []
        assert net.next_completion() == pytest.approx(5.0)

    def test_rates_adapt_on_arrival(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        net.start_flow([link], 100.0)
        net.advance(2.0)  # 20 mbit done, 80 left
        net.start_flow([link], 100.0)
        # Both now at 5 Mbps: first finishes at 2 + 80/5 = 18.
        assert net.next_completion() == pytest.approx(18.0)

    def test_rates_adapt_on_departure(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        first = net.start_flow([link], 100.0)
        net.start_flow([link], 100.0)
        net.advance(2.0)  # each did 10
        net.abort_flow(first.flow_id)
        # Remaining flow accelerates to 10 Mbps: 90 left -> t = 11.
        assert net.next_completion() == pytest.approx(11.0)

    def test_link_byte_accounting(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        net.start_flow([link], 50.0)
        net.advance(3.0)
        assert net.link_traffic()["l"] == pytest.approx(30.0)

    def test_accounting_across_rate_changes(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        net.start_flow([link], 20.0)
        net.advance(2.0)  # done at t=2 exactly
        net.pop_finished()
        net.advance(5.0)  # idle
        net.start_flow([link], 10.0)
        net.advance(6.0)
        assert net.link_traffic()["l"] == pytest.approx(30.0)

    def test_multilink_flow_takes_min(self):
        net = FlowNetwork()
        a = net.add_link("a", 10.0)
        b = net.add_link("b", 4.0)
        net.start_flow([a, b], 8.0)
        assert net.next_completion() == pytest.approx(2.0)

    def test_utilization(self):
        net = FlowNetwork()
        a = net.add_link("a", 10.0)
        net.start_flow([a], 100.0)
        assert net.utilization(a) == pytest.approx(1.0)

    def test_idle_network(self):
        net = FlowNetwork()
        net.add_link("a", 10.0)
        assert net.next_completion() is None
        assert net.pop_finished() == []

    def test_duplicate_link_name_rejected(self):
        net = FlowNetwork()
        net.add_link("a", 10.0)
        with pytest.raises(ValueError):
            net.add_link("a", 5.0)

    def test_bad_flow_size_rejected(self):
        net = FlowNetwork()
        net.add_link("a", 10.0)
        with pytest.raises(ValueError):
            net.start_flow([0], 0.0)

    def test_unknown_link_index_rejected(self):
        net = FlowNetwork()
        net.add_link("a", 10.0)
        with pytest.raises(IndexError):
            net.start_flow([5], 1.0)

    def test_clock_monotonic(self):
        net = FlowNetwork()
        net.add_link("a", 10.0)
        net.advance(5.0)
        with pytest.raises(ValueError):
            net.advance(1.0)

    def test_conservation_many_flows(self):
        """Total delivered Mbit equals total link Mbit on a single link."""
        net = FlowNetwork()
        link = net.add_link("l", 7.0)
        sizes = [5.0, 9.0, 3.0, 14.0]
        for size in sizes:
            net.start_flow([link], size)
        total_done = 0.0
        for _ in range(10):
            eta = net.next_completion()
            if eta is None:
                break
            net.advance(eta)
            for flow in net.pop_finished():
                total_done += 1
        assert total_done == len(sizes)
        assert net.link_traffic()["l"] == pytest.approx(sum(sizes), rel=1e-6)


class TestFlowRateCaps:
    def test_cap_binds_below_fair_share(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        net.start_flow([link], 10.0, rate_cap=2.0)
        net.start_flow([link], 10.0)
        # Capped flow at 2; the other takes the remaining 8.
        assert net.next_completion() == pytest.approx(10.0 / 8.0)

    def test_cap_above_share_is_inert(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        net.start_flow([link], 10.0, rate_cap=100.0)
        net.start_flow([link], 10.0, rate_cap=100.0)
        assert net.next_completion() == pytest.approx(2.0)

    def test_capped_flow_without_links(self):
        net = FlowNetwork()
        net.add_link("l", 10.0)
        flow = net.start_flow([], 4.0, rate_cap=2.0)
        net.advance(2.0)
        done = net.pop_finished()
        assert [f.flow_id for f in done] == [flow.flow_id]

    def test_nonpositive_cap_rejected(self):
        net = FlowNetwork()
        net.add_link("l", 10.0)
        with pytest.raises(ValueError):
            net.start_flow([0], 1.0, rate_cap=0.0)

    def test_accounting_respects_caps(self):
        net = FlowNetwork()
        link = net.add_link("l", 10.0)
        net.start_flow([link], 100.0, rate_cap=3.0)
        net.advance(2.0)
        assert net.link_traffic()["l"] == pytest.approx(6.0)


class TestRegressionsFromDifferentialHarness:
    """Bugs the scalar-vs-vectorized differential harness uncovered."""

    @pytest.mark.parametrize("engine_cls", [FlowNetwork, VectorizedFlowNetwork])
    def test_uncapped_linkless_flow_pops_immediately(self, engine_cls):
        """An unconstrained flow (no links, no cap) has infinite rate and
        must complete without the clock moving.  The scalar engine used to
        report next_completion == now forever without ever popping the
        flow, spinning any driving loop.
        """
        net = engine_cls()
        net.add_link("l", 10.0)  # unrelated link; the flow crosses nothing
        flow = net.start_flow([], 4.0)
        assert net.next_completion() == pytest.approx(0.0)
        done = net.pop_finished()
        assert [f.flow_id for f in done] == [flow.flow_id]
        assert done[0].remaining_mbit == 0.0
        assert net.next_completion() is None

    @pytest.mark.parametrize("engine_cls", [FlowNetwork, VectorizedFlowNetwork])
    def test_linkless_solve_keeps_link_rates_float(self, engine_cls):
        """A solve over only linkless flows used to rebind the link-rate
        array to int64 (numpy's bincount returns integers for an empty
        entry set even with weights), silently truncating every rate
        written afterwards -- e.g. a 10.12 Mbps allocation stored as 10.
        """
        net = engine_cls()
        link = net.add_link("l", 10.121)
        net.start_flow([], 1.0, rate_cap=2.0)
        net.next_completion()  # solve with zero link-crossing entries
        net.start_flow([link], 50.0)
        net.next_completion()
        assert net._link_rates.dtype == np.float64
        assert net.utilization(link) == pytest.approx(1.0)
