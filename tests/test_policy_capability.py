"""Tests for the policy and capability interfaces."""

import pytest

from repro.core.capability import (
    AccessDeniedError,
    Capability,
    CapabilityKind,
    CapabilityRegistry,
)
from repro.core.policy import NetworkPolicy, TimeOfDayPolicy, UsageThresholds


class TestTimeOfDayPolicy:
    def test_inside_window(self):
        policy = TimeOfDayPolicy(link=("A", "B"), avoid_windows=((18.0, 23.0),))
        assert policy.should_avoid(20.0)
        assert not policy.should_avoid(10.0)

    def test_window_boundaries(self):
        policy = TimeOfDayPolicy(link=("A", "B"), avoid_windows=((18.0, 23.0),))
        assert policy.should_avoid(18.0)
        assert not policy.should_avoid(23.0)

    def test_wrapping_window(self):
        policy = TimeOfDayPolicy(link=("A", "B"), avoid_windows=((22.0, 2.0),))
        assert policy.should_avoid(23.0)
        assert policy.should_avoid(1.0)
        assert not policy.should_avoid(12.0)

    def test_hour_normalized(self):
        policy = TimeOfDayPolicy(link=("A", "B"), avoid_windows=((18.0, 23.0),))
        assert policy.should_avoid(44.0)  # 44 mod 24 = 20

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            TimeOfDayPolicy(link=("A", "B"), avoid_windows=((0.0, 25.0),))


class TestUsageThresholds:
    def test_link_state(self):
        thresholds = UsageThresholds(near_congestion=0.7)
        assert thresholds.link_state(0.8) == "near-congestion"
        assert thresholds.link_state(0.5) == "normal"

    def test_heavy_user(self):
        thresholds = UsageThresholds(heavy_usage=0.1)
        assert thresholds.is_heavy_user(0.15)
        assert not thresholds.is_heavy_user(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            UsageThresholds(near_congestion=0.0)
        with pytest.raises(ValueError):
            UsageThresholds(heavy_usage=2.0)


class TestNetworkPolicy:
    def test_links_to_avoid(self):
        policy = NetworkPolicy()
        policy.add_time_of_day(
            TimeOfDayPolicy(link=("A", "B"), avoid_windows=((18.0, 23.0),))
        )
        policy.add_time_of_day(
            TimeOfDayPolicy(link=("C", "D"), avoid_windows=((8.0, 10.0),))
        )
        assert policy.links_to_avoid(19.0) == [("A", "B")]
        assert policy.links_to_avoid(9.0) == [("C", "D")]
        assert policy.links_to_avoid(12.0) == []

    def test_document_round_trip(self):
        policy = NetworkPolicy(thresholds=UsageThresholds(0.6, 0.2))
        policy.add_time_of_day(
            TimeOfDayPolicy(link=("A", "B"), avoid_windows=((18.0, 23.0),))
        )
        restored = NetworkPolicy.from_document(policy.to_document())
        assert restored.thresholds.near_congestion == 0.6
        assert restored.time_of_day[0].link == ("A", "B")
        assert restored.time_of_day[0].should_avoid(19.0)


class TestCapabilityRegistry:
    def make_registry(self):
        registry = CapabilityRegistry()
        registry.add(Capability(CapabilityKind.CACHE, pid="NYC", capacity_mbps=500))
        registry.add(
            Capability(CapabilityKind.ON_DEMAND_SERVER, pid="CHI", capacity_mbps=200)
        )
        return registry

    def test_open_registry_serves_anyone(self):
        registry = self.make_registry()
        assert len(registry.query("anyone")) == 2

    def test_filter_by_kind(self):
        registry = self.make_registry()
        found = registry.query("anyone", kind=CapabilityKind.CACHE)
        assert len(found) == 1
        assert found[0].pid == "NYC"

    def test_filter_by_pid(self):
        registry = self.make_registry()
        assert registry.query("anyone", pid="CHI")[0].kind is CapabilityKind.ON_DEMAND_SERVER

    def test_trusted_only(self):
        registry = self.make_registry()
        registry.trust("pando")
        assert registry.query("pando")
        with pytest.raises(AccessDeniedError):
            registry.query("stranger")

    def test_blocked_content(self):
        registry = self.make_registry()
        registry.block_content("bad-content")
        with pytest.raises(AccessDeniedError):
            registry.query("anyone", content_id="bad-content")
        assert registry.query("anyone", content_id="fine-content")

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Capability(CapabilityKind.CACHE, pid="X", capacity_mbps=-1.0)

    def test_to_document(self):
        docs = self.make_registry().to_document()
        assert {entry["kind"] for entry in docs} == {"cache", "on-demand-server"}
