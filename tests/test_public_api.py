"""Public-API surface tests: imports, exports, and basic composition."""

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_minimal_composition(self):
        """The README quickstart works via the top-level namespace only."""
        itracker = repro.ITracker(
            topology=repro.abilene(),
            config=repro.ITrackerConfig(mode=repro.PriceMode.DYNAMIC),
        )
        itracker.warm_start()
        pids = ["SEAT", "NYCM", "CHIN"]
        session = repro.SessionDemand(
            name="swarm",
            uploads={pid: 100.0 for pid in pids},
            downloads={pid: 100.0 for pid in pids},
        )
        view = itracker.get_pdistances(pids=pids)
        pattern = repro.min_cost_traffic(session, view, beta=0.9)
        assert pattern.total() > 0
        assert itracker.observe_loads(pattern.link_loads(itracker.routing))

    def test_topology_builders_exported(self):
        assert len(repro.isp_a().nodes) == 20
        assert len(repro.isp_b().nodes) == 52
        assert len(repro.isp_c().nodes) == 37

    def test_subpackages_importable(self):
        import repro.apptracker.selection
        import repro.core.embedding
        import repro.dataplane.shaping
        import repro.dht.kademlia
        import repro.experiments
        import repro.management.neutrality
        import repro.metrics
        import repro.portal.alto
        import repro.simulator.swarm
        import repro.tools.cli
        import repro.workloads

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a docstring"
