"""Load-generator determinism and correctness tests.

The generator's contract is that the schedule is a pure function of the
:class:`~repro.workloads.loadgen.LoadSpec` -- same seed, same schedule,
same summary statistics on the step clock -- because every A/B server
comparison (the benchmark, the CI smoke job) depends on both servers
receiving the identical workload.
"""

import pytest

from repro.core.itracker import ITracker
from repro.core.pdistance import uniform_pid_map
from repro.network.library import abilene
from repro.observability import NULL_TELEMETRY
from repro.workloads.loadgen import (
    DEFAULT_MIX,
    OUTCOME_CONNECT_REFUSED,
    OUTCOME_DEADLINE,
    OUTCOME_ERROR,
    OUTCOME_SERVED,
    OUTCOME_SHED,
    LoadSpec,
    _segments,
    build_schedule,
    classify_response,
    percentile,
    run,
    simulate,
    summarize,
)

POOL = ("P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8")


def spec(**overrides):
    base = dict(
        connections=10,
        rate=400.0,
        duration=2.0,
        seed=42,
        churn=0.05,
        pids_fraction=0.5,
        pid_pool=POOL,
    )
    base.update(overrides)
    return LoadSpec(**base)


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        assert build_schedule(spec()) == build_schedule(spec())

    def test_different_seed_different_schedule(self):
        assert build_schedule(spec(seed=1)) != build_schedule(spec(seed=2))

    def test_same_seed_identical_summary_on_step_clock(self):
        first = simulate(spec(), service_time=0.002)
        second = simulate(spec(), service_time=0.002)
        assert first == second
        assert first.requests > 0
        assert first.qps > 0

    def test_schedule_properties(self):
        workload = spec()
        schedule = build_schedule(workload)
        methods = {method for method, _ in DEFAULT_MIX}
        previous = 0.0
        for request in schedule:
            assert 0.0 <= request.at < workload.duration
            assert request.at >= previous  # arrival order
            previous = request.at
            assert 0 <= request.connection < workload.connections
            assert request.method in methods
            if "pids" in request.params:
                assert request.method in ("get_pdistances", "get_alto_costmap")
                assert set(request.params["pids"]) <= set(POOL)

    def test_no_churn_means_no_reconnect_flags(self):
        assert not any(
            request.reconnect for request in build_schedule(spec(churn=0.0))
        )

    def test_pids_max_caps_subset_size(self):
        schedule = build_schedule(spec(pids_fraction=1.0, pids_max=2))
        subsets = [
            request.params["pids"]
            for request in schedule
            if "pids" in request.params
        ]
        assert subsets
        assert max(len(pids) for pids in subsets) <= 2

    def test_method_mix_is_respected(self):
        mix = (("get_version", 3.0), ("get_policy", 1.0))
        schedule = build_schedule(spec(method_mix=mix, duration=5.0))
        counts = {"get_version": 0, "get_policy": 0}
        for request in schedule:
            counts[request.method] += 1
        # 3:1 weighting within generous tolerance
        ratio = counts["get_version"] / max(counts["get_policy"], 1)
        assert 2.0 < ratio < 4.5

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            LoadSpec(connections=0)
        with pytest.raises(ValueError):
            LoadSpec(rate=0.0)
        with pytest.raises(ValueError):
            LoadSpec(method_mix=())


class TestOutcomeClassification:
    def test_response_frames_map_to_their_outcome_class(self):
        assert classify_response({"result": {"version": 3}}) == OUTCOME_SERVED
        assert (
            classify_response({"error": "shed", "busy": True, "retry_after": 0.5})
            == OUTCOME_SHED
        )
        assert (
            classify_response({"error": "late", "deadline_exceeded": True})
            == OUTCOME_DEADLINE
        )
        assert classify_response({"error": "unknown method"}) == OUTCOME_ERROR

    def test_shed_and_deadline_are_not_errors(self):
        """The overload benchmark's headline numbers depend on this
        separation: a shed is the server protecting itself, not a fault."""
        for frame in (
            {"error": "shed", "busy": True},
            {"error": "late", "deadline_exceeded": True},
        ):
            assert classify_response(frame) != OUTCOME_ERROR

    def test_summarize_reports_per_outcome_percentiles(self):
        summary = summarize(
            [0.010, 0.020, 0.030],
            elapsed=2.0,
            errors=1,
            outcome_counts={
                OUTCOME_SERVED: 3,
                OUTCOME_SHED: 5,
                OUTCOME_ERROR: 1,
                OUTCOME_CONNECT_REFUSED: 2,
            },
            outcome_latencies={
                OUTCOME_SERVED: [0.010, 0.020, 0.030],
                OUTCOME_SHED: [0.001, 0.002, 0.001, 0.002, 0.001],
            },
        )
        served = summary.outcomes[OUTCOME_SERVED]
        assert served["count"] == 3
        assert served["p50"] == 0.02
        assert served["p99"] == 0.03
        shed = summary.outcomes[OUTCOME_SHED]
        assert shed["count"] == 5
        assert shed["p99"] == 0.002
        # Failures that never completed carry counts but no percentiles.
        refused = summary.outcomes[OUTCOME_CONNECT_REFUSED]
        assert refused == {"count": 2}
        # Goodput counts only served completions.
        assert summary.goodput == pytest.approx(1.5)
        assert summary.qps == pytest.approx(1.5)
        document = summary.to_document()
        assert document["goodput_qps"] == pytest.approx(1.5)
        assert set(document["outcomes"]) == {
            OUTCOME_SERVED,
            OUTCOME_SHED,
            OUTCOME_ERROR,
            OUTCOME_CONNECT_REFUSED,
        }

    def test_summarize_without_outcome_data_backfills_served(self):
        """Legacy callers (no outcome accounting) still get a coherent
        document: every completion is assumed served."""
        summary = summarize([0.1, 0.2], elapsed=1.0)
        assert summary.outcomes[OUTCOME_SERVED]["count"] == 2
        assert summary.goodput == pytest.approx(2.0)


class TestSummaryArithmetic:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.90) == 9.0
        assert percentile(values, 0.99) == 10.0
        assert percentile([7.5], 0.99) == 7.5
        assert percentile([], 0.5) == 0.0

    def test_summarize_counts_and_rates(self):
        summary = summarize(
            [0.2, 0.1, 0.3, 0.4], elapsed=2.0, errors=1, reconnects=2,
            by_method={"get_version": 4},
        )
        assert summary.requests == 4
        assert summary.qps == pytest.approx(2.0)
        assert summary.p50 == 0.2
        assert summary.p99 == 0.4
        document = summary.to_document()
        assert document["errors"] == 1
        assert document["reconnects"] == 2
        assert document["by_method"] == {"get_version": 4}

    def test_simulate_fifo_queueing(self):
        """On one connection at overwhelming rate, latency grows linearly
        with queue depth: request i completes at (i+1) * service_time."""
        workload = LoadSpec(
            connections=1, rate=10_000.0, duration=0.01, seed=3, churn=0.0
        )
        schedule = build_schedule(workload)
        service = 0.05  # far slower than the arrival spacing
        summary = simulate(workload, service_time=service)
        assert summary.requests == len(schedule)
        # last completion ~ requests * service_time
        assert summary.elapsed == pytest.approx(
            schedule[0].at + service * len(schedule), abs=service
        )

    def test_segments_split_at_churn_boundaries(self):
        def request(at, reconnect):
            from repro.workloads.loadgen import ScheduledRequest

            return ScheduledRequest(
                at=at, connection=0, method="get_version", params={},
                reconnect=reconnect,
            )

        requests = [
            request(0.1, False),
            request(0.2, False),
            request(0.3, True),
            request(0.4, False),
            request(0.5, True),
        ]
        segments = _segments(requests)
        assert [len(segment) for segment in segments] == [2, 2, 1]
        # a reconnect flag on the very first request opens no extra segment
        assert len(_segments([request(0.1, True)])) == 1


@pytest.mark.timeout(60)
class TestLiveDrive:
    def test_drive_executes_whole_schedule_without_errors(self):
        from repro.portal.aserver import AsyncPortalServer

        topo = abilene()
        tracker = ITracker(
            topology=topo, pid_map=uniform_pid_map(topo), telemetry=NULL_TELEMETRY
        )
        workload = LoadSpec(
            connections=5,
            rate=300.0,
            duration=0.5,
            seed=9,
            churn=0.05,
            pid_pool=tuple(sorted(topo.nodes)),
        )
        schedule = build_schedule(workload)
        with AsyncPortalServer(tracker, workers=2, telemetry=NULL_TELEMETRY) as server:
            summary = run(workload, server.address, schedule=schedule)
        assert summary.requests == len(schedule)
        assert summary.errors == 0
        assert summary.by_method == {
            method: sum(1 for r in schedule if r.method == method)
            for method in {r.method for r in schedule}
        }
        assert summary.p50 > 0.0
