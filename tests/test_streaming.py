"""Tests for the Liveswarms streaming simulation and tracker."""

import random

import pytest

from repro.apptracker.liveswarms import AdmissionController, LiveswarmsTracker
from repro.apptracker.selection import PeerInfo, RandomSelection
from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.simulator.streaming import (
    StreamingConfig,
    StreamingSimulation,
)
from repro.workloads.placement import place_peers


def build_streaming(n_clients=10, config=None, selector=None):
    topo = abilene()
    routing = RoutingTable.build(topo)
    rng = random.Random(5)
    clients = place_peers(topo, n_clients, rng, first_id=1)
    source = PeerInfo(peer_id=0, pid="CHIN", as_number=topo.node("CHIN").as_number)
    config = config or StreamingConfig(
        stream_mbps=1.0,
        block_mbit=1.0,
        duration=120.0,
        window_blocks=15,
        neighbors=6,
        access_up_mbps=5.0,
        access_down_mbps=10.0,
        source_up_mbps=10.0,
        rng_seed=3,
    )
    return StreamingSimulation(
        topo, routing, config, selector or RandomSelection(), clients, source
    )


class TestStreamingConfig:
    def test_block_interval(self):
        config = StreamingConfig(stream_mbps=2.0, block_mbit=1.0)
        assert config.block_interval == pytest.approx(0.5)

    def test_total_blocks(self):
        config = StreamingConfig(stream_mbps=1.0, block_mbit=2.0, duration=100.0)
        assert config.total_blocks == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingConfig(stream_mbps=0.0)
        with pytest.raises(ValueError):
            StreamingConfig(duration=-1.0)
        with pytest.raises(ValueError):
            StreamingConfig(window_blocks=0)


class TestStreamingSimulation:
    def test_clients_receive_most_of_the_stream(self):
        sim = build_streaming(n_clients=8)
        result = sim.run()
        assert result.total_blocks > 0
        assert result.mean_continuity() > 0.7

    def test_backbone_traffic_recorded(self):
        result = build_streaming(n_clients=8).run()
        assert sum(result.link_traffic_mbit.values()) > 0
        assert result.mean_backbone_volume_mbit() > 0

    def test_deterministic(self):
        a = build_streaming(n_clients=6).run()
        b = build_streaming(n_clients=6).run()
        assert a.received_blocks == b.received_blocks

    def test_duration_respected(self):
        result = build_streaming(n_clients=4).run()
        assert result.duration <= 120.0 + 1e-6

    def test_continuity_bounded(self):
        result = build_streaming(n_clients=6).run()
        for peer_id in result.received_blocks:
            assert 0.0 <= result.continuity(peer_id) <= 1.0

    def test_needs_clients(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        source = PeerInfo(peer_id=0, pid="CHIN", as_number=0)
        with pytest.raises(ValueError):
            StreamingSimulation(
                topo, routing, StreamingConfig(), RandomSelection(), [], source
            )

    def test_localized_swarm_reduces_backbone_volume(self):
        """A same-PoP swarm should use far less backbone than a spread one."""
        topo = abilene()
        routing = RoutingTable.build(topo)
        config = StreamingConfig(
            stream_mbps=1.0, block_mbit=1.0, duration=60.0, neighbors=5,
            access_up_mbps=5.0, access_down_mbps=10.0, rng_seed=4,
        )
        source = PeerInfo(peer_id=0, pid="CHIN", as_number=0)
        local_clients = [PeerInfo(peer_id=i, pid="CHIN", as_number=0) for i in range(1, 9)]
        spread_pids = ["SEAT", "LOSA", "NYCM", "ATLA", "DNVR", "HSTN", "WASH", "KSCY"]
        spread_clients = [
            PeerInfo(peer_id=i, pid=pid, as_number=0)
            for i, pid in enumerate(spread_pids, start=1)
        ]
        local = StreamingSimulation(
            topo, routing, config, RandomSelection(), local_clients, source
        ).run()
        spread = StreamingSimulation(
            topo, routing, config, RandomSelection(), spread_clients, source
        ).run()
        assert sum(local.link_traffic_mbit.values()) < sum(
            spread.link_traffic_mbit.values()
        )


class TestAdmissionController:
    def test_admits_when_capacity_suffices(self):
        controller = AdmissionController(stream_mbps=1.0, source_mbps=10.0)
        assert controller.admit(1, upload_mbps=1.0)
        assert controller.n_clients == 1

    def test_rejects_when_starved(self):
        controller = AdmissionController(
            stream_mbps=10.0, source_mbps=5.0, safety_factor=1.0
        )
        assert not controller.can_admit(upload_mbps=0.0)

    def test_leave_frees_capacity(self):
        controller = AdmissionController(
            stream_mbps=5.0, source_mbps=6.0, safety_factor=1.0
        )
        assert controller.admit(1, upload_mbps=0.0)
        assert not controller.can_admit(upload_mbps=0.0)
        controller.leave(1)
        assert controller.can_admit(upload_mbps=0.0)

    def test_duplicate_admission_rejected(self):
        controller = AdmissionController(stream_mbps=1.0, source_mbps=100.0)
        controller.admit(1, upload_mbps=1.0)
        with pytest.raises(ValueError):
            controller.admit(1, upload_mbps=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(stream_mbps=0.0, source_mbps=1.0)
        with pytest.raises(ValueError):
            AdmissionController(stream_mbps=1.0, source_mbps=1.0, safety_factor=0.5)

    def test_supply_accounting(self):
        controller = AdmissionController(stream_mbps=1.0, source_mbps=10.0)
        controller.admit(1, upload_mbps=2.0)
        controller.admit(2, upload_mbps=3.0)
        assert controller.supply_mbps == pytest.approx(15.0)
        assert controller.demand_mbps() == pytest.approx(2.0)


class TestLiveswarmsTracker:
    def test_join_admits_and_selects(self):
        tracker = LiveswarmsTracker(
            selector=RandomSelection(),
            admission=AdmissionController(stream_mbps=1.0, source_mbps=100.0),
        )
        client = PeerInfo(peer_id=1, pid="A", as_number=0)
        candidates = [PeerInfo(peer_id=i, pid="A", as_number=0) for i in range(2, 10)]
        chosen = tracker.join(client, 2.0, candidates, 4, random.Random(0))
        assert chosen is not None
        assert len(chosen) == 4

    def test_join_rejected_when_full(self):
        tracker = LiveswarmsTracker(
            selector=RandomSelection(),
            admission=AdmissionController(
                stream_mbps=10.0, source_mbps=1.0, safety_factor=1.0
            ),
        )
        client = PeerInfo(peer_id=1, pid="A", as_number=0)
        assert tracker.join(client, 0.0, [], 4, random.Random(0)) is None


class TestStreamingRateCaps:
    def test_window_cap_reduces_cross_country_rate(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        config = StreamingConfig(
            stream_mbps=2.0, block_mbit=2.0, duration=60.0, neighbors=4,
            access_up_mbps=50.0, access_down_mbps=50.0, source_up_mbps=50.0,
            tcp_window_mbit=0.05, rng_seed=9,
        )
        source = PeerInfo(peer_id=0, pid="SEAT", as_number=0)
        far_clients = [PeerInfo(peer_id=i, pid="NYCM", as_number=0) for i in (1, 2)]
        capped = StreamingSimulation(
            topo, routing, config, RandomSelection(), far_clients, source
        ).run()
        uncapped_config = StreamingConfig(
            stream_mbps=2.0, block_mbit=2.0, duration=60.0, neighbors=4,
            access_up_mbps=50.0, access_down_mbps=50.0, source_up_mbps=50.0,
            tcp_window_mbit=None, rng_seed=9,
        )
        uncapped = StreamingSimulation(
            topo, routing, uncapped_config, RandomSelection(), far_clients, source
        ).run()
        # Cross-country cap ~0.05/0.06s < 1 Mbps < stream rate: continuity
        # suffers; without the cap the stream keeps up.
        assert capped.mean_continuity() < uncapped.mean_continuity()

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            StreamingConfig(tcp_window_mbit=0.0)
