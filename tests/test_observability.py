"""Tests for the unified telemetry subsystem (repro.observability)."""

import json
import threading
from pathlib import Path

import pytest

from repro.observability import (
    MetricError,
    MetricsRegistry,
    NULL_TELEMETRY,
    RegistryResilienceCounters,
    Telemetry,
    TraceBuffer,
    flatten_snapshot,
    json_snapshot,
    json_text,
    parse_prometheus_text,
    percentile_from_buckets,
    prometheus_text,
    render_dashboard,
)

GOLDEN = Path(__file__).parent / "golden"


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def build_reference_registry() -> MetricsRegistry:
    """A small fixed registry; both golden files render exactly this."""
    clock = FakeClock()
    registry = MetricsRegistry(clock=clock)
    requests = registry.counter(
        "p4p_portal_requests_total",
        "Requests dispatched, by method and outcome.",
        ("method",),
    )
    requests.labels(method="get_version").inc(3)
    requests.labels(method="get_pdistances").inc()
    registry.gauge(
        "p4p_portal_inflight_requests", "Requests currently inside dispatch."
    ).set(2)
    latency = registry.histogram(
        "p4p_portal_request_latency_seconds",
        "Dispatch wall time per request, by method.",
        ("method",),
        buckets=(0.001, 0.01, 0.1, 1.0),
    )
    child = latency.labels(method="get_version")
    for value in (0.0005, 0.004, 0.05, 2.0):
        child.observe(value)
    clock.advance(5.0)
    return registry


class TestInstruments:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.dec(4)
        gauge.inc()
        assert gauge.value == 7

    def test_labeled_children_are_cached_and_independent(self):
        counter = MetricsRegistry().counter("c_total", "", ("method",))
        a = counter.labels(method="a")
        assert counter.labels(method="a") is a
        a.inc()
        counter.labels(method="b").inc(5)
        assert a.value == 1
        assert counter.labels(method="b").value == 5

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry().counter("c_total", "", ("method",))
        with pytest.raises(MetricError):
            counter.labels(nope="x")
        with pytest.raises(MetricError):
            counter.inc()  # labeled instrument needs .labels()

    def test_histogram_buckets_cumulative(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        child = hist.labels()
        assert child.bucket_counts() == [
            (1.0, 1),
            (2.0, 2),
            (4.0, 3),
            (float("inf"), 4),
        ]
        assert child.count == 4
        assert child.sum == pytest.approx(105.0)

    def test_histogram_percentile_interpolates(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)
        child = hist.labels()
        assert child.percentile(0.5) == pytest.approx(1.5, abs=0.5)
        assert child.percentile(0.0) == 0.0
        assert child.percentile(1.0) <= 2.0

    def test_reregistration_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", "help", ("x",))
        b = registry.counter("c_total", "other help", ("x",))
        assert a is b
        with pytest.raises(MetricError):
            registry.gauge("c_total")
        with pytest.raises(MetricError):
            registry.counter("c_total", "", ("y",))

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("bad name")
        with pytest.raises(MetricError):
            registry.counter("9starts_with_digit")

    def test_injectable_clock_drives_uptime_and_timer(self):
        clock = FakeClock(start=50.0)
        registry = MetricsRegistry(clock=clock)
        hist = registry.histogram("h_seconds", buckets=(1.0, 10.0))
        with registry.timer(hist.labels()):
            clock.advance(3.0)
        clock.advance(2.0)
        assert registry.uptime() == pytest.approx(5.0)
        assert hist.labels().sum == pytest.approx(3.0)


class TestConcurrency:
    def test_threaded_updates_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("worker",))
        hist = registry.histogram("h", buckets=(0.5, 1.0))
        gauge = registry.gauge("g")
        n_threads, n_ops = 8, 2000

        def hammer(worker: int) -> None:
            child = counter.labels(worker=worker % 2)
            for i in range(n_ops):
                child.inc()
                hist.observe(0.25 if i % 2 else 0.75)
                gauge.inc()
                gauge.dec()

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(
            child.value for _, child in counter.series()
        )
        assert total == n_threads * n_ops
        assert hist.labels().count == n_threads * n_ops
        assert gauge.value == 0


class TestExporters:
    def test_prometheus_golden(self):
        text = prometheus_text(build_reference_registry())
        assert text == (GOLDEN / "telemetry.prom").read_text()

    def test_json_golden(self):
        text = json_text(build_reference_registry())
        assert text == (GOLDEN / "telemetry.json").read_text()

    def test_exporters_round_trip_same_state(self):
        registry = build_reference_registry()
        flat = flatten_snapshot(json_snapshot(registry))
        parsed = parse_prometheus_text(prometheus_text(registry))
        assert flat == parsed

    def test_deterministic_across_insertion_order(self):
        def build(order):
            registry = MetricsRegistry(clock=FakeClock())
            counter = registry.counter("z_total", "", ("m",))
            for label in order:
                counter.labels(m=label).inc()
            registry.gauge("a_gauge").set(1)
            return prometheus_text(registry)

        assert build(["b", "a", "c"]) == build(["c", "b", "a"])

    def test_json_snapshot_is_json_serializable(self):
        document = json_snapshot(build_reference_registry())
        assert json.loads(json.dumps(document)) == json.loads(
            json.dumps(document)
        )

    def test_percentile_from_wire_buckets(self):
        registry = build_reference_registry()
        snapshot = json_snapshot(registry)
        metric = next(
            m
            for m in snapshot["metrics"]
            if m["name"] == "p4p_portal_request_latency_seconds"
        )
        buckets = metric["samples"][0]["buckets"]
        live = registry.get("p4p_portal_request_latency_seconds").labels(
            method="get_version"
        )
        for q in (0.25, 0.5, 0.9):
            assert percentile_from_buckets(buckets, q) == pytest.approx(
                live.percentile(q)
            )


class TestTracing:
    def test_span_context_records_duration_and_attributes(self):
        clock = FakeClock()
        traces = TraceBuffer(capacity=8, clock=clock)
        with traces.span("work", kind="test") as span:
            clock.advance(2.0)
            span.set(extra=1)
        [recorded] = traces.snapshot()
        assert recorded.duration == pytest.approx(2.0)
        assert recorded.attributes == {"kind": "test", "extra": 1}

    def test_parent_child_linkage(self):
        traces = TraceBuffer(clock=FakeClock())
        with traces.span("outer") as outer:
            with traces.span("inner", parent=outer) as inner:
                pass
        assert inner.parent_id == outer.span_id

    def test_bounded_capacity_drops_oldest(self):
        traces = TraceBuffer(capacity=3, clock=FakeClock())
        for i in range(5):
            traces.finish(traces.start(f"s{i}"))
        names = [span.name for span in traces.snapshot()]
        assert names == ["s2", "s3", "s4"]
        assert traces.dropped == 2

    def test_error_inside_span_is_tagged(self):
        traces = TraceBuffer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with traces.span("boom"):
                raise RuntimeError("x")
        [span] = traces.snapshot()
        assert span.attributes["error"] == "RuntimeError"
        assert span.end is not None

    def test_wire_form_is_json_safe(self):
        traces = TraceBuffer(clock=FakeClock())
        traces.finish(traces.start("s", n=1))
        assert json.loads(json.dumps(traces.to_wire()))[0]["name"] == "s"


class TestResilienceFacade:
    def test_attribute_protocol_matches_dataclass(self):
        registry = MetricsRegistry()
        counters = RegistryResilienceCounters(registry)
        counters.retries += 1
        counters.retries += 1
        counters.breaker_trips = 7
        assert counters.retries == 2
        assert counters.breaker_trips == 7
        assert counters.snapshot()["retries"] == 2
        counters.reset()
        assert all(v == 0 for v in counters.snapshot().values())

    def test_values_surface_in_exporters(self):
        registry = MetricsRegistry()
        counters = RegistryResilienceCounters(registry)
        counters.stale_serves += 3
        text = prometheus_text(registry)
        assert "p4p_resilience_stale_serves 3" in text

    def test_per_as_label(self):
        registry = MetricsRegistry()
        a = RegistryResilienceCounters(registry, as_number=100)
        b = RegistryResilienceCounters(registry, as_number=200)
        a.retries += 5
        b.retries += 1
        assert a.retries == 5
        assert b.retries == 1
        text = prometheus_text(registry)
        assert 'p4p_resilience_retries{as_number="100"} 5' in text

    def test_drop_in_for_resilient_client(self):
        """The facade satisfies the exact usage pattern of the resilience
        layer: attribute increments and assignments, no method calls."""
        from repro.management.monitors import ResilienceCounters

        registry = MetricsRegistry()
        facade = RegistryResilienceCounters(registry)
        reference = ResilienceCounters()
        for counters in (facade, reference):
            counters.retries += 1
            counters.breaker_trips = 2
            counters.stale_serves += 1
        assert facade.snapshot() == reference.snapshot()


class TestNullTelemetry:
    def test_null_everything_is_noop(self):
        NULL_TELEMETRY.registry.counter("x_total").inc()
        NULL_TELEMETRY.registry.gauge("g").set(5)
        NULL_TELEMETRY.registry.histogram("h").observe(1.0)
        with NULL_TELEMETRY.traces.span("s"):
            pass
        assert NULL_TELEMETRY.snapshot()["metrics"] == []
        assert NULL_TELEMETRY.prometheus() == ""
        assert len(NULL_TELEMETRY.traces) == 0


class TestDashboard:
    def _scraped_snapshot(self):
        telemetry = Telemetry(clock=FakeClock())
        registry = telemetry.registry
        registry.counter(
            "p4p_portal_requests_total", "", ("method",)
        ).labels(method="get_version").inc(10)
        registry.histogram(
            "p4p_portal_request_latency_seconds",
            "",
            ("method",),
            buckets=(0.001, 0.01),
        ).labels(method="get_version").observe(0.005)
        RegistryResilienceCounters(registry).retries += 4
        for i in range(3):
            span = telemetry.traces.start("itracker.price_update")
            span.set(supergradient_norm=10.0 / (i + 1), version=i + 1)
            telemetry.traces.finish(span)
        return telemetry.snapshot()

    def test_render_dashboard_sections(self):
        text = render_dashboard(self._scraped_snapshot(), title="test")
        assert "telemetry: test" in text
        assert "get_version" in text
        assert "supergradient norm" in text  # convergence plot rendered
        assert "retries" in text

    def test_render_dashboard_empty_snapshot(self):
        text = render_dashboard(
            {"uptime_seconds": 0.0, "metrics": [], "spans": []}, title="empty"
        )
        assert "(no requests served yet)" in text
        assert "(no price updates traced)" in text
