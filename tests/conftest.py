"""Suite-wide fixtures and the per-test timeout fallback.

Socket-level fault-injection tests can hang forever on a blocking read if
a bug slips into the framing code; ``@pytest.mark.timeout(seconds)``
bounds them.  When the ``pytest-timeout`` plugin is installed it owns the
marker; otherwise this conftest enforces it with a SIGALRM timer (main
thread, POSIX -- a no-op on platforms without SIGALRM).  The default for
bare ``@pytest.mark.timeout`` markers comes from ``fault_test_timeout``
in ``pyproject.toml``.
"""

import signal

import pytest


def pytest_addoption(parser):
    parser.addini(
        "fault_test_timeout",
        "default seconds for @pytest.mark.timeout tests without an argument",
        default="30",
    )


def _marker_seconds(item):
    marker = item.get_closest_marker("timeout")
    if marker is None:
        return None
    if marker.args:
        return float(marker.args[0])
    return float(item.config.getini("fault_test_timeout"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = _marker_seconds(item)
    if (
        seconds is None
        or item.config.pluginmanager.hasplugin("timeout")
        or not hasattr(signal, "SIGALRM")
    ):
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(f"test exceeded {seconds:g}s timeout")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
