"""Tests for virtual-ISP partitioning and interdomain link bookkeeping."""

import pytest

from repro.network.interdomain import (
    ABILENE_CUT,
    partition_virtual_isps,
    set_virtual_capacities,
)
from repro.network.library import abilene


class TestPartition:
    def test_default_cut_splits_abilene(self):
        partition = partition_virtual_isps(abilene())
        sizes = sorted(len(side) for side in partition.components)
        assert sum(sizes) == 11
        assert sizes == [5, 6]

    def test_cut_links_marked_interdomain(self):
        partition = partition_virtual_isps(abilene())
        topo = partition.topology
        assert len(topo.interdomain_links) == 4  # 2 edges x 2 directions
        for key in partition.cut_links:
            assert topo.links[key].interdomain

    def test_as_numbers_assigned(self):
        partition = partition_virtual_isps(abilene(), as_numbers=(100, 200))
        west, east = partition.components
        assert all(partition.as_of(pid) == 100 for pid in west)
        assert all(partition.as_of(pid) == 200 for pid in east)

    def test_same_side(self):
        partition = partition_virtual_isps(abilene())
        assert partition.same_side("SEAT", "LOSA")
        assert not partition.same_side("SEAT", "NYCM")

    def test_non_cut_rejected(self):
        # A single Abilene edge is not a 2-way cut.
        with pytest.raises(ValueError):
            partition_virtual_isps(abilene(), cut_edges=(("SEAT", "SNVA"),))

    def test_unknown_edge_rejected(self):
        with pytest.raises(ValueError):
            partition_virtual_isps(abilene(), cut_edges=(("SEAT", "NYCM"),))

    def test_first_component_holds_first_cut_src(self):
        partition = partition_virtual_isps(abilene())
        assert ABILENE_CUT[0][0] in partition.components[0]


class TestVirtualCapacities:
    def test_set_on_interdomain_links(self):
        partition = partition_virtual_isps(abilene())
        key = partition.cut_links[0]
        set_virtual_capacities(partition.topology, {key: 123.0})
        assert partition.topology.links[key].virtual_capacity == 123.0

    def test_rejects_intradomain_target(self):
        topo = abilene()
        partition_virtual_isps(topo)
        with pytest.raises(ValueError):
            set_virtual_capacities(topo, {("SEAT", "SNVA"): 10.0})

    def test_rejects_negative(self):
        partition = partition_virtual_isps(abilene())
        key = partition.cut_links[0]
        with pytest.raises(ValueError):
            set_virtual_capacities(partition.topology, {key: -1.0})

    def test_unknown_link_raises(self):
        partition = partition_virtual_isps(abilene())
        with pytest.raises(KeyError):
            set_virtual_capacities(partition.topology, {("X", "Y"): 1.0})
