"""Tests for topology serialization and the CLI experiment runner."""

import io
import json

import pytest

from repro.network.generators import isp_a
from repro.network.interdomain import partition_virtual_isps
from repro.network.library import abilene
from repro.network.serialization import (
    TopologyFormatError,
    load_topology,
    save_topology,
    topology_from_document,
    topology_to_document,
)
from repro.tools.cli import build_parser, main


class TestTopologySerialization:
    def test_round_trip_abilene(self, tmp_path):
        original = abilene()
        path = tmp_path / "abilene.json"
        save_topology(original, path)
        restored = load_topology(path)
        assert restored.name == original.name
        assert set(restored.nodes) == set(original.nodes)
        assert set(restored.links) == set(original.links)
        for key in original.links:
            assert restored.links[key].capacity == original.links[key].capacity
            assert restored.links[key].distance == pytest.approx(
                original.links[key].distance
            )

    def test_round_trip_preserves_interdomain_state(self, tmp_path):
        topo = abilene()
        partition = partition_virtual_isps(topo)
        key = partition.cut_links[0]
        topo.links[key].virtual_capacity = 42.0
        path = tmp_path / "split.json"
        save_topology(topo, path)
        restored = load_topology(path)
        assert restored.links[key].interdomain
        assert restored.links[key].virtual_capacity == 42.0
        for pid in topo.nodes:
            assert restored.node(pid).as_number == topo.node(pid).as_number

    def test_round_trip_synthetic(self, tmp_path):
        topo = isp_a()
        path = tmp_path / "ispa.json"
        save_topology(topo, path)
        restored = load_topology(path)
        assert len(restored.links) == len(topo.links)
        assert restored.node(topo.pids[0]).metro == topo.node(topo.pids[0]).metro

    def test_unsupported_version_rejected(self):
        document = topology_to_document(abilene())
        document["format_version"] = 99
        with pytest.raises(TopologyFormatError):
            topology_from_document(document)

    def test_malformed_document_rejected(self):
        with pytest.raises(TopologyFormatError):
            topology_from_document({"format_version": 1, "nodes": [{}], "links": []})

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(TopologyFormatError):
            load_topology(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(TopologyFormatError):
            load_topology(path)

    def test_document_is_json_serializable(self):
        json.dumps(topology_to_document(abilene()))


class TestCli:
    def run_cli(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_list(self):
        code, text = self.run_cli(["list"])
        assert code == 0
        assert "fig6" in text and "fieldtest" in text

    def test_table1(self):
        code, text = self.run_cli(["table1"])
        assert code == 0
        assert "Abilene" in text and "ISP-C" in text

    def test_sec8(self):
        code, text = self.run_cli(["sec8", "--swarms", "5000"])
        assert code == 0
        assert "%" in text

    def test_fig6_small(self):
        code, text = self.run_cli(["fig6", "--peers", "12", "--runs", "1"])
        assert code == 0
        assert "native" in text and "p4p" in text

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliTelemetry:
    @pytest.fixture
    def live_portal(self):
        from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
        from repro.portal.client import PortalClient
        from repro.portal.server import PortalServer

        tracker = ITracker(
            topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        with PortalServer(tracker) as server:
            host, port = server.address
            with PortalClient(host, port) as client:
                client.get_version()
                client.get_pdistances()
            yield f"{host}:{port}"

    def test_dashboard(self, live_portal):
        out = io.StringIO()
        code = main(["telemetry", "--portal", live_portal], out=out)
        assert code == 0
        text = out.getvalue()
        assert f"telemetry: {live_portal}" in text
        assert "get_version" in text and "qps" in text

    def test_prometheus_format(self, live_portal):
        out = io.StringIO()
        code = main(
            ["telemetry", "--portal", live_portal, "--format", "prometheus"],
            out=out,
        )
        assert code == 0
        assert "# TYPE p4p_portal_requests_total counter" in out.getvalue()

    def test_json_format(self, live_portal):
        out = io.StringIO()
        code = main(
            ["telemetry", "--portal", live_portal, "--format", "json"], out=out
        )
        assert code == 0
        document = json.loads(out.getvalue())
        assert live_portal in document
        names = {m["name"] for m in document[live_portal]["metrics"]}
        assert "p4p_portal_requests_total" in names

    def test_bad_portal_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["telemetry", "--portal", "no-port-here"], out=io.StringIO())


class TestCliAblations:
    def test_ablations_command(self):
        out = io.StringIO()
        code = main(["ablations", "--iterations", "10"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "decomposition" in text
        assert "charging predictor" in text
        assert "rank coarsening" in text
