"""Tests for the p4p-distance interface (views, PID mapping, coarsening)."""

import pytest

from repro.core.pdistance import (
    PDistanceMap,
    PidMap,
    external_view,
    uniform_pid_map,
)
from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.network.topology import NodeKind, Topology


def square_topology():
    topo = Topology()
    for pid in "ABCD":
        topo.add_pid(pid)
    topo.add_edge("A", "B", capacity=10.0)
    topo.add_edge("B", "C", capacity=10.0)
    topo.add_edge("C", "D", capacity=10.0)
    topo.add_edge("D", "A", capacity=10.0)
    return topo


class TestPDistanceMap:
    def make_map(self):
        return PDistanceMap(
            pids=("A", "B", "C"),
            distances={
                ("A", "B"): 1.0,
                ("A", "C"): 3.0,
                ("B", "A"): 1.0,
                ("B", "C"): 2.0,
                ("C", "A"): 3.0,
                ("C", "B"): 2.0,
            },
        )

    def test_distance_lookup(self):
        assert self.make_map().distance("A", "C") == 3.0

    def test_intra_pid_defaults_to_zero(self):
        assert self.make_map().distance("A", "A") == 0.0

    def test_explicit_intra_pid(self):
        pmap = PDistanceMap(pids=("A",), distances={("A", "A"): 5.0})
        assert pmap.distance("A", "A") == 5.0

    def test_row(self):
        assert self.make_map().row("A") == {"B": 1.0, "C": 3.0}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PDistanceMap(pids=("A", "B"), distances={("A", "B"): -1.0})

    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError):
            PDistanceMap(pids=("A",), distances={("A", "Z"): 1.0})

    def test_to_ranks(self):
        ranks = self.make_map().to_ranks()
        assert ranks.distance("A", "B") == 1.0
        assert ranks.distance("A", "C") == 2.0

    def test_to_ranks_ties_share_rank(self):
        pmap = PDistanceMap(
            pids=("A", "B", "C"),
            distances={
                ("A", "B"): 2.0,
                ("A", "C"): 2.0,
                ("B", "A"): 1.0,
                ("B", "C"): 1.0,
                ("C", "A"): 1.0,
                ("C", "B"): 1.0,
            },
        )
        ranks = pmap.to_ranks()
        assert ranks.distance("A", "B") == 1.0
        assert ranks.distance("A", "C") == 1.0

    def test_perturbed_bounded(self):
        pmap = self.make_map()
        noisy = pmap.perturbed(0.1, seed=3)
        for pair, value in pmap.distances.items():
            assert abs(noisy.distances[pair] - value) <= 0.1 * value + 1e-12

    def test_perturbed_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            self.make_map().perturbed(1.5)

    def test_restricted_to(self):
        sub = self.make_map().restricted_to(["A", "B"])
        assert sub.pids == ("A", "B")
        assert ("A", "C") not in sub.distances


class TestExternalView:
    def test_aggregates_link_prices(self):
        topo = square_topology()
        routing = RoutingTable.build(topo)
        prices = {key: 1.0 for key in topo.links}
        view = external_view(topo, routing, prices)
        # A -> C is two hops either way.
        assert view.distance("A", "C") == pytest.approx(2.0)
        assert view.distance("A", "B") == pytest.approx(1.0)

    def test_cost_offsets_added(self):
        topo = square_topology()
        routing = RoutingTable.build(topo)
        prices = {key: 0.0 for key in topo.links}
        offsets = {key: 5.0 for key in topo.links}
        view = external_view(topo, routing, prices, offsets)
        assert view.distance("A", "B") == pytest.approx(5.0)

    def test_missing_prices_default_zero(self):
        topo = square_topology()
        routing = RoutingTable.build(topo)
        view = external_view(topo, routing, {})
        assert view.distance("A", "C") == 0.0

    def test_core_pids_hidden(self):
        topo = square_topology()
        topo.add_pid("core1", kind=NodeKind.CORE)
        topo.add_edge("core1", "A", capacity=10.0)
        routing = RoutingTable.build(topo)
        view = external_view(topo, routing, {})
        assert "core1" not in view.pids

    def test_full_mesh_on_abilene(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        view = external_view(topo, routing, {key: 1.0 for key in topo.links})
        n = len(topo.aggregation_pids)
        assert len(view.distances) == n * n  # includes p_ii entries
        # p-distance equals hop count when every link is priced 1.
        assert view.distance("SEAT", "NYCM") == routing.hop_count("SEAT", "NYCM")


class TestPidMap:
    def test_longest_prefix_match(self):
        mapping = PidMap()
        mapping.add_prefix("10.0.0.0/8", "coarse", 1)
        mapping.add_prefix("10.1.0.0/16", "fine", 1)
        assert mapping.lookup("10.1.2.3")[0] == "fine"
        assert mapping.lookup("10.2.2.3")[0] == "coarse"

    def test_unmapped_raises(self):
        mapping = PidMap()
        mapping.add_prefix("10.0.0.0/8", "x")
        with pytest.raises(KeyError):
            mapping.lookup("192.168.1.1")

    def test_as_number_returned(self):
        mapping = PidMap()
        mapping.add_prefix("10.0.0.0/8", "x", as_number=65000)
        assert mapping.lookup("10.0.0.1") == ("x", 65000)

    def test_uniform_pid_map_covers_all_pids(self):
        topo = abilene()
        mapping = uniform_pid_map(topo)
        assert len(mapping) == len(topo.aggregation_pids)
        pid, as_number = mapping.lookup("10.0.0.1")
        assert pid == topo.aggregation_pids[0]
        assert as_number == topo.node(pid).as_number
