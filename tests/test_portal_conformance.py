"""Dual-server protocol conformance: the wire behaviour is byte-identical.

The threaded :class:`~repro.portal.server.PortalServer` and the asyncio
:class:`~repro.portal.aserver.AsyncPortalServer` (both accept models)
front identically-constructed iTrackers and receive identical request
frames over raw sockets; every response frame must match byte for byte.
A response is a pure function of the request and the iTracker state --
never of the transport, the worker model, or the view cache.

Covered: every method in :data:`~repro.portal.protocol.METHOD_SCHEMAS`
(full and restricted views, empty and unknown PID subsets), the error-
frame contract (unknown methods, schema violations, non-object params,
unknown keys), malformed trace envelopes, ``get_state_delta``
replication tailing across identical price-update sequences, and the
overload envelopes (``deadline`` requests byte-invisible when they do
not fire; ``busy`` shed frames identical across transports and inside
the declared response-key catalog).

Trace-envelope *propagation* (which needs real telemetry, whose metrics
document is inherently run-dependent) is checked separately: both
servers must parent a ``portal.dispatch`` span under the caller's
envelope and record the same span topology.
"""

import json
import socket

import pytest

from repro.core.capability import Capability, CapabilityKind
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.pdistance import uniform_pid_map
from repro.core.policy import TimeOfDayPolicy
from repro.network.library import abilene
from repro.observability import NULL_TELEMETRY, Telemetry
from repro.portal import protocol
from repro.portal.aserver import AsyncPortalServer
from repro.portal.server import PortalServer

SERVER_KINDS = ("threaded", "async-reuseport", "async-dispatcher")


def make_itracker(with_pid_map: bool = True) -> ITracker:
    """A deterministic iTracker with content behind every method."""
    topo = abilene()
    tracker = ITracker(
        topology=topo,
        config=ITrackerConfig(mode=PriceMode.DYNAMIC),
        pid_map=uniform_pid_map(topo) if with_pid_map else None,
        telemetry=NULL_TELEMETRY,
    )
    tracker.capabilities.add(
        Capability(CapabilityKind.CACHE, pid="NYCM", capacity_mbps=500)
    )
    tracker.policy.add_time_of_day(
        TimeOfDayPolicy(link=("WASH", "NYCM"), avoid_windows=((18.0, 23.0),))
    )
    advance(tracker, rounds=3)
    return tracker


def advance(tracker: ITracker, rounds: int, start: float = 0.0) -> None:
    """Apply a deterministic load sequence (same on every replica)."""
    links = sorted(tracker.topology.links)
    for round_index in range(rounds):
        loads = {
            link: 50.0 + 13.0 * ((round_index + offset) % 7)
            for offset, link in enumerate(links)
        }
        tracker.observe_loads(loads, now=start + 100.0 * (round_index + 1))


def make_server(kind: str, tracker: ITracker, telemetry=NULL_TELEMETRY):
    if kind == "threaded":
        return PortalServer(tracker, telemetry=telemetry)
    accept_model = kind.split("-", 1)[1]
    return AsyncPortalServer(
        tracker, workers=2, accept_model=accept_model, telemetry=telemetry
    )


def exchange(address, frames):
    """Send pre-encoded request frames, return the raw response frames."""
    responses = []
    with socket.create_connection(address, timeout=10.0) as sock:
        for frame in frames:
            sock.sendall(frame)
        for _ in frames:
            header = _read_exact(sock, 4)
            (length,) = protocol._HEADER.unpack(header)
            responses.append(header + _read_exact(sock, length))
    return responses


def _read_exact(sock, n):
    chunks = b""
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            raise AssertionError("server closed mid-response")
        chunks += chunk
    return chunks


def conformance_requests(pids):
    """One frame per wire behaviour worth pinning."""
    some = list(pids[:4])
    unknown = ["NO-SUCH-PID"]
    messages = [
        # every schema method, happy path
        {"method": "get_pdistances", "params": {}},
        {"method": "get_pdistances", "params": {"pids": some}},
        {"method": "get_pdistances", "params": {"pids": []}},
        {"method": "get_pdistances", "params": {"pids": unknown + some}},
        {"method": "get_pdistances", "params": {"pids": None}},
        {"method": "get_policy", "params": {}},
        {
            "method": "get_capabilities",
            "params": {"requester": "apptracker-1"},
        },
        {
            "method": "get_capabilities",
            "params": {"requester": "apptracker-1", "kind": "cache"},
        },
        {"method": "lookup_pid", "params": {"ip": "10.0.0.1"}},
        {"method": "get_version", "params": {}},
        {"method": "get_state_delta", "params": {}},
        {"method": "get_state_delta", "params": {"since": 1}},
        {"method": "get_state_delta", "params": {"since": 999}},
        {"method": "get_metrics", "params": {}},
        {"method": "get_metrics", "params": {"format": "json"}},
        {"method": "get_alto_costmap", "params": {}},
        {"method": "get_alto_costmap", "params": {"mode": "ordinal"}},
        {"method": "get_alto_costmap", "params": {"pids": some}},
        {"method": "get_alto_networkmap", "params": {}},
        # error frames: unknown method, schema violations, bad shapes
        {"method": "does_not_exist", "params": {}},
        {"method": "get_pdistances", "params": {"bogus": 1}},
        {"method": "get_pdistances", "params": {"pids": "not-an-array"}},
        {"method": "get_capabilities", "params": {}},
        {"method": "get_capabilities", "params": {"requester": ""}},
        {"method": "lookup_pid", "params": {"ip": "256.1.2.3"}},
        {"method": "lookup_pid", "params": {}},
        {"method": "get_metrics", "params": {"format": "yaml"}},
        {"method": "get_state_delta", "params": {"since": "0"}},
        {"method": "get_version", "params": "not-an-object"},
        {"method": None, "params": {}},
        {"params": {}},
        {"method": "get_capabilities", "params": {"requester": "r", "kind": "bogus"}},
        # malformed trace envelopes ride along and must be ignored
        {"method": "get_version", "params": {}, "trace": 42},
        {"method": "get_version", "params": {}, "trace": {"bogus": True}},
        {
            "method": "get_version",
            "params": {},
            "trace": {"trace_id": "t", "span_ref": 1, "sampled": "yes"},
        },
    ]
    return [protocol.encode_frame(message) for message in messages]


@pytest.mark.timeout(60)
class TestByteIdenticalResponses:
    @pytest.mark.parametrize("kind", [k for k in SERVER_KINDS if k != "threaded"])
    def test_all_methods_match_threaded_server(self, kind):
        pids = tuple(make_itracker().get_pdistances().pids)
        frames = conformance_requests(pids)
        with make_server("threaded", make_itracker()) as reference:
            expected = exchange(reference.address, frames)
        with make_server(kind, make_itracker()) as candidate:
            actual = exchange(candidate.address, frames)
        assert len(expected) == len(actual)
        for index, (want, got) in enumerate(zip(expected, actual)):
            assert want == got, (
                f"response {index} differs on {kind}: "
                f"{want[4:]!r} != {got[4:]!r}"
            )

    @pytest.mark.parametrize("kind", [k for k in SERVER_KINDS if k != "threaded"])
    def test_no_pid_map_errors_match(self, kind):
        frames = [
            protocol.encode_frame(
                {"method": "lookup_pid", "params": {"ip": "10.0.0.1"}}
            ),
            protocol.encode_frame({"method": "get_alto_networkmap", "params": {}}),
        ]
        with make_server(
            "threaded", make_itracker(with_pid_map=False)
        ) as reference:
            expected = exchange(reference.address, frames)
        with make_server(kind, make_itracker(with_pid_map=False)) as candidate:
            actual = exchange(candidate.address, frames)
        assert expected == actual

    @pytest.mark.parametrize("kind", [k for k in SERVER_KINDS if k != "threaded"])
    def test_state_delta_tails_identically_as_state_advances(self, kind):
        """Replication tailing: after every price update both servers
        serve the same delta documents for every ``since`` cursor."""
        reference_tracker = make_itracker()
        candidate_tracker = make_itracker()
        with make_server("threaded", reference_tracker) as reference, make_server(
            kind, candidate_tracker
        ) as candidate:
            for step in range(3):
                advance(reference_tracker, rounds=1, start=1000.0 * (step + 1))
                advance(candidate_tracker, rounds=1, start=1000.0 * (step + 1))
                frames = [
                    protocol.encode_frame(
                        {"method": "get_state_delta", "params": {"since": since}}
                    )
                    for since in (-1, 0, step, 100)
                ] + [
                    protocol.encode_frame({"method": "get_pdistances", "params": {}}),
                    protocol.encode_frame({"method": "get_version", "params": {}}),
                ]
                expected = exchange(reference.address, frames)
                actual = exchange(candidate.address, frames)
                assert expected == actual, f"divergence after update {step}"


@pytest.mark.timeout(60)
class TestOverloadEnvelopeConformance:
    """The overload additions never perturb the legacy wire contract.

    A ``deadline`` envelope that does not fire must be byte-invisible:
    the response to a stamped request is identical to the bare request's
    response, on every server kind.  Ill-typed deadline values are
    tolerated exactly like malformed trace envelopes.  Busy frames (the
    structured shed response) are part of the conformance surface too:
    identical across transports and confined to the declared response
    envelope catalog.
    """

    DEADLINE_VARIANTS = (60.0, "soon", -1, 0, True, None, [1.5])

    @pytest.mark.parametrize("kind", [k for k in SERVER_KINDS if k != "threaded"])
    def test_deadline_envelope_is_byte_invisible(self, kind):
        bare = protocol.encode_frame({"method": "get_version", "params": {}})
        stamped = [
            protocol.encode_frame(
                {"method": "get_version", "params": {}, "deadline": value}
            )
            for value in self.DEADLINE_VARIANTS
        ]
        with make_server("threaded", make_itracker()) as reference:
            expected = exchange(reference.address, [bare] + stamped)
        with make_server(kind, make_itracker()) as candidate:
            actual = exchange(candidate.address, [bare] + stamped)
        assert expected == actual
        # The deadline key is consumed server-side, never echoed: every
        # stamped response matches the bare response byte for byte.
        for index, frame in enumerate(expected[1:]):
            assert frame == expected[0], (
                f"deadline variant {self.DEADLINE_VARIANTS[index]!r} "
                f"changed the response bytes"
            )

    def test_attach_deadline_round_trips_through_the_budget_parser(self):
        message = protocol.attach_deadline(
            {"method": "get_version", "params": {}}, 1.5
        )
        assert set(message) <= protocol.REQUEST_ENVELOPE_KEYS
        assert protocol.deadline_budget(message) == 1.5

    @pytest.mark.parametrize("kind", SERVER_KINDS)
    def test_every_response_stays_inside_the_envelope_catalog(self, kind):
        pids = tuple(make_itracker().get_pdistances().pids)
        frames = conformance_requests(pids)
        with make_server(kind, make_itracker()) as server:
            responses = exchange(server.address, frames)
        for raw in responses:
            keys = set(json.loads(raw[4:]))
            assert keys <= protocol.RESPONSE_ENVELOPE_KEYS, keys

    @pytest.mark.parametrize("kind", [k for k in SERVER_KINDS if k != "threaded"])
    def test_busy_frames_match_across_transports(self, kind):
        """A forced brownout sheds the expensive methods with the exact
        same busy frame on every transport -- the shed path is part of
        the conformance surface, not an implementation detail."""
        frames = [
            protocol.encode_frame({"method": "get_alto_networkmap", "params": {}}),
            protocol.encode_frame({"method": "get_state_delta", "params": {}}),
        ]
        with make_server("threaded", make_itracker()) as reference:
            reference.force_brownout(True)
            expected = exchange(reference.address, frames)
        with make_server(kind, make_itracker()) as candidate:
            candidate.force_brownout(True)
            actual = exchange(candidate.address, frames)
        assert expected == actual
        for raw in expected:
            response = json.loads(raw[4:])
            assert response["busy"] is True
            assert response["retry_after"] > 0
            assert set(response) <= protocol.RESPONSE_ENVELOPE_KEYS


@pytest.mark.timeout(60)
class TestTracePropagation:
    @pytest.mark.parametrize("kind", SERVER_KINDS)
    def test_envelope_parents_dispatch_span(self, kind):
        telemetry = Telemetry()
        envelope = {"trace_id": "trace-abc", "span_ref": "client:7", "sampled": True}
        frame = protocol.encode_frame(
            protocol.attach_trace(
                {"method": "get_version", "params": {}}, dict(envelope)
            )
        )
        with make_server(kind, make_itracker(), telemetry=telemetry) as server:
            (raw,) = exchange(server.address, [frame])
        response = json.loads(raw[4:])
        assert "result" in response
        spans = [
            span
            for span in telemetry.traces.to_wire()
            if span["name"] == "portal.dispatch"
        ]
        assert len(spans) == 1
        span = spans[0]
        assert span["trace_id"] == "trace-abc"
        # the remote parent lives in the caller's buffer; it is recorded
        # as an attribute, not a local parent_id
        assert span["parent_id"] is None
        assert span["attributes"]["remote_parent"] == "client:7"
        assert span["attributes"]["method"] == "get_version"
        # the handler ran inside the dispatch span
        children = [
            other
            for other in telemetry.traces.to_wire()
            if other["name"] == "itracker.handle"
            and other["trace_id"] == "trace-abc"
        ]
        assert len(children) == 1

    @pytest.mark.parametrize("kind", SERVER_KINDS)
    def test_untraced_request_records_no_span(self, kind):
        telemetry = Telemetry()
        frame = protocol.encode_frame({"method": "get_version", "params": {}})
        with make_server(kind, make_itracker(), telemetry=telemetry) as server:
            (raw,) = exchange(server.address, [frame])
        assert "result" in json.loads(raw[4:])
        assert not [
            span
            for span in telemetry.traces.to_wire()
            if span["name"] == "portal.dispatch"
        ]
