"""Fault-injection tests: the portal survives everything Sec. 5.3 promises.

Real sockets, real server, faults injected by :class:`FaultyPortal`; every
test carries ``@pytest.mark.timeout`` so a framing bug can never hang the
suite.  The ladder test walks the full degradation story end to end:
healthy -> retry -> stale -> unavailable + native selection -> recovery.
"""

import random

import pytest

from repro.apptracker.selection import P4PSelection, PeerInfo, RandomSelection
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.management.monitors import ResilienceCounters
from repro.network.library import abilene
from repro.portal.client import PortalClient, PortalClientError, PortalTransportError
from repro.portal.faults import (
    Fault,
    FaultKind,
    FaultSchedule,
    FaultyPortal,
    churn_values,
    drop_rows,
    negate_distances,
)
from repro.portal.resilience import (
    CircuitBreaker,
    PortalUnavailable,
    ResilientPortalClient,
    RetryPolicy,
)
from repro.portal.aserver import AsyncPortalServer
from repro.portal.server import PortalServer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def itracker():
    return ITracker(
        topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
    )


@pytest.fixture
def stack(itracker):
    """(itracker, proxy) with a live server behind the fault proxy."""
    with PortalServer(itracker) as server:
        with FaultyPortal(server.address) as proxy:
            yield itracker, proxy


def resilient(proxy, clock, **kwargs):
    kwargs.setdefault(
        "retry",
        RetryPolicy(
            max_attempts=2, base_delay=0.01, max_delay=0.05, attempt_timeout=2.0
        ),
    )
    kwargs.setdefault(
        "breaker", CircuitBreaker(failure_threshold=3, cooldown=30.0, clock=clock)
    )
    kwargs.setdefault("stale_ttl", 60.0)
    kwargs.setdefault("counters", ResilienceCounters())
    return ResilientPortalClient(
        *proxy.address,
        clock=clock,
        sleep=clock.sleep,
        rng=random.Random(7),
        **kwargs,
    )


@pytest.mark.timeout(30)
class TestProxyFaults:
    def test_pass_through_is_transparent(self, stack):
        itracker, proxy = stack
        with PortalClient(*proxy.address) as client:
            assert client.get_version() == itracker.version
            view = client.get_pdistances()
            local = itracker.get_pdistances()
            assert view.distance("SEAT", "NYCM") == pytest.approx(
                local.distance("SEAT", "NYCM")
            )

    def test_mid_frame_reset_absorbed_by_one_resend(self, stack):
        """A single reset is survived: the client reconnects and resends
        the frame exactly once (portal methods are idempotent reads)."""
        itracker, proxy = stack
        proxy.schedule.script[0] = Fault(FaultKind.RESET_MID_FRAME)
        with PortalClient(*proxy.address) as client:
            assert client.get_version() == itracker.version

    def test_mid_frame_reset_twice_is_transport_error(self, stack):
        _, proxy = stack
        proxy.schedule.script[0] = Fault(FaultKind.RESET_MID_FRAME)
        proxy.schedule.script[1] = Fault(FaultKind.RESET_MID_FRAME)
        with PortalClient(*proxy.address) as client:
            with pytest.raises(PortalTransportError, match="mid-frame"):
                client.get_version()

    def test_corrupt_frame_twice_is_transport_error(self, stack):
        _, proxy = stack
        proxy.schedule.script[0] = Fault(FaultKind.CORRUPT_FRAME)
        proxy.schedule.script[1] = Fault(FaultKind.CORRUPT_FRAME)
        with PortalClient(*proxy.address) as client:
            with pytest.raises(PortalTransportError):
                client.get_version()

    def test_truncated_frame_twice_is_transport_error(self, stack):
        _, proxy = stack
        proxy.schedule.script[0] = Fault(FaultKind.TRUNCATE_FRAME)
        proxy.schedule.script[1] = Fault(FaultKind.TRUNCATE_FRAME)
        with PortalClient(*proxy.address) as client:
            with pytest.raises(PortalTransportError):
                client.get_version()

    def test_error_response_is_not_transport(self, stack):
        _, proxy = stack
        proxy.schedule.script[0] = Fault(
            FaultKind.ERROR_RESPONSE, message="injected portal error"
        )
        with PortalClient(*proxy.address) as client:
            with pytest.raises(PortalClientError, match="injected portal error") as info:
                client.get_version()
            assert not isinstance(info.value, PortalTransportError)

    def test_latency_past_deadline_times_out(self, stack):
        _, proxy = stack
        proxy.schedule.script[0] = Fault(FaultKind.DELAY, delay=1.5)
        with PortalClient(*proxy.address, timeout=0.2) as client:
            with pytest.raises(PortalTransportError):
                client.get_version()

    def test_down_proxy_drops_connections(self, stack):
        _, proxy = stack
        proxy.down = True
        with pytest.raises((PortalTransportError, OSError)):
            PortalClient(*proxy.address).get_version()


@pytest.mark.timeout(30)
class TestByzantineViews:
    """Byzantine p-distance payloads are rejected by validation and never
    reach selection (the acceptance criterion verbatim)."""

    def _fetch_then_mutate(self, stack, mutator):
        itracker, proxy = stack
        clock = FakeClock()
        client = resilient(proxy, clock)
        good = client.get_view()
        assert not good.stale
        # A new version forces a real re-fetch (the version cache would
        # otherwise shield the client from the mutated payload).
        itracker.refresh_topology()
        proxy.schedule.default = Fault(FaultKind.BYZANTINE, mutate=mutator)
        snapshot = client.get_view()
        proxy.schedule.default = Fault(FaultKind.PASS)
        return client, good, snapshot

    def test_negative_distances_rejected(self, stack):
        client, good, snapshot = self._fetch_then_mutate(stack, negate_distances)
        assert snapshot.stale and snapshot.view is good.view
        assert client.counters.validation_rejections >= 1

    def test_missing_rows_rejected(self, stack):
        client, good, snapshot = self._fetch_then_mutate(stack, drop_rows)
        assert snapshot.stale and snapshot.view is good.view
        assert client.counters.validation_rejections >= 1

    def test_high_churn_rejected(self, stack):
        client, good, snapshot = self._fetch_then_mutate(stack, churn_values(1000.0))
        assert snapshot.stale and snapshot.view is good.view
        assert client.counters.validation_rejections >= 1

    def test_byzantine_with_no_baseline_is_unavailable(self, stack):
        _, proxy = stack
        proxy.schedule.default = Fault(FaultKind.BYZANTINE, mutate=negate_distances)
        client = resilient(proxy, FakeClock())
        with pytest.raises(PortalUnavailable):
            client.get_view()
        assert client.counters.validation_rejections >= 1


@pytest.mark.timeout(60)
class TestDegradationLadder:
    def test_full_ladder(self, stack):
        """healthy -> retry-on-reset -> stale -> unavailable + native ->
        HALF_OPEN probe -> recovery, with counters matching each stage."""
        itracker, proxy = stack
        clock = FakeClock()
        counters = ResilienceCounters()
        client = resilient(proxy, clock, counters=counters)
        as_number = 11537

        # Stage 1: healthy fetch.
        fresh = client.get_view()
        assert not fresh.stale and fresh.version == itracker.version
        assert counters.retries == 0

        # Stage 2: transient mid-frame resets.  A single reset is absorbed
        # by the transport's reconnect-and-resend before the resilience
        # layer even notices; two consecutive resets exhaust the resend
        # and surface as one transport failure, consumed by one retry.
        seen = proxy.schedule.requests_seen
        proxy.schedule.script[seen] = Fault(FaultKind.RESET_MID_FRAME)
        proxy.schedule.script[seen + 1] = Fault(FaultKind.RESET_MID_FRAME)
        snapshot = client.get_view()
        assert not snapshot.stale
        assert counters.retries == 1
        assert client.breaker_state == "closed"

        # Stage 3: portal goes dark -> stale views (flagged, aged), breaker
        # trips after the failure threshold.
        proxy.down = True
        clock.advance(5.0)
        stale_1 = client.get_view()
        assert stale_1.stale and stale_1.age >= 5.0
        assert stale_1.view is snapshot.view
        assert counters.stale_serves == 1
        stale_2 = client.get_view()  # third consecutive failure -> trip
        assert stale_2.stale
        assert client.breaker_state == "open"
        assert counters.breaker_trips == 1
        # While open the stale view is served without touching the network.
        seen = proxy.schedule.requests_seen
        assert client.get_view().stale
        assert proxy.schedule.requests_seen == seen

        # Stage 4: stale TTL expires -> explicit PortalUnavailable, and
        # selection for that AS degrades to native.
        clock.advance(61.0)
        with pytest.raises(PortalUnavailable):
            client.get_view()
        assert counters.unavailable == 1
        selector = P4PSelection(
            pdistances={as_number: stale_2.view},
            portal_health={as_number: "unavailable"},
        )
        peer = PeerInfo(peer_id=0, pid="SEAT", as_number=as_number)
        candidates = [
            PeerInfo(peer_id=i, pid=pid, as_number=as_number)
            for i, pid in enumerate(
                ["SEAT", "SEAT", "NYCM", "NYCM", "CHIN", "DNVR"], start=1
            )
        ]
        chosen = selector.select(peer, candidates, 4, random.Random(3))
        native = RandomSelection().select(peer, candidates, 4, random.Random(3))
        assert chosen == native
        assert selector.native_fallbacks == 1

        # Stage 5: portal returns -> HALF_OPEN probe closes the breaker and
        # fresh guidance resumes.
        proxy.down = False
        clock.advance(31.0)
        recovered = client.get_view()
        assert not recovered.stale
        assert client.breaker_state == "closed"
        assert counters.breaker_probes >= 1
        # one retry from stage 2's reset, one inside stage 3's first failed
        # fetch (the second fetch trips the breaker before its retry).
        assert counters.snapshot()["retries"] == 2
        assert counters.snapshot()["breaker_trips"] == 1
        assert counters.snapshot()["stale_serves"] >= 2
        assert counters.snapshot()["unavailable"] == 1


@pytest.mark.timeout(120)
class TestOutageScenario:
    def test_swarm_degrades_toward_native_and_recovers(self):
        from repro.simulator.outage import OutageScenarioResult, run_portal_outage

        result = run_portal_outage()
        # Everyone completes in all three runs: the outage never blocks the
        # swarm (iTrackers are off the critical path).
        for run in (result.healthy, result.degraded, result.native):
            assert len(run.completion_times) == 12

        # The health ladder appears in order: ok -> stale -> unavailable ->
        # ok (recovery).
        statuses = result.statuses()
        assert statuses[0] == "ok"
        assert "stale" in statuses
        assert "unavailable" in statuses[statuses.index("stale"):]
        assert statuses[-1] == "ok"

        # Telemetry matches the stages.
        assert result.counters["stale_serves"] > 0
        assert result.counters["breaker_trips"] >= 1
        assert result.counters["unavailable"] > 0
        assert result.counters["breaker_probes"] >= 1
        assert result.native_fallbacks > 0

        # Completion time degrades *toward* native: the degraded run sits
        # between always-guided P4P and never-guided native (deterministic
        # seeds; small tolerance for tie-breaking noise).
        healthy_t = result.healthy.mean_completion()
        degraded_t = result.degraded.mean_completion()
        native_t = result.native.mean_completion()
        assert degraded_t >= healthy_t * 0.95
        assert degraded_t <= max(native_t, healthy_t) * 1.25

        # Localization (backbone traffic) degrades the same way.
        healthy_bb = OutageScenarioResult.backbone_mbit(result.healthy)
        degraded_bb = OutageScenarioResult.backbone_mbit(result.degraded)
        native_bb = OutageScenarioResult.backbone_mbit(result.native)
        assert healthy_bb < native_bb
        assert healthy_bb * 0.95 <= degraded_bb <= native_bb * 1.1

        # The degraded run carries a Telemetry bundle driven by the *sim*
        # clock: its registry uptime is sim-seconds, not wall-seconds, and
        # the stale-age histogram observed sim-time view ages.
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.registry.uptime() > 60.0  # sim ran for minutes
        stale_age = telemetry.registry.get("p4p_sim_stale_age_seconds")
        assert stale_age.labels().count > 0
        assert stale_age.labels().sum > 0
        # The registry-backed resilience gauges are the same numbers the
        # result reports through the dataclass-compatible snapshot.
        resilience = {
            name: telemetry.registry.get(f"p4p_resilience_{name}").labels().value
            for name in ("stale_serves", "breaker_trips", "unavailable")
        }
        for name, value in resilience.items():
            assert value == result.counters[name]
        # Portal health gauge ends the run back at 0 (= "ok").
        health = telemetry.registry.get("p4p_sim_portal_health")
        assert health.labels().value == 0


class TestDualServerClients:
    """Regression: the whole client stack -- fault proxy, one-shot
    reconnect, resilient client -- works unchanged against the asyncio
    serving plane.  Parameterized over both servers so any divergence in
    severing/reset behaviour shows up as a pair of failures."""

    @staticmethod
    def make_server(kind, itracker, **kwargs):
        if kind == "threaded":
            return PortalServer(itracker, **kwargs)
        return AsyncPortalServer(itracker, workers=2, **kwargs)

    @pytest.fixture(params=["threaded", "async"])
    def dual_stack(self, request, itracker):
        with self.make_server(request.param, itracker) as server:
            with FaultyPortal(server.address) as proxy:
                yield itracker, proxy

    @pytest.mark.timeout(30)
    def test_proxy_pass_through(self, dual_stack):
        itracker, proxy = dual_stack
        with PortalClient(*proxy.address) as client:
            assert client.get_version() == itracker.version
            view = client.get_pdistances()
            local = itracker.get_pdistances()
            assert view.distances == local.distances

    @pytest.mark.timeout(30)
    def test_one_reset_absorbed_by_one_resend(self, dual_stack):
        itracker, proxy = dual_stack
        proxy.schedule.script[0] = Fault(FaultKind.RESET_MID_FRAME)
        with PortalClient(*proxy.address) as client:
            assert client.get_version() == itracker.version

    @pytest.mark.timeout(30)
    def test_two_resets_surface_as_transport_error(self, dual_stack):
        _, proxy = dual_stack
        proxy.schedule.script[0] = Fault(FaultKind.RESET_MID_FRAME)
        proxy.schedule.script[1] = Fault(FaultKind.RESET_MID_FRAME)
        with PortalClient(*proxy.address) as client:
            with pytest.raises(PortalTransportError):
                client.get_version()

    @pytest.mark.timeout(30)
    def test_resilient_client_retries_through_proxy(self, dual_stack):
        itracker, proxy = dual_stack
        clock = FakeClock()
        proxy.schedule.script[0] = Fault(FaultKind.RESET_MID_FRAME)
        client = resilient(proxy, clock)
        try:
            view = client.get_pdistances()
            assert view.distances == itracker.get_pdistances().distances
        finally:
            client.close()

    @pytest.mark.timeout(60)
    @pytest.mark.parametrize("kind", ["threaded", "async"])
    def test_portal_client_survives_server_restart(self, kind, itracker):
        """One-shot reconnect: a server restart on the same port is
        absorbed by exactly one transparent resend."""
        server = self.make_server(kind, itracker)
        host, port = server.address
        client = PortalClient(host, port)
        try:
            assert client.get_version() == itracker.version
            server.close()
            server = self.make_server(kind, itracker, host=host, port=port)
            # the old socket is dead; the next call reconnects and resends
            assert client.get_version() == itracker.version
            assert client.get_pdistances().distances == (
                itracker.get_pdistances().distances
            )
        finally:
            client.close()
            server.close()
