"""Whole-program index tests over a real multi-module fixture package.

``tests/fixtures/lint/xproject`` is a miniature project whose blocking
call lives one module away from the coroutine that reaches it, plus a
dynamically dispatched class -- the shapes single-file fixtures cannot
exercise: import resolution, cross-module edges, dynamic-dispatch
closure, executor hops, and domain classification.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Analyzer, Project, resolve_rules
from repro.analysis.callgraph import (
    DOMAIN_LOOP,
    DOMAIN_THREAD,
    ProjectIndex,
    module_name_of,
)
from repro.analysis.dataflow import build_dataflow

XPROJECT = Path(__file__).resolve().parent / "fixtures" / "lint" / "xproject"


@pytest.fixture(scope="module")
def project() -> Project:
    return Project.load(XPROJECT)


@pytest.fixture(scope="module")
def index(project) -> ProjectIndex:
    return ProjectIndex.build(project)


def test_module_name_mapping():
    assert module_name_of("repro/portal/views.py") == "repro.portal.views"
    assert module_name_of("repro/__init__.py") == "repro"


def test_symbols_cover_both_modules(index):
    assert "repro.app.handle" in index.functions
    assert "repro.io_layer.fetch_slow" in index.functions
    assert "repro.io_layer.Store" in index.classes
    assert index.functions["repro.app.handle"].is_async
    assert not index.functions["repro.io_layer.fetch_slow"].is_async


def test_cross_module_call_edge(index):
    callees = {
        edge.callee
        for edge in index.edges["repro.app.handle"]
        if edge.callee is not None
    }
    assert "repro.io_layer.fetch_slow" in callees
    assert "repro.app.render" in callees


def test_walk_sync_reaches_blocking_call_across_modules(index):
    reached = {}
    for fn, chain, _edge in index.walk_sync("repro.app.handle"):
        reached[fn] = chain
    assert "repro.io_layer.fetch_slow" in reached
    assert reached["repro.io_layer.fetch_slow"] == (
        "repro.app.handle",
        "repro.io_layer.fetch_slow",
    )
    externals = {
        edge.external
        for edge in index.external_calls("repro.io_layer.fetch_slow")
    }
    assert "time.sleep" in externals


def test_dynamic_dispatch_closure(index):
    kinds = {
        (edge.kind, edge.callee)
        for edge in index.edges["repro.io_layer.Store.dispatch"]
    }
    assert ("dynamic", "repro.io_layer.Store._do_get") in kinds
    assert ("dynamic", "repro.io_layer.Store._do_put") in kinds


def test_walk_sync_stops_at_executor_hop(index):
    reached = {fn for fn, _chain, _edge in index.walk_sync("repro.app.offloaded")}
    assert "repro.io_layer.fetch_slow" not in reached


def test_domains_classify_loop_and_executor_targets(index):
    domains = index.domains()
    assert DOMAIN_LOOP in domains["repro.app.handle"]
    # fetch_slow is both called inline from coroutines and offloaded.
    assert DOMAIN_THREAD in domains["repro.io_layer.fetch_slow"]
    assert DOMAIN_LOOP in domains["repro.io_layer.fetch_slow"]


def test_dataflow_summarises_store(project, index):
    summaries = build_dataflow(project, index)
    store = summaries["repro.io_layer.Store"]
    assert store.lock_attrs == set()
    attrs = store.by_attr()
    assert "_items" in attrs


def test_asy001_fires_across_modules_and_spares_offload(project):
    report = Analyzer(resolve_rules(select=["ASY001"])).run(project)
    by_message = {f.message for f in report.findings}
    assert any(
        "handle()" in message
        and "fetch_slow -> time.sleep()" in message
        for message in by_message
    ), by_message
    assert any(
        "handle_dispatch()" in message and "Store.dispatch" in message
        for message in by_message
    ), by_message
    assert not any("offloaded" in message for message in by_message)
