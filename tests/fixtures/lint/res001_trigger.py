"""RES001 trigger: acquired resources that are never released."""

import socket
import tempfile


def leak_client_socket(host: str, port: int) -> bytes:
    sock = socket.create_connection((host, port), timeout=5.0)
    sock.sendall(b"ping")
    return sock.recv(4)  # returns bytes; the socket itself leaks


def leak_accepted_connection(listener_sock) -> bytes:
    conn, addr = listener_sock.accept()
    banner = conn.recv(64)
    return banner  # the accepted connection is abandoned open


def leak_tempfile() -> str:
    handle = tempfile.NamedTemporaryFile(delete=False)
    handle.write(b"scratch")
    return handle.name  # attribute read, not a transfer of the handle
