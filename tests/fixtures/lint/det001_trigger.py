"""DET001 trigger: every construct the determinism rule must flag.

Analyzed with a relpath under ``repro/simulator/`` so the wall-clock
checks are in scope.
"""

import random
import time
from datetime import datetime

import numpy as np


def module_level_rng() -> float:
    return random.random()  # shared unseeded module RNG


def unseeded_instance() -> random.Random:
    return random.Random()  # unseeded: seeds from OS entropy


def wall_clock_stamp() -> float:
    return time.time()  # wall clock in a simulation path


def wall_clock_datetime() -> datetime:
    return datetime.now()  # wall clock via datetime


def unseeded_numpy() -> np.random.Generator:
    return np.random.default_rng()  # unseeded generator
