"""EXC001 near-miss: broad handlers that surface the failure, and
narrow handlers that may stay quiet."""

import logging

logger = logging.getLogger(__name__)


class Worker:
    def __init__(self) -> None:
        self.failures = 0

    def logged(self, op):
        try:
            return op()
        except Exception as exc:
            logger.warning("operation failed: %s", exc)
            return None

    def counted(self, op):
        try:
            return op()
        except Exception:
            self.failures += 1
            return None

    def reraised(self, op):
        try:
            return op()
        except Exception as exc:
            raise RuntimeError("wrapped") from exc

    def narrow(self, mapping, key):
        try:
            return mapping[key]
        except KeyError:
            return None  # narrow handlers may swallow
