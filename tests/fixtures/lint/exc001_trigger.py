"""EXC001 trigger: broad exception handlers that swallow silently."""


def swallow(op):
    try:
        return op()
    except Exception:
        return None  # silent: no re-raise, no log, no counter


def swallow_bare(op):
    try:
        return op()
    except:  # noqa: E722 -- deliberately bare for the fixture
        pass
