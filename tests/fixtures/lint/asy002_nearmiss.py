"""ASY002 near-miss: cross-domain traffic with double-checked locking."""

import threading


class PublishedView:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshot = None
        self._worker = threading.Thread(target=self._publish_loop, daemon=True)

    def _publish_loop(self) -> None:  # thread domain
        while True:
            with self._lock:
                self._snapshot = {"fresh": True}  # locked write

    async def current(self):  # loop domain
        snapshot = self._snapshot  # lock-free probe: exempt because...
        if snapshot is not None:
            return snapshot
        with self._lock:
            return self._snapshot  # ...this method re-checks under the lock


class LoopOnly:
    """Both accesses on the loop: no cross-domain claim to enforce."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls = 0

    async def record(self) -> None:
        self._calls = self._calls + 1

    def locked_snapshot(self) -> int:
        with self._lock:
            self._calls = self._calls  # a locked write, same domain
            return self._calls
