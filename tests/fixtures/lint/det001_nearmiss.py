"""DET001 near-miss: deterministic idioms the rule must accept.

Seeded generators, injectable clocks referenced (not called) as
defaults, and explicit rng threading.
"""

import random
import time
from typing import Callable

import numpy as np


def seeded_instance(seed: int) -> random.Random:
    return random.Random(seed)


def string_seeded(host: str, port: int) -> random.Random:
    return random.Random(f"p4p:{host}:{port}")


def seeded_numpy(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def injectable_clock(clock: Callable[[], float] = time.monotonic) -> float:
    # Referencing time.monotonic as a default is the injection idiom;
    # only *calling* it inside simulation code is a finding.
    return clock()


def threaded_rng(rng: random.Random) -> float:
    return rng.uniform(0.0, 1.0)
