"""TEL001 near-miss: compliant registrations, including the
constant-propagated conditional label tuple."""


def instrument(registry, per_as: bool):
    registry.counter("p4p_requests_total", "literal counter", ("method",))
    registry.gauge("p4p_queue_depth", "literal gauge", ())
    labelnames = ("as_number",) if per_as else ()
    registry.histogram("p4p_latency_seconds", "resolved labels", labelnames)
    # Calls on receivers that are not a registry are out of scope.
    builder.counter("whatever goes", "not a registry", object())


class builder:
    @staticmethod
    def counter(*args: object) -> None:
        return None


def start_spans(telemetry, tracer, context, name: str):
    telemetry.traces.start("itracker.price_update")
    with telemetry.traces.span("itracker.handle", method="get_view"):
        pass
    span = tracer.start_trace("client.call", method="get_view")
    tracer.start_child("portal.dispatch", context)
    with tracer.trace("chaos.tick"):
        pass
    # Non-span-starting methods and non-trace receivers are out of scope.
    tracer.event(name)
    telemetry.traces.finish(span)
    helper.span(name)


class helper:
    @staticmethod
    def span(*args: object) -> None:
        return None
