"""ASY002 trigger: event loop and worker thread share unguarded state."""

import threading


class SharedCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshot = None
        self._epoch = 0
        self._worker = threading.Thread(target=self._refresh_loop, daemon=True)

    def _refresh_loop(self) -> None:  # thread domain via Thread(target=...)
        while True:
            self._snapshot = {"fresh": True}  # unguarded write (thread)
            self._epoch = self._epoch + 1  # unguarded write (thread)

    async def read_side(self):  # loop domain
        return self._snapshot, self._epoch  # unguarded reads (loop)

    def locked_reset(self) -> None:
        with self._lock:
            self._snapshot = None
            self._epoch = 0
