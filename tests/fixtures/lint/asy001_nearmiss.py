"""ASY001 near-miss: blocking work correctly offloaded or truly async."""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor


def _blocking_refresh() -> None:
    time.sleep(0.05)


async def refresh_via_executor() -> None:
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, _blocking_refresh)


async def refresh_via_to_thread() -> None:
    await asyncio.to_thread(_blocking_refresh)


async def tick() -> None:
    await asyncio.sleep(0.1)  # awaited async sleep: the loop keeps turning


class Portal:
    def __init__(self) -> None:
        self._executor = ThreadPoolExecutor(2)

    async def warm(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, _blocking_refresh)


def sync_caller() -> None:
    # Blocking is fine here: no coroutine reaches this function inline.
    _blocking_refresh()
