"""LCK001 trigger: an attribute written under the lock but read bare."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0  # constructor writes are exempt

    def increment(self) -> None:
        with self._lock:
            self._value += 1

    def peek(self) -> int:
        return self._value  # unguarded read of a guarded attribute

    def store(self, value: int) -> None:
        self._value = value  # unguarded write of a guarded attribute
