"""ASY001 trigger: coroutines that reach blocking primitives inline."""

import subprocess
import time


def _throttle() -> None:
    time.sleep(0.05)


def _refresh() -> None:
    _throttle()


async def handle_direct() -> None:
    time.sleep(1.0)  # blocks the loop outright


async def handle_transitive() -> None:
    _refresh()  # -> _throttle -> time.sleep, two hops deep


async def handle_subprocess() -> str:
    proc = subprocess.run(["true"], capture_output=True)
    return proc.stdout.decode()


class Session:
    def __init__(self, lock) -> None:
        self._lock = lock

    async def acquire_inline(self) -> None:
        self._lock.acquire()  # parks the loop until the lock frees
