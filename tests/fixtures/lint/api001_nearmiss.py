"""API001 near-miss: handlers and schema table in exact parity."""

METHOD_SCHEMAS = {
    "get_thing": {},
    "get_other": {"name": (True, "string")},
}


class Server:
    def dispatch(self, method: str, params: dict) -> object:
        handler = getattr(self, f"_do_{method}")
        return handler(params)

    def _do_get_thing(self, params: dict) -> dict:
        return {"thing": 1}

    def _do_get_other(self, params: dict) -> dict:
        return {"other": 2}

    def _helper(self, params: dict) -> dict:
        """Not a _do_ handler; never checked."""
        return params


class NotADispatcher:
    """Has a _do_ method but no dispatch(): out of scope."""

    def _do_cleanup(self) -> None:
        return None
