"""TEL001 trigger: every telemetry-hygiene violation class."""


def instrument(registry, kind: str):
    registry.counter(f"p4p_{kind}_total", "dynamic name", ())
    registry.counter("requests_total", "missing p4p_ prefix", ())
    registry.counter("p4p_requests", "counter without _total", ())
    registry.gauge("p4p_queue_depth", "free-form label", ("client_ip",))
    labelnames = dynamic_labels()
    registry.histogram("p4p_latency_seconds", "opaque labels", labelnames)


def dynamic_labels():
    return ("method",)


def start_spans(telemetry, tracer, name: str):
    telemetry.traces.start(name)  # dynamic span name
    telemetry.traces.span("portal.made_up")  # undeclared span name
    tracer.start_trace("client.rogue")  # undeclared span name
    with tracer.trace(f"chaos.{name}"):  # dynamic span name
        pass
