"""LCK001 near-miss: disciplined locking plus lock-free classes."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def increment(self) -> None:
        with self._lock:
            self._value += 1

    def peek(self) -> int:
        with self._lock:
            return self._value


class PlainBag:
    """No lock anywhere: nothing is inferred as guarded."""

    def __init__(self) -> None:
        self.items = []

    def add(self, item: object) -> None:
        self.items.append(item)

    def size(self) -> int:
        return len(self.items)
