"""API001 trigger: dispatch handlers out of parity with METHOD_SCHEMAS."""

METHOD_SCHEMAS = {
    "get_thing": {},
    "get_orphan": {},  # schema entry with no _do_get_orphan handler
}


class Server:
    def dispatch(self, method: str, params: dict) -> object:
        handler = getattr(self, f"_do_{method}")
        return handler(params)

    def _do_get_thing(self, params: dict) -> dict:
        return {"thing": 1}

    def _do_get_other(self, params: dict) -> dict:  # no schema entry
        return {"other": 2}
