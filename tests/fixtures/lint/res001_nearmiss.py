"""RES001 near-miss: every acquisition is closed, managed, or handed off."""

import socket
import tempfile


def with_managed_socket(host: str, port: int) -> bytes:
    with socket.create_connection((host, port)) as sock:
        sock.sendall(b"ping")
        return sock.recv(4)


def close_on_error(host: str, port: int) -> bytes:
    sock = socket.create_connection((host, port))
    try:
        sock.sendall(b"ping")
        return sock.recv(4)
    finally:
        sock.close()


def transfer_ownership(listener_sock, pool) -> None:
    conn, _addr = listener_sock.accept()
    pool.adopt(conn)  # bare-argument hand-off: the pool owns it now


def return_acquired(host: str, port: int):
    sock = socket.create_connection((host, port))
    return sock  # the caller owns it now


def tempfile_scratch() -> None:
    scratch = tempfile.NamedTemporaryFile()
    scratch.write(b"x")
    scratch.close()
