"""Coroutines whose blocking calls live one module away."""

import asyncio

from repro.io_layer import Store, fetch_slow


def render(payload: str) -> dict:
    return {"payload": payload}


async def handle(url: str) -> dict:
    return render(fetch_slow(url))  # cross-module chain to time.sleep


async def handle_dispatch() -> object:
    store = Store()
    return store.dispatch("get")  # dynamic edge chain to time.sleep


async def offloaded(url: str) -> str:
    return await asyncio.to_thread(fetch_slow, url)  # executor hop: clean
