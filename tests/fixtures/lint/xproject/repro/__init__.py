"""Cross-module call-graph fixture package (tests/test_callgraph.py)."""
