"""Blocking I/O helpers plus a dynamically dispatched store."""

import time


def fetch_slow(url: str) -> str:
    time.sleep(0.5)
    return url


class Store:
    def __init__(self) -> None:
        self._items = {}

    def dispatch(self, method: str):
        handler = getattr(self, f"_do_{method}")
        return handler()

    def _do_get(self) -> str:
        return fetch_slow("store://get")

    def _do_put(self) -> None:
        return None
