"""Tests for percentile charging and the Sec. 6.1 predictor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.charging import (
    INTERVALS_PER_PERIOD,
    BackgroundPredictor,
    ChargingVolumePredictor,
    charging_volume,
    estimate_virtual_capacity,
    percentile_volume,
)


class TestPercentileVolume:
    def test_paper_interval_count(self):
        # 95% x 30 days x 24h x 60min / 5min = 8208th sorted interval.
        assert INTERVALS_PER_PERIOD == 8640
        assert int(0.95 * INTERVALS_PER_PERIOD) == 8208

    def test_95th_of_full_month(self):
        volumes = np.arange(1, INTERVALS_PER_PERIOD + 1, dtype=float)
        assert charging_volume(volumes) == 8208.0

    def test_max_at_q_one(self):
        assert percentile_volume([3.0, 1.0, 2.0], q=1.0) == 3.0

    def test_small_sample(self):
        assert percentile_volume([10.0, 20.0], q=0.95) == 20.0

    def test_single_sample(self):
        assert percentile_volume([7.0], q=0.95) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_volume([], q=0.95)

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            percentile_volume([1.0], q=0.0)
        with pytest.raises(ValueError):
            percentile_volume([1.0], q=1.5)

    @settings(max_examples=100)
    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_result_is_a_sample(self, volumes, q):
        assert percentile_volume(volumes, q) in volumes

    @settings(max_examples=100)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
    def test_monotone_in_q(self, volumes):
        low = percentile_volume(volumes, 0.5)
        high = percentile_volume(volumes, 0.95)
        assert low <= high


class TestChargingVolumePredictor:
    def test_warmup_uses_previous_period(self):
        predictor = ChargingVolumePredictor(q=0.95, period_intervals=100, warmup_intervals=10)
        # Previous period all 50s; current period starts with 500s.
        history = [50.0] * 100 + [500.0] * 5
        predicted = predictor.predict(history, 105)
        # Inside warm-up -> last 100 samples (mostly previous period).
        assert predicted == percentile_volume(history[5:105], 0.95)

    def test_after_warmup_uses_current_period(self):
        predictor = ChargingVolumePredictor(q=0.95, period_intervals=100, warmup_intervals=10)
        history = [50.0] * 100 + [500.0] * 20
        predicted = predictor.predict(history, 120)
        assert predicted == 500.0  # current-period samples only

    def test_pure_sliding_window_variant(self):
        predictor = ChargingVolumePredictor(
            q=0.95, period_intervals=100, warmup_intervals=10, pure_sliding_window=True
        )
        history = [50.0] * 100 + [500.0] * 20
        predicted = predictor.predict(history, 120)
        # Sliding over the last 100 -> 80 old + 20 new; 95th pct hits new peak.
        assert predicted == 500.0
        history2 = [500.0] * 100 + [50.0] * 20
        # With descending traffic the naive window over-predicts badly.
        assert predictor.predict(history2, 120) == 500.0

    def test_hybrid_beats_sliding_on_period_change(self):
        """The paper's observation: a pure sliding window mis-predicts when
        the previous period's charging volume was much higher."""
        hybrid = ChargingVolumePredictor(q=0.95, period_intervals=100, warmup_intervals=10)
        sliding = ChargingVolumePredictor(
            q=0.95, period_intervals=100, warmup_intervals=10, pure_sliding_window=True
        )
        history = [500.0] * 100 + [50.0] * 50
        truth = 50.0  # the current period is flat at 50
        assert abs(hybrid.predict(history, 150) - truth) < abs(
            sliding.predict(history, 150) - truth
        )

    def test_first_interval_rejected(self):
        with pytest.raises(ValueError):
            ChargingVolumePredictor().predict([1.0], 0)

    def test_insufficient_history_rejected(self):
        with pytest.raises(ValueError):
            ChargingVolumePredictor().predict([1.0], 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChargingVolumePredictor(q=0.0)
        with pytest.raises(ValueError):
            ChargingVolumePredictor(period_intervals=0)
        with pytest.raises(ValueError):
            ChargingVolumePredictor(period_intervals=10, warmup_intervals=20)


class TestBackgroundPredictor:
    def test_moving_average(self):
        predictor = BackgroundPredictor(window=3)
        assert predictor.predict([1.0, 2.0, 3.0, 4.0], 4) == pytest.approx(3.0)

    def test_short_history(self):
        predictor = BackgroundPredictor(window=10)
        assert predictor.predict([2.0, 4.0], 2) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackgroundPredictor(window=0)
        with pytest.raises(ValueError):
            BackgroundPredictor().predict([], 0)


class TestVirtualCapacity:
    def test_headroom_positive(self):
        total = [100.0] * 50
        background = [30.0] * 50
        v_e = estimate_virtual_capacity(
            total,
            background,
            50,
            charging_predictor=ChargingVolumePredictor(period_intervals=40, warmup_intervals=5),
        )
        assert v_e == pytest.approx(70.0)

    def test_clamped_at_zero(self):
        total = [100.0] * 50
        background = [150.0] * 50
        v_e = estimate_virtual_capacity(
            total,
            background,
            50,
            charging_predictor=ChargingVolumePredictor(period_intervals=40, warmup_intervals=5),
        )
        assert v_e == 0.0
