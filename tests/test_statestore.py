"""Tests for the crash-safe state store and iTracker checkpoint/restore.

Two layers: the store primitives (atomic snapshots, CRC-framed WAL lines,
torn-tail truncation, snapshot/WAL merge) and the iTracker's durability
contract -- a restored tracker resumes the projected super-gradient from
its last persisted iterate with a strictly higher ``(epoch, version)``.
"""

import json

import numpy as np
import pytest

from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.statestore import RecoveredState, StateStore
from repro.network.library import abilene


@pytest.fixture
def store(tmp_path):
    return StateStore(tmp_path / "state")


def make_tracker(store=None, **config_kwargs):
    config_kwargs.setdefault("mode", PriceMode.DYNAMIC)
    config_kwargs.setdefault("update_period", 5.0)
    return ITracker(
        topology=abilene(),
        config=ITrackerConfig(**config_kwargs),
        state_store=store,
    )


def drive(tracker, iterations=3, start=0.0, load=80.0):
    """Run a few dynamic price updates against a fixed offered load."""
    key = ("STTL", "DNVR") if ("STTL", "DNVR") in tracker.topology.links else None
    key = key or next(iter(tracker.topology.links))
    for i in range(iterations):
        tracker.observe_loads({key: load}, now=start + 5.0 * (i + 1))


class TestStorePrimitives:
    def test_snapshot_round_trip(self, store):
        store.save_snapshot({"version": 3, "prices": [1, 2, 3]})
        state, corrupt = store.load_snapshot()
        assert not corrupt
        assert state == {"version": 3, "prices": [1, 2, 3]}

    def test_missing_snapshot_is_absent_not_corrupt(self, store):
        assert store.load_snapshot() == (None, False)

    def test_corrupt_snapshot_treated_as_absent(self, store):
        store.save_snapshot({"version": 3})
        raw = json.loads(store.snapshot_path.read_text())
        raw["state"]["version"] = 99  # body no longer matches the CRC
        store.snapshot_path.write_text(json.dumps(raw))
        state, corrupt = store.load_snapshot()
        assert state is None and corrupt

    def test_save_snapshot_resets_wal(self, store):
        store.append_wal({"version": 1})
        store.save_snapshot({"version": 1})
        assert store.read_wal() == ([], 0)

    def test_wal_round_trip_preserves_order(self, store):
        for version in (1, 2, 3):
            store.append_wal({"version": version})
        records, dropped = store.read_wal()
        assert dropped == 0
        assert [r["version"] for r in records] == [1, 2, 3]

    def test_torn_tail_is_truncated_not_fatal(self, store):
        store.append_wal({"version": 1})
        store.append_wal({"version": 2})
        with open(store.wal_path, "ab") as handle:
            handle.write(b'{"record": {"version": 3')  # crash mid-append
        records, dropped = store.read_wal()
        assert [r["version"] for r in records] == [1, 2]
        assert dropped == 1

    def test_mid_file_corruption_costs_one_record_only(self, store):
        for version in (1, 2, 3):
            store.append_wal({"version": version})
        lines = store.wal_path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # scribble the middle
        store.wal_path.write_text("\n".join(lines) + "\n")
        records, dropped = store.read_wal()
        assert [r["version"] for r in records] == [1, 3]
        assert dropped == 1

    def test_crc_mismatch_line_dropped(self, store):
        store.append_wal({"version": 1})
        line = json.loads(store.wal_path.read_text())
        line["record"]["version"] = 7  # body/CRC disagree
        store.wal_path.write_text(json.dumps(line) + "\n")
        assert store.read_wal() == ([], 1)

    def test_load_skips_records_at_or_below_snapshot_version(self, store):
        store.save_snapshot({"version": 5})
        # A crash between snapshot rename and WAL reset leaves stale lines.
        for version in (4, 5, 6):
            store.append_wal({"version": version})
        recovered = store.load()
        assert [r["version"] for r in recovered.records] == [6]
        assert recovered.latest_record == {"version": 6}

    def test_empty_store_recovers_empty(self, store):
        recovered = store.load()
        assert recovered.empty
        assert recovered == RecoveredState()

    def test_clear_drops_everything(self, store):
        store.save_snapshot({"version": 1})
        store.append_wal({"version": 2})
        store.clear()
        assert store.load().empty


class TestTrackerDurability:
    def test_checkpoint_requires_store(self):
        with pytest.raises(RuntimeError):
            make_tracker().checkpoint()

    def test_restore_on_empty_store_is_noop(self, store):
        tracker = make_tracker(store)
        before = dict(tracker.link_prices)
        assert tracker.restore() is False
        assert tracker.link_prices == before
        assert tracker.version == 0

    def test_kill_and_restart_resumes_exact_iterate(self, store):
        """The acceptance test: same price vector, strictly higher
        version and epoch -- the super-gradient continues, no reset."""
        primary = make_tracker(store)
        drive(primary, iterations=4)
        primary.checkpoint()
        drive(primary, iterations=2, start=20.0)  # land in the WAL only
        before_prices = dict(primary.link_prices)
        before_version, before_epoch = primary.version, primary.epoch

        restarted = make_tracker(StateStore(store.directory))
        assert restarted.restore() is True
        assert restarted.version > before_version
        assert restarted.epoch > before_epoch
        assert restarted.link_prices.keys() == before_prices.keys()
        for key, value in before_prices.items():
            assert restarted.link_prices[key] == pytest.approx(value, abs=1e-12)

    def test_restore_survives_torn_wal_tail(self, store):
        primary = make_tracker(store)
        drive(primary, iterations=3)
        expected = dict(primary.link_prices)
        with open(store.wal_path, "ab") as handle:
            handle.write(b'{"record": {"version": 99')  # crash mid-append
        restarted = make_tracker(StateStore(store.directory))
        assert restarted.restore() is True
        for key, value in expected.items():
            assert restarted.link_prices[key] == pytest.approx(value, abs=1e-12)

    def test_restore_continues_supergradient_not_reconverge(self, store):
        """After restore, the next update moves from the restored iterate:
        the price vector stays off-uniform rather than resetting."""
        primary = make_tracker(store)
        drive(primary, iterations=6)
        converged = np.array(sorted(primary.link_prices.values()))
        restarted = make_tracker(StateStore(store.directory))
        assert restarted.restore()
        drive(restarted, iterations=1, start=100.0)
        after = np.array(sorted(restarted.link_prices.values()))
        fresh = np.array(sorted(make_tracker().link_prices.values()))
        # Closer to the converged iterate than to a cold start.
        assert np.abs(after - converged).sum() < np.abs(after - fresh).sum()

    def test_restore_rejects_wrong_topology(self, store, tmp_path):
        primary = make_tracker(store)
        drive(primary)
        primary.checkpoint()
        raw = json.loads(store.snapshot_path.read_text())
        raw["state"]["topology"] = "not-abilene"
        from repro.core.statestore import _crc

        raw["crc"] = _crc(raw["state"])
        store.snapshot_path.write_text(json.dumps(raw))
        store.reset_wal()  # leave only the mismatched snapshot
        restarted = make_tracker(StateStore(store.directory))
        with pytest.raises(ValueError, match="topology"):
            restarted.restore()

    def test_restore_recheckpoints_immediately(self, store):
        """A crash right after recovery recovers to the same place."""
        primary = make_tracker(store)
        drive(primary, iterations=3)
        first = make_tracker(StateStore(store.directory))
        assert first.restore()
        prices, version = dict(first.link_prices), first.version
        second = make_tracker(StateStore(store.directory))
        assert second.restore()
        assert second.version > version
        for key, value in prices.items():
            assert second.link_prices[key] == pytest.approx(value, abs=1e-12)

    def test_restore_restores_charging_histories(self, store):
        primary = make_tracker(store)
        key = next(iter(primary.topology.links))
        for i in range(3):
            primary.record_interval_volumes(
                {key: 10.0 * (i + 1)}, {key: 2.0 * (i + 1)}
            )
        primary.checkpoint()
        restarted = make_tracker(StateStore(store.directory))
        assert restarted.restore()
        assert restarted._volume_history == primary._volume_history


class TestConfigValidation:
    """Satellite: named errors for invalid ITrackerConfig fields."""

    def test_negative_perturbation_rejected(self):
        with pytest.raises(ValueError, match="perturbation"):
            ITrackerConfig(perturbation=-0.01)

    def test_charging_quantile_bounds(self):
        with pytest.raises(ValueError, match="charging_quantile"):
            ITrackerConfig(charging_quantile=0.0)
        with pytest.raises(ValueError, match="charging_quantile"):
            ITrackerConfig(charging_quantile=1.5)

    def test_valid_boundaries_accepted(self):
        ITrackerConfig(perturbation=0.0, charging_quantile=1.0)
        ITrackerConfig(charging_quantile=0.95)
