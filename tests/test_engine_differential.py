"""Differential harness: scalar vs vectorized flow engines in lockstep.

The oracle implementation lives in :mod:`repro.simulator.differential`
(shared with the scenario fuzzer); this module sweeps it over randomized
schedules so every solve path is covered: the default adaptive policy, a
dirty limit of zero (every solve falls back to the full vector path),
and an unbounded limit (every solve takes the incremental component
path).  Entry-store compaction is reached through the churn the
schedules generate.
"""

import random

import pytest

from repro.simulator.differential import (
    DivergenceError,
    ENGINE_REGIMES,
    random_schedule,
    run_schedule,
    validate_schedule,
)
from repro.simulator.tcp import FlowNetwork, VectorizedFlowNetwork

N_SEEDS = 60
N_EVENTS = 80


def _run_lockstep(seed, regime, n_events=N_EVENTS):
    capacities, ops = random_schedule(seed, n_events=n_events)
    report = run_schedule(capacities, ops, regime=regime, label=f"seed={seed}")
    assert report.steps == n_events
    return report.vector


@pytest.mark.parametrize("regime", sorted(ENGINE_REGIMES))
@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_lockstep_schedule_matches(seed, regime):
    _run_lockstep(seed, regime)


def test_incremental_path_actually_taken():
    """The incremental-only config must not silently full-solve everything."""
    vector = _run_lockstep(1234, "incremental-only", n_events=120)
    assert vector.stats.incremental_solves > 0
    # The full-biased config must exercise the vector full path almost
    # exclusively (a dirty limit of one still admits single-flow
    # components, so a handful of incremental solves are expected).
    vector = _run_lockstep(1234, "full-only", n_events=120)
    assert vector.stats.full_solves > 0
    assert vector.stats.full_solves > 10 * max(vector.stats.incremental_solves, 1)


def test_compaction_exercised_under_churn():
    """Enough churn tombstones half the entry store and triggers compaction."""
    rng = random.Random(99)
    vector = VectorizedFlowNetwork()
    links = [vector.add_link(("l", i), 10.0) for i in range(6)]
    for round_index in range(400):
        flow = vector.start_flow(
            rng.sample(links, 3), 1.0, rate_cap=None
        )
        vector.next_completion()
        vector.abort_flow(flow.flow_id)
    assert vector.stats.compactions > 0


def test_divergence_error_carries_context():
    """A broken vectorized engine is caught with a located, labeled error."""

    class _CapDropping(VectorizedFlowNetwork):
        def start_flow(self, links, size, meta=None, rate_cap=None):
            return super().start_flow(links, size, meta=meta, rate_cap=None)

    capacities = [20.0]
    ops = [
        {"op": "arrive", "links": [0], "size": 4.0, "cap": 1.0},
        {"op": "advance", "idle": None},
    ]
    with pytest.raises(DivergenceError) as excinfo:
        run_schedule(capacities, ops, vector_factory=_CapDropping, label="planted")
    assert "planted" in str(excinfo.value)
    assert excinfo.value.context.startswith("planted step=0")
    assert excinfo.value.detail


def test_malformed_schedules_rejected():
    with pytest.raises(ValueError):
        validate_schedule([], [])
    with pytest.raises(ValueError):
        validate_schedule([5.0], [{"op": "arrive", "links": [3], "size": 1.0}])
    with pytest.raises(ValueError):
        validate_schedule([5.0], [{"op": "arrive", "links": [0], "size": -1.0}])
    with pytest.raises(ValueError):
        validate_schedule([5.0], [{"op": "teleport"}])
    with pytest.raises(ValueError):
        run_schedule([5.0], [], regime="warp-speed")


def test_abort_of_missing_flow_is_a_noop_in_both_engines():
    """Minimized schedules may abort dropped flows; both engines agree."""
    capacities = [10.0]
    ops = [
        {"op": "abort", "flow": 7},
        {"op": "arrive", "links": [0], "size": 2.0, "cap": None},
        {"op": "abort", "flow": 7},
        {"op": "advance", "idle": None},
    ]
    report = run_schedule(capacities, ops)
    assert report.aborts == 2
    assert report.pops == 1


def test_full_solve_bit_identical_to_scalar():
    """The whole-network vector solve reproduces scalar rates *bit for bit*.

    The experiment harness depends on this: selecting the vectorized
    engine must not perturb any figure derived from a full-solve run.
    """
    rng = random.Random(7)
    scalar = FlowNetwork()
    vector = VectorizedFlowNetwork(dirty_flow_floor=1, dirty_flow_fraction=0.0)
    for index in range(10):
        capacity = rng.uniform(2.0, 40.0)
        scalar.add_link(("l", index), capacity)
        vector.add_link(("l", index), capacity)
    for step in range(60):
        links = rng.sample(range(10), rng.randint(1, 4))
        cap = rng.uniform(1.0, 20.0) if rng.random() < 0.5 else None
        size = rng.uniform(1.0, 5.0)
        scalar.start_flow(links, size, rate_cap=cap)
        vector.start_flow(links, size, rate_cap=cap)
    scalar.next_completion()
    vector.next_completion()
    scalar._flush()
    vector._flush()
    s_rates = {f.flow_id: f.rate for f in scalar.flows()}
    for v_flow in vector.flows():
        assert v_flow.rate == s_rates[v_flow.flow_id]  # exact, no tolerance
