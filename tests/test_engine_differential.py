"""Differential harness: scalar vs vectorized flow engines in lockstep.

Both engines receive the identical randomized event schedule -- flow
arrivals (including linkless and rate-capped flows), completions popped at
the quantized next-completion time, mid-flight aborts, and idle clock
advances -- and after every event the full observable state is compared:
per-flow rates and remaining sizes, next completion time, pop order, and
per-link utilization.

Three vectorized configurations are exercised so every solve path is
covered: the default adaptive policy, a dirty limit of zero (every solve
falls back to the full vector path), and an unbounded limit (every solve
takes the incremental component path).  Entry-store compaction is reached
through the churn the schedules generate.
"""

import random

import numpy as np
import pytest

from repro.simulator.tcp import FlowNetwork, VectorizedFlowNetwork

# (label, constructor kwargs): each forces one solve regime.
CONFIGS = {
    "adaptive": {},
    "full-only": {"dirty_flow_floor": 1, "dirty_flow_fraction": 0.0},
    "incremental-only": {"dirty_flow_floor": 10**9},
}

N_SEEDS = 60
N_EVENTS = 80


def _build_pair(rng, config_kwargs):
    scalar = FlowNetwork()
    vector = VectorizedFlowNetwork(**config_kwargs)
    n_links = rng.randint(3, 12)
    for index in range(n_links):
        capacity = rng.uniform(1.0, 50.0)
        assert scalar.add_link(("l", index), capacity) == index
        assert vector.add_link(("l", index), capacity) == index
    return scalar, vector, n_links


def _assert_state_matches(scalar, vector, context):
    assert scalar.n_flows == vector.n_flows, context
    s_flows = {f.flow_id: f for f in scalar.flows()}
    v_flows = {f.flow_id: f for f in vector.flows()}
    assert s_flows.keys() == v_flows.keys(), context
    # Identical iteration order (ascending flow id in both engines).
    assert [f.flow_id for f in scalar.flows()] == [
        f.flow_id for f in vector.flows()
    ], context
    s_next = scalar.next_completion()
    v_next = vector.next_completion()
    if s_next is None:
        assert v_next is None, context
    else:
        assert v_next == pytest.approx(s_next, rel=1e-9, abs=1e-9), context
    # next_completion() forced a solve in both engines: flow objects carry
    # fresh rates after the flush below.
    for flow_id, s_flow in s_flows.items():
        v_flow = v_flows[flow_id]
        if np.isinf(s_flow.rate_cap):
            assert np.isinf(v_flow.rate_cap), context
        else:
            assert v_flow.rate_cap == s_flow.rate_cap, context


def _assert_rates_match(scalar, vector, context):
    scalar.next_completion()  # force solve
    vector.next_completion()
    scalar._flush()
    vector._flush()
    s_rates = {f.flow_id: f.rate for f in scalar.flows()}
    for v_flow in vector.flows():
        s_rate = s_rates[v_flow.flow_id]
        if np.isinf(s_rate):
            assert np.isinf(v_flow.rate), context
        else:
            assert v_flow.rate == pytest.approx(
                s_rate, rel=1e-9, abs=1e-12
            ), context
    for index in range(scalar.n_links):
        assert vector.utilization(index) == pytest.approx(
            scalar.utilization(index), rel=1e-9, abs=1e-12
        ), context


def _run_lockstep(seed, config_kwargs, n_events=N_EVENTS):
    rng = random.Random(seed)
    scalar, vector, n_links = _build_pair(rng, config_kwargs)
    now = 0.0
    live = []
    solved_events = 0
    for step in range(n_events):
        context = f"seed={seed} step={step} t={now:.6f}"
        action = rng.random()
        if action < 0.55 or not live:
            # Arrival: random link subset; occasionally linkless; half capped.
            k = rng.randint(0, min(4, n_links))
            links = rng.sample(range(n_links), k)
            size = rng.uniform(0.5, 8.0)
            cap = rng.uniform(0.5, 30.0) if rng.random() < 0.5 else None
            s_flow = scalar.start_flow(links, size, meta=("m", step), rate_cap=cap)
            v_flow = vector.start_flow(links, size, meta=("m", step), rate_cap=cap)
            assert v_flow.flow_id == s_flow.flow_id, context
            live.append(s_flow.flow_id)
        elif action < 0.70 and live:
            victim = rng.choice(live)
            s_gone = scalar.abort_flow(victim)
            v_gone = vector.abort_flow(victim)
            assert (s_gone is None) == (v_gone is None), context
            if s_gone is not None:
                assert v_gone.flow_id == s_gone.flow_id, context
                assert v_gone.remaining_mbit == pytest.approx(
                    s_gone.remaining_mbit, rel=1e-9, abs=1e-9
                ), context
            live.remove(victim)
        else:
            # Advance to the next completion (or a random idle step) and pop.
            target = scalar.next_completion()
            if target is None or rng.random() < 0.2:
                target = now + rng.uniform(0.0, 1.0)
            target = max(target, now)
            scalar.advance(target)
            vector.advance(target)
            now = target
            s_done = scalar.pop_finished()
            v_done = vector.pop_finished()
            assert [f.flow_id for f in v_done] == [
                f.flow_id for f in s_done
            ], context
            for popped in s_done:
                live.remove(popped.flow_id)
        _assert_rates_match(scalar, vector, context)
        _assert_state_matches(scalar, vector, context)
        solved_events += 1
    assert solved_events == n_events
    return vector


@pytest.mark.parametrize("config", sorted(CONFIGS))
@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_lockstep_schedule_matches(seed, config):
    _run_lockstep(seed, CONFIGS[config])


def test_incremental_path_actually_taken():
    """The incremental-only config must not silently full-solve everything."""
    vector = _run_lockstep(1234, CONFIGS["incremental-only"], n_events=120)
    assert vector.stats.incremental_solves > 0
    # The full-biased config must exercise the vector full path almost
    # exclusively (a dirty limit of one still admits single-flow
    # components, so a handful of incremental solves are expected).
    vector = _run_lockstep(1234, CONFIGS["full-only"], n_events=120)
    assert vector.stats.full_solves > 0
    assert vector.stats.full_solves > 10 * max(vector.stats.incremental_solves, 1)


def test_compaction_exercised_under_churn():
    """Enough churn tombstones half the entry store and triggers compaction."""
    rng = random.Random(99)
    vector = VectorizedFlowNetwork()
    links = [vector.add_link(("l", i), 10.0) for i in range(6)]
    for round_index in range(400):
        flow = vector.start_flow(
            rng.sample(links, 3), 1.0, rate_cap=None
        )
        vector.next_completion()
        vector.abort_flow(flow.flow_id)
    assert vector.stats.compactions > 0


def test_full_solve_bit_identical_to_scalar():
    """The whole-network vector solve reproduces scalar rates *bit for bit*.

    The experiment harness depends on this: selecting the vectorized
    engine must not perturb any figure derived from a full-solve run.
    """
    rng = random.Random(7)
    scalar = FlowNetwork()
    vector = VectorizedFlowNetwork(dirty_flow_floor=1, dirty_flow_fraction=0.0)
    for index in range(10):
        capacity = rng.uniform(2.0, 40.0)
        scalar.add_link(("l", index), capacity)
        vector.add_link(("l", index), capacity)
    for step in range(60):
        links = rng.sample(range(10), rng.randint(1, 4))
        cap = rng.uniform(1.0, 20.0) if rng.random() < 0.5 else None
        size = rng.uniform(1.0, 5.0)
        scalar.start_flow(links, size, rate_cap=cap)
        vector.start_flow(links, size, rate_cap=cap)
    scalar.next_completion()
    vector.next_completion()
    scalar._flush()
    vector._flush()
    s_rates = {f.flow_id: f.rate for f in scalar.flows()}
    for v_flow in vector.flows():
        assert v_flow.rate == s_rates[v_flow.flow_id]  # exact, no tolerance
