"""Property tests for routing: cross-checked against networkx Dijkstra."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.routing import RoutingTable
from repro.network.topology import Topology


def random_topology(n_nodes: int, edge_fraction: float, seed: int) -> Topology:
    """Connected random topology with random positive OSPF weights."""
    rng = random.Random(seed)
    topo = Topology(name=f"rand-{seed}")
    pids = [f"N{i:02d}" for i in range(n_nodes)]
    for pid in pids:
        topo.add_pid(pid)
    # Spanning chain guarantees connectivity; extra random edges densify.
    for a, b in zip(pids, pids[1:]):
        topo.add_edge(a, b, capacity=10.0, ospf_weight=rng.uniform(1.0, 10.0))
    for i in range(n_nodes):
        for j in range(i + 2, n_nodes):
            if rng.random() < edge_fraction:
                topo.add_edge(
                    pids[i], pids[j], capacity=10.0, ospf_weight=rng.uniform(1.0, 10.0)
                )
    return topo


def to_networkx(topo: Topology) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(topo.pids)
    for link in topo.links.values():
        graph.add_edge(link.src, link.dst, weight=link.ospf_weight)
    return graph


class TestAgainstNetworkx:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=3, max_value=14),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_shortest_path_costs_match(self, n_nodes, edge_fraction, seed):
        topo = random_topology(n_nodes, edge_fraction, seed)
        table = RoutingTable.build(topo)
        graph = to_networkx(topo)
        lengths = dict(nx.all_pairs_dijkstra_path_length(graph))
        for src in topo.pids:
            for dst in topo.pids:
                ours = sum(
                    topo.links[key].ospf_weight for key in table.route(src, dst)
                )
                assert ours == pytest.approx(lengths[src][dst], rel=1e-9, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=3, max_value=12),
        st.floats(min_value=0.0, max_value=0.4),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_routes_are_contiguous_simple_paths(self, n_nodes, edge_fraction, seed):
        topo = random_topology(n_nodes, edge_fraction, seed)
        table = RoutingTable.build(topo)
        for src in topo.pids:
            for dst in topo.pids:
                if src == dst:
                    continue
                route = table.route(src, dst)
                assert route[0][0] == src
                assert route[-1][1] == dst
                for hop, nxt in zip(route, route[1:]):
                    assert hop[1] == nxt[0]
                visited = [src] + [hop[1] for hop in route]
                assert len(visited) == len(set(visited))

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_distance_symmetric_on_symmetric_weights(self, n_nodes, seed):
        topo = random_topology(n_nodes, 0.3, seed)
        table = RoutingTable.build(topo)
        for src in topo.pids:
            for dst in topo.pids:
                forward = sum(
                    topo.links[key].ospf_weight for key in table.route(src, dst)
                )
                backward = sum(
                    topo.links[key].ospf_weight for key in table.route(dst, src)
                )
                assert forward == pytest.approx(backward)
