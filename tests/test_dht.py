"""Tests for the Kademlia DHT and trackerless P4P discovery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apptracker.selection import PeerInfo
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.dht.kademlia import (
    Contact,
    DhtNetwork,
    DhtNode,
    KBucket,
    bucket_index,
    build_network,
    infohash,
    node_id_from,
    xor_distance,
)
from repro.dht.trackerless import (
    TrackerlessSelector,
    TrackerlessSwarm,
    itracker_view_fetcher,
)
from repro.network.library import abilene


class TestIdsAndMetric:
    def test_id_is_deterministic_160_bit(self):
        a = node_id_from("node-1")
        assert a == node_id_from("node-1")
        assert 0 <= a < (1 << 160)

    def test_xor_metric_axioms(self):
        a, b = node_id_from("a"), node_id_from("b")
        assert xor_distance(a, a) == 0
        assert xor_distance(a, b) == xor_distance(b, a)

    @settings(max_examples=50)
    @given(st.text(min_size=1, max_size=8), st.text(min_size=1, max_size=8), st.text(min_size=1, max_size=8))
    def test_xor_triangle_inequality_weak_form(self, x, y, z):
        # XOR metric satisfies d(a,c) <= d(a,b) XOR-relaxed triangle:
        # d(a,c) <= d(a,b) + d(b,c).
        a, b, c = node_id_from(x), node_id_from(y), node_id_from(z)
        assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)

    def test_bucket_index_range(self):
        a, b = node_id_from("p"), node_id_from("q")
        assert 0 <= bucket_index(a, b) < 160

    def test_self_bucket_rejected(self):
        a = node_id_from("p")
        with pytest.raises(ValueError):
            bucket_index(a, a)


class TestKBucket:
    def test_insert_until_full(self):
        bucket = KBucket(k=3)
        for i in range(3):
            bucket.update(Contact(node_id=i, name=f"n{i}"))
        assert len(bucket) == 3

    def test_resighting_moves_to_tail(self):
        bucket = KBucket(k=3)
        for i in range(3):
            bucket.update(Contact(node_id=i, name=f"n{i}"))
        bucket.update(Contact(node_id=0, name="n0"))
        assert bucket.contacts()[-1].node_id == 0

    def test_full_bucket_keeps_live_head(self):
        bucket = KBucket(k=2)
        bucket.update(Contact(node_id=1, name="old"))
        bucket.update(Contact(node_id=2, name="older"))
        bucket.update(Contact(node_id=3, name="new"), alive_check=lambda c: True)
        ids = [c.node_id for c in bucket.contacts()]
        assert 3 not in ids  # newcomer dropped, long-lived kept

    def test_full_bucket_evicts_dead_head(self):
        bucket = KBucket(k=2)
        bucket.update(Contact(node_id=1, name="dead"))
        bucket.update(Contact(node_id=2, name="live"))
        bucket.update(Contact(node_id=3, name="new"), alive_check=lambda c: c.node_id != 1)
        ids = [c.node_id for c in bucket.contacts()]
        assert 1 not in ids and 3 in ids


class TestDhtNetwork:
    def test_build_connects_everyone(self):
        network, nodes = build_network([f"n{i}" for i in range(25)])
        assert len(network) == 25
        # Every node can locate the k closest to an arbitrary target.
        target = node_id_from("some-content")
        for node in nodes[:5]:
            found = node.iterative_find_node(target)
            assert found

    def test_lookup_finds_globally_closest(self):
        network, nodes = build_network([f"n{i}" for i in range(40)], k=8)
        target = node_id_from("target-key")
        truth = sorted(nodes, key=lambda n: xor_distance(n.node_id, target))
        truth_ids = {n.node_id for n in truth[:4]}
        found = {c.node_id for c in nodes[0].iterative_find_node(target)}
        # The iterative lookup recovers (at least most of) the true top-k.
        assert len(truth_ids & found) >= 3

    def test_announce_and_get_peers(self):
        _, nodes = build_network([f"n{i}" for i in range(20)])
        key = infohash("file")
        nodes[2].announce(key, 2, "record-2")
        nodes[9].announce(key, 9, "record-9")
        values = set(nodes[15].get_peers(key))
        assert values == {"record-2", "record-9"}

    def test_records_survive_some_churn(self):
        _, nodes = build_network([f"n{i}" for i in range(30)], k=8)
        key = infohash("resilient")
        nodes[1].announce(key, 1, "the-record")
        # Kill a third of the network (not the announcer).
        for node in nodes[10:20]:
            node.leave()
        assert "the-record" in nodes[25].get_peers(key)

    def test_forget_withdraws_record(self):
        _, nodes = build_network([f"n{i}" for i in range(20)])
        key = infohash("gone")
        nodes[3].announce(key, 3, "temp")
        nodes[3].forget(key, 3)
        assert "temp" not in nodes[11].get_peers(key)

    def test_duplicate_node_id_rejected(self):
        network = DhtNetwork()
        DhtNode(network, "same")
        with pytest.raises(ValueError):
            DhtNode(network, "same")

    def test_validation(self):
        with pytest.raises(ValueError):
            DhtNetwork(k=0)
        with pytest.raises(ValueError):
            build_network([])


class TestTrackerlessSwarm:
    def make_swarm(self, n=20):
        network, nodes = build_network([f"dht-{i}" for i in range(n)])
        swarm = TrackerlessSwarm(network=network, content="movie.mkv")
        return swarm, nodes

    def test_join_and_discover(self):
        swarm, nodes = self.make_swarm()
        peer = PeerInfo(peer_id=7, pid="SEAT", as_number=1)
        swarm.join(peer, nodes[7])
        found = swarm.discover(nodes[3])
        assert peer in found

    def test_leave_withdraws(self):
        swarm, nodes = self.make_swarm()
        peer = PeerInfo(peer_id=7, pid="SEAT", as_number=1)
        swarm.join(peer, nodes[7])
        swarm.leave(7)
        assert peer not in swarm.discover(nodes[3])


class TestTrackerlessSelector:
    def build(self):
        topo = abilene()
        as_number = topo.node("SEAT").as_number
        itracker = ITracker(
            topology=topo, config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        network, nodes = build_network([f"dht-{i}" for i in range(25)])
        swarm = TrackerlessSwarm(network=network, content="content")
        members = []
        home = {}
        pids = ["SEAT", "SEAT", "SEAT", "NYCM", "CHIN", "LOSA", "WASH", "ATLA"]
        for index, pid in enumerate(pids):
            info = PeerInfo(peer_id=index, pid=pid, as_number=as_number)
            members.append(info)
            home[index] = nodes[index]
            swarm.join(info, nodes[index])
        selector = TrackerlessSelector(
            swarm=swarm,
            home_nodes=home,
            fetch_view=itracker_view_fetcher({as_number: itracker}),
        )
        return selector, members, as_number

    def test_selects_via_dht_and_itracker(self):
        selector, members, as_number = self.build()
        client = members[0]
        candidates = members[1:]
        chosen = selector.select(client, candidates, 4, random.Random(0))
        assert len(chosen) == 4
        # Staged selection: same-PID peers favored first.
        same_pid = sum(1 for peer in chosen if peer.pid == client.pid)
        assert same_pid >= 2

    def test_departed_records_filtered_by_candidates(self):
        selector, members, _ = self.build()
        client = members[0]
        # Peer 5 departed: tracker-side candidates exclude it even though
        # its DHT record may linger.
        candidates = [peer for peer in members[1:] if peer.peer_id != 5]
        chosen = selector.select(client, candidates, 6, random.Random(1))
        assert all(peer.peer_id != 5 for peer in chosen)

    def test_portal_failure_falls_back_to_random(self):
        selector, members, _ = self.build()

        def broken_fetch(as_number, pids):
            raise ConnectionError("portal down")

        selector.fetch_view = broken_fetch
        chosen = selector.select(members[0], members[1:], 3, random.Random(2))
        assert len(chosen) == 3

    def test_client_without_dht_node_uses_candidates(self):
        selector, members, _ = self.build()
        stranger = PeerInfo(peer_id=999, pid="SEAT", as_number=members[0].as_number)
        chosen = selector.select(stranger, members, 3, random.Random(3))
        assert len(chosen) == 3
