"""Tests for the BitTorrent swarm simulation."""

import random

import pytest

from repro.apptracker.selection import PeerInfo, RandomSelection
from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.simulator.swarm import SwarmConfig, SwarmSimulation
from repro.workloads.placement import place_peers


def tiny_topology():
    topo = Topology(name="pair")
    topo.add_pid("L")
    topo.add_pid("R")
    topo.add_edge("L", "R", capacity=1000.0)
    return topo


def build_sim(
    n_peers=10,
    topo=None,
    config=None,
    selector=None,
    seed_pid=None,
    **sim_kwargs,
):
    topo = topo or abilene()
    routing = RoutingTable.build(topo)
    rng = random.Random(42)
    peers = place_peers(topo, n_peers, rng, first_id=1)
    seed_pid = seed_pid or topo.aggregation_pids[0]
    seeds = [PeerInfo(peer_id=0, pid=seed_pid, as_number=topo.node(seed_pid).as_number)]
    config = config or SwarmConfig(
        file_mbit=16.0,
        block_mbit=2.0,
        neighbors=6,
        join_window=10.0,
        access_up_mbps=10.0,
        access_down_mbps=20.0,
        seed_up_mbps=50.0,
        completion_quantum=0.05,
        rng_seed=7,
    )
    return SwarmSimulation(
        topo, routing, config, selector or RandomSelection(), peers, seeds, **sim_kwargs
    )


class TestConfig:
    def test_n_blocks(self):
        assert SwarmConfig(file_mbit=96.0, block_mbit=2.0).n_blocks == 48

    def test_validation(self):
        with pytest.raises(ValueError):
            SwarmConfig(file_mbit=0.0)
        with pytest.raises(ValueError):
            SwarmConfig(block_mbit=200.0, file_mbit=100.0)
        with pytest.raises(ValueError):
            SwarmConfig(neighbors=0)
        with pytest.raises(ValueError):
            SwarmConfig(upload_slots=0)
        with pytest.raises(ValueError):
            SwarmConfig(completion_quantum=-1.0)


class TestSwarmCompletion:
    def test_all_peers_complete(self):
        sim = build_sim(n_peers=12)
        result = sim.run(until=5000.0)
        assert len(result.completion_times) == 12
        assert all(t > 0 for t in result.completion_times.values())

    def test_deterministic_for_seed(self):
        result_a = build_sim(n_peers=8).run(until=5000.0)
        result_b = build_sim(n_peers=8).run(until=5000.0)
        assert result_a.completion_times == result_b.completion_times

    def test_download_time_bounded_below_by_access(self):
        """No peer finishes faster than its download link allows."""
        sim = build_sim(n_peers=8)
        result = sim.run(until=5000.0)
        floor = 16.0 / 20.0  # file_mbit / access_down_mbps
        assert all(t >= floor - 1e-6 for t in result.completion_times.values())

    def test_completion_cdf_monotone(self):
        result = build_sim(n_peers=10).run(until=5000.0)
        cdf = result.completion_cdf()
        times = [t for t, _ in cdf]
        fractions = [f for _, f in cdf]
        assert times == sorted(times)
        assert fractions[-1] == pytest.approx(1.0)

    def test_single_peer_with_seed(self):
        sim = build_sim(n_peers=1, topo=tiny_topology(), seed_pid="L")
        result = sim.run(until=5000.0)
        assert len(result.completion_times) == 1


class TestTrafficAccounting:
    def test_backbone_traffic_recorded(self):
        result = build_sim(n_peers=10).run(until=5000.0)
        assert sum(result.link_traffic_mbit.values()) > 0

    def test_same_pid_swarm_has_no_backbone_traffic(self):
        topo = tiny_topology()
        routing = RoutingTable.build(topo)
        peers = [PeerInfo(peer_id=i, pid="L", as_number=0) for i in range(1, 6)]
        seeds = [PeerInfo(peer_id=0, pid="L", as_number=0)]
        config = SwarmConfig(
            file_mbit=8.0, block_mbit=2.0, neighbors=5, join_window=1.0,
            completion_quantum=0.05, rng_seed=1,
        )
        sim = SwarmSimulation(topo, routing, config, RandomSelection(), peers, seeds)
        result = sim.run(until=1000.0)
        assert len(result.completion_times) == 5
        assert sum(result.link_traffic_mbit.values()) == pytest.approx(0.0)

    def test_transfer_listener_sees_all_payload(self):
        volume = []
        sim = build_sim(
            n_peers=6,
            transfer_listener=lambda u, d, mbit: volume.append(mbit),
        )
        result = sim.run(until=5000.0)
        # Every downloaded block is reported: peers * n_blocks.
        assert sum(volume) == pytest.approx(6 * 16.0)

    def test_samples_collected(self):
        config = SwarmConfig(
            file_mbit=16.0, block_mbit=2.0, neighbors=6, join_window=10.0,
            access_up_mbps=10.0, access_down_mbps=20.0, seed_up_mbps=50.0,
            completion_quantum=0.05, sample_interval=0.2, rng_seed=7,
        )
        result = build_sim(n_peers=8, config=config).run(until=5000.0)
        assert result.samples
        assert all(0 <= s.max_utilization for s in result.samples)


class TestChurn:
    def test_explicit_join_times(self):
        join_times = {i: float(i) for i in range(1, 7)}
        sim = build_sim(n_peers=6, join_times=join_times)
        result = sim.run(until=5000.0)
        # finish_at - completion_times == join time
        for peer_id in result.completion_times:
            join = result.finish_at[peer_id] - result.completion_times[peer_id]
            assert join == pytest.approx(join_times[peer_id])

    def test_departed_peer_has_no_completion(self):
        sim = build_sim(n_peers=6)
        sim.engine.schedule(0.5, lambda: sim.depart(3))
        result = sim.run(until=5000.0)
        assert 3 not in result.completion_times
        assert len(result.completion_times) == 5

    def test_linger_departure_after_completion(self):
        sim = build_sim(n_peers=6, linger_time=5.0)
        result = sim.run(until=5000.0)
        assert len(result.completion_times) == 6
        # All non-seed peers eventually departed.
        assert all(
            peer.departed for peer in sim.peers.values() if not peer.is_seed
        )

    def test_access_overrides_respected(self):
        # Give one peer a crippled download link; it must be the slowest.
        overrides = {1: (10.0, 0.5)}
        sim = build_sim(n_peers=8, access_overrides=overrides)
        result = sim.run(until=10000.0)
        slowest = max(result.completion_times, key=result.completion_times.get)
        assert slowest == 1

    def test_swarm_size_timeline_tracks_members(self):
        join_times = {i: 10.0 * i for i in range(1, 5)}
        config = SwarmConfig(
            file_mbit=8.0, block_mbit=2.0, neighbors=4, sample_interval=5.0,
            completion_quantum=0.05, rng_seed=2, access_up_mbps=10.0,
            access_down_mbps=20.0, seed_up_mbps=50.0,
        )
        sim = build_sim(n_peers=4, config=config, join_times=join_times)
        result = sim.run(until=200.0)
        sizes = {s.time: s.swarm_size for s in result.samples}
        assert max(sizes.values()) <= 4
        assert max(sizes.values()) >= 1


class TestTrackerHook:
    def test_hook_called_periodically(self):
        calls = []
        config = SwarmConfig(
            file_mbit=16.0, block_mbit=2.0, neighbors=6, join_window=10.0,
            access_up_mbps=5.0, access_down_mbps=10.0, seed_up_mbps=20.0,
            tracker_update_interval=2.0, completion_quantum=0.05, rng_seed=7,
        )
        sim = build_sim(
            n_peers=8,
            config=config,
            tracker_hook=lambda now, traffic, rates: calls.append(now),
        )
        sim.run(until=5000.0)
        assert len(calls) >= 2
        assert calls == sorted(calls)

    def test_hook_rates_nonnegative(self):
        rates_seen = []
        sim = build_sim(
            n_peers=8,
            tracker_hook=lambda now, traffic, rates: rates_seen.append(rates),
        )
        sim.run(until=5000.0)
        for rates in rates_seen:
            assert all(rate >= 0 for rate in rates.values())


class TestValidation:
    def test_needs_peers(self):
        topo = tiny_topology()
        routing = RoutingTable.build(topo)
        seeds = [PeerInfo(peer_id=0, pid="L", as_number=0)]
        with pytest.raises(ValueError):
            SwarmSimulation(topo, routing, SwarmConfig(), RandomSelection(), [], seeds)

    def test_needs_seed(self):
        topo = tiny_topology()
        routing = RoutingTable.build(topo)
        peers = [PeerInfo(peer_id=1, pid="L", as_number=0)]
        with pytest.raises(ValueError):
            SwarmSimulation(topo, routing, SwarmConfig(), RandomSelection(), peers, [])

    def test_unknown_pid_rejected(self):
        topo = tiny_topology()
        routing = RoutingTable.build(topo)
        peers = [PeerInfo(peer_id=1, pid="NOPE", as_number=0)]
        seeds = [PeerInfo(peer_id=0, pid="L", as_number=0)]
        with pytest.raises(KeyError):
            SwarmSimulation(topo, routing, SwarmConfig(), RandomSelection(), peers, seeds)

    def test_duplicate_peer_id_rejected(self):
        topo = tiny_topology()
        routing = RoutingTable.build(topo)
        peers = [
            PeerInfo(peer_id=1, pid="L", as_number=0),
            PeerInfo(peer_id=1, pid="R", as_number=0),
        ]
        seeds = [PeerInfo(peer_id=0, pid="L", as_number=0)]
        with pytest.raises(ValueError):
            SwarmSimulation(topo, routing, SwarmConfig(), RandomSelection(), peers, seeds)
