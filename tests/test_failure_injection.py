"""Failure-injection tests: the robustness promises of Sec. 8.

"iTrackers are not on the critical path. Thus, if iTrackers are down, P2P
applications can still make default application decisions."  These tests
break each dependency mid-run and assert the swarm completes anyway.
"""

import random

import pytest

from repro.apptracker.selection import P4PSelection, PeerInfo, RandomSelection
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.portal.client import PortalClient, PortalClientError
from repro.portal.server import PortalServer
from repro.simulator.swarm import SwarmConfig, SwarmSimulation
from repro.workloads.placement import place_peers


def quick_config(**kwargs):
    defaults = dict(
        file_mbit=16.0, block_mbit=2.0, neighbors=6, join_window=10.0,
        access_up_mbps=10.0, access_down_mbps=20.0, seed_up_mbps=50.0,
        completion_quantum=0.05, rng_seed=5,
    )
    defaults.update(kwargs)
    return SwarmConfig(**defaults)


def build_swarm(topo, routing, selector, n_peers=12, **sim_kwargs):
    peers = place_peers(topo, n_peers, random.Random(3), first_id=1)
    seed = PeerInfo(peer_id=0, pid="CHIN", as_number=topo.node("CHIN").as_number)
    return SwarmSimulation(
        topo, routing, quick_config(), selector, peers, [seed], **sim_kwargs
    )


class TestTrackerHookFailures:
    def test_crashing_hook_does_not_kill_swarm(self):
        topo = abilene()
        routing = RoutingTable.build(topo)

        def exploding_hook(now, traffic, rates):
            raise RuntimeError("iTracker fell over")

        sim = build_swarm(topo, routing, RandomSelection(), tracker_hook=exploding_hook)
        result = sim.run(until=5000.0)
        assert len(result.completion_times) == 12
        assert result.tracker_hook_failures >= 0  # recorded, not raised

    def test_hook_failure_counter_increments(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        config = quick_config(
            tracker_update_interval=0.5, access_up_mbps=2.0, access_down_mbps=4.0
        )
        peers = place_peers(topo, 10, random.Random(3), first_id=1)
        seed = PeerInfo(peer_id=0, pid="CHIN", as_number=0)

        def exploding_hook(now, traffic, rates):
            raise RuntimeError("boom")

        sim = SwarmSimulation(
            topo, routing, config, RandomSelection(), peers, [seed],
            tracker_hook=exploding_hook,
        )
        result = sim.run(until=5000.0)
        assert result.tracker_hook_failures > 0


class TestPortalOutage:
    def test_client_raises_but_cached_view_survives(self):
        itracker = ITracker(
            topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        server = PortalServer(itracker)
        host, port = server.address
        client = PortalClient(host, port)
        view = client.get_pdistances()
        server.close()
        client.close()
        # The portal is dead: new connections fail...
        with pytest.raises((PortalClientError, OSError)):
            PortalClient(host, port).get_version()
        # ...but the cached view still answers locally.
        assert view.distance("SEAT", "NYCM") > 0

    def test_swarm_runs_on_stale_view_after_outage(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        itracker = ITracker(
            topology=topo, config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        server = PortalServer(itracker)
        with PortalClient(*server.address) as client:
            view = client.get_pdistances()
        server.close()  # portal gone before the swarm even starts
        selector = P4PSelection(
            pdistances={topo.node("SEAT").as_number: view}
        )
        result = build_swarm(topo, routing, selector).run(until=5000.0)
        assert len(result.completion_times) == 12


class TestSeedLoss:
    def test_seed_departure_before_dissemination_stalls_safely(self):
        """Losing the only seed must end the run, not hang it."""
        topo = abilene()
        routing = RoutingTable.build(topo)
        config = quick_config(access_up_mbps=0.5, access_down_mbps=1.0, seed_up_mbps=0.5)
        peers = place_peers(topo, 6, random.Random(9), first_id=1)
        seed = PeerInfo(peer_id=0, pid="CHIN", as_number=0)
        sim = SwarmSimulation(topo, routing, config, RandomSelection(), peers, [seed])
        sim.engine.schedule(1.0, lambda: sim.depart(0))
        result = sim.run(until=4000.0)
        # Not everyone finishes (blocks lost with the seed), but the
        # simulation terminates and reports what did finish.
        assert len(result.completion_times) < len(peers)
        assert result.duration <= 4000.0 + 1e-6

    def test_seed_departure_after_dissemination_is_survivable(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        config = quick_config()
        peers = place_peers(topo, 10, random.Random(9), first_id=1)
        seed = PeerInfo(peer_id=0, pid="CHIN", as_number=0)
        sim = SwarmSimulation(topo, routing, config, RandomSelection(), peers, [seed])
        sim.engine.schedule(30.0, lambda: sim.depart(0))
        result = sim.run(until=10000.0)
        # By t=30 the content is fully replicated among peers.
        assert len(result.completion_times) >= 8


class TestUnknownAsFallback:
    def test_p4p_selector_serves_unknown_as_randomly(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        # Selector has views for AS 1 only; clients are in AS 11537.
        selector = P4PSelection(pdistances={})
        result = build_swarm(topo, routing, selector).run(until=5000.0)
        assert len(result.completion_times) == 12
