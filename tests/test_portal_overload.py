"""Socket-level tests for overload control on both portal transports.

Admission shedding, deadline enforcement, brownout degradation,
connection governance, graceful drain, and close-leak accounting, all
against live servers over real sockets.  The pure state-machine tests
live in ``tests/test_overload.py``.
"""

import socket
import threading
import time

import pytest

from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.pdistance import uniform_pid_map
from repro.network.library import abilene
from repro.observability import Telemetry
from repro.portal import protocol
from repro.portal.client import (
    PortalBusyError,
    PortalClient,
    PortalDeadlineExceededError,
)
from repro.portal.overload import (
    STATE_DRAINING,
    OverloadConfig,
    DEFAULT_BROWNOUT_METHODS,
)
from repro.portal.replication import graceful_handoff
from repro.portal.server import PortalServer
from repro.portal.aserver import AsyncPortalServer


def make_itracker(
    slow_views: float = 0.0, mode: PriceMode = PriceMode.HOP_COUNT
) -> ITracker:
    topo = abilene()

    class SlowITracker(ITracker):
        def get_pdistances(self, pids=None):
            if slow_views:
                time.sleep(slow_views)
            return super().get_pdistances(pids=pids)

    return SlowITracker(
        topology=topo,
        config=ITrackerConfig(mode=mode),
        pid_map=uniform_pid_map(topo),
    )


def raw_request(address, message, sock=None):
    """Send one frame, return (response, socket)."""
    if sock is None:
        sock = socket.create_connection(address, timeout=5.0)
    sock.sendall(protocol.encode_frame(message))
    return protocol.read_frame(sock), sock


@pytest.mark.timeout(30)
class TestThreadedAdmission:
    def test_busy_frame_when_the_slot_wait_exceeds_the_bound(self):
        config = OverloadConfig(
            enabled=True,
            inflight_budget=1,
            queue_budget=4,
            max_queue_delay=0.15,
            retry_after=0.25,
        )
        telemetry = Telemetry()
        with PortalServer(
            make_itracker(slow_views=0.8), telemetry=telemetry, overload=config
        ) as server:
            slow_done = threading.Event()

            def occupy_slot():
                with PortalClient(*server.address) as slow:
                    slow.get_pdistances()
                slow_done.set()

            occupier = threading.Thread(target=occupy_slot)
            occupier.start()
            time.sleep(0.2)  # let the slow request claim the single slot
            with PortalClient(*server.address) as client:
                with pytest.raises(PortalBusyError) as excinfo:
                    client.get_version()
            # The structured hint: shed-queue doubles the base hint.
            assert excinfo.value.retry_after == pytest.approx(0.5)
            slow_done.wait(timeout=5.0)
            occupier.join(timeout=5.0)
            registry = telemetry.registry
            sheds = registry.counter(
                "p4p_portal_admission_total", "", ("outcome",)
            ).labels(outcome="shed_queue")
            assert sheds.value >= 1

    def test_admission_disabled_config_changes_nothing(self):
        with PortalServer(make_itracker()) as server:
            with PortalClient(*server.address) as client:
                assert client.get_version() >= 0


@pytest.mark.timeout(30)
class TestDeadlines:
    def test_server_abandons_work_past_its_deadline(self):
        config = OverloadConfig(
            enabled=True,
            inflight_budget=1,
            queue_budget=4,
            max_queue_delay=1.0,
        )
        with PortalServer(
            make_itracker(slow_views=0.6), overload=config
        ) as server:

            def occupy_slot():
                with PortalClient(*server.address) as slow:
                    slow.get_pdistances()

            occupier = threading.Thread(target=occupy_slot)
            occupier.start()
            time.sleep(0.2)
            # This request waits ~0.4s for the slot -- far past its own
            # 50ms budget -- so dispatch must abandon it, not serve it.
            with PortalClient(*server.address, deadline=0.05) as client:
                with pytest.raises(PortalDeadlineExceededError):
                    client.get_version()
            occupier.join(timeout=5.0)

    def test_deadline_met_serves_normally(self):
        with PortalServer(
            make_itracker(), overload=OverloadConfig(enabled=True)
        ) as server:
            with PortalClient(*server.address, deadline=5.0) as client:
                assert client.get_version() >= 0

    def test_frames_without_deadline_never_expire(self):
        config = OverloadConfig(enabled=True, inflight_budget=1)
        with PortalServer(make_itracker(), overload=config) as server:
            response, sock = raw_request(
                server.address, {"method": "get_version", "params": {}}
            )
            sock.close()
            assert "result" in response and "deadline_exceeded" not in response


@pytest.mark.timeout(30)
class TestBrownout:
    def _server(self, **itracker_kwargs):
        return AsyncPortalServer(
            make_itracker(**itracker_kwargs),
            workers=1,
            telemetry=Telemetry(),
            overload=OverloadConfig(enabled=True),
        )

    def test_brownout_disables_expensive_methods_with_busy(self):
        with self._server() as server:
            with PortalClient(*server.address) as client:
                client.get_pdistances()  # publish a snapshot to go stale on
                server.force_brownout(True)
                for method in sorted(DEFAULT_BROWNOUT_METHODS):
                    response, sock = raw_request(
                        server.address, {"method": method, "params": {}}
                    )
                    sock.close()
                    assert response.get("busy") is True, method
                    assert response["retry_after"] > 0

    def test_brownout_serves_stale_views_marked_degraded(self):
        with self._server(mode=PriceMode.DYNAMIC) as server:
            with PortalClient(*server.address) as client:
                fresh = client.get_pdistances()
                server.force_brownout(True)
                # Advance the price state: the published snapshot is now
                # stale, and brownout serves it anyway -- no re-aggregation.
                assert server.itracker.observe_loads(
                    {("WASH", "NYCM"): 4000.0}
                )
                response, sock = raw_request(
                    server.address, {"method": "get_pdistances", "params": {}}
                )
                sock.close()
                assert response["degraded"] == "brownout"
                stale = protocol.pdistance_from_wire(response["result"])
                assert stale.pids == fresh.pids
                # Metrics stay served during brownout (operators need
                # them most mid-incident), degradation-marked.
                metrics, sock = raw_request(
                    server.address, {"method": "get_metrics", "params": {}}
                )
                sock.close()
                assert "result" in metrics
                assert metrics["degraded"] == "brownout"
                server.force_brownout(None)

    def test_brownout_exit_restores_fresh_serving(self):
        with self._server() as server:
            with PortalClient(*server.address) as client:
                client.get_pdistances()
                server.force_brownout(True)
                server.force_brownout(False)
                response, sock = raw_request(
                    server.address, {"method": "get_version", "params": {}}
                )
                sock.close()
                assert "degraded" not in response


@pytest.mark.timeout(30)
class TestConnectionGovernance:
    def test_connection_cap_rejects_with_busy_frame(self):
        config = OverloadConfig(enabled=True, max_connections=1, retry_after=0.3)
        telemetry = Telemetry()
        with AsyncPortalServer(
            make_itracker(), workers=1, telemetry=telemetry, overload=config
        ) as server:
            first = socket.create_connection(server.address, timeout=5.0)
            response, _ = raw_request(
                server.address, {"method": "get_version", "params": {}}, sock=first
            )
            assert "result" in response
            # Second connection: one busy frame, then severed.
            second = socket.create_connection(server.address, timeout=5.0)
            rejected = protocol.read_frame(second)
            assert rejected["busy"] is True
            assert protocol.read_frame(second) is None  # EOF
            second.close()
            first.close()
            rejects = telemetry.registry.counter(
                "p4p_portal_connection_rejects_total", "", ("kind",)
            ).labels(kind="cap")
            assert rejects.value == 1

    def test_idle_connections_are_severed(self):
        config = OverloadConfig(enabled=True, idle_timeout=0.2)
        telemetry = Telemetry()
        with AsyncPortalServer(
            make_itracker(), workers=1, telemetry=telemetry, overload=config
        ) as server:
            sock = socket.create_connection(server.address, timeout=5.0)
            # Never send anything: the governor reaps the idle connection.
            assert protocol.read_frame(sock) is None
            sock.close()
            rejects = telemetry.registry.counter(
                "p4p_portal_connection_rejects_total", "", ("kind",)
            ).labels(kind="idle")
            assert rejects.value == 1

    def test_slow_reader_is_severed(self):
        config = OverloadConfig(enabled=True, frame_timeout=0.2)
        telemetry = Telemetry()
        with AsyncPortalServer(
            make_itracker(), workers=1, telemetry=telemetry, overload=config
        ) as server:
            sock = socket.create_connection(server.address, timeout=5.0)
            frame = protocol.encode_frame({"method": "get_version", "params": {}})
            sock.sendall(frame[:3])  # start a frame, then stall (slowloris)
            assert sock.recv(1) == b""  # severed without a response
            sock.close()
            rejects = telemetry.registry.counter(
                "p4p_portal_connection_rejects_total", "", ("kind",)
            ).labels(kind="slow_reader")
            assert rejects.value == 1

    def test_request_budget_recycles_the_connection(self):
        config = OverloadConfig(enabled=True, connection_request_budget=2)
        with AsyncPortalServer(
            make_itracker(), workers=1, overload=config
        ) as server:
            sock = socket.create_connection(server.address, timeout=5.0)
            message = {"method": "get_version", "params": {}}
            sock.sendall(protocol.encode_frame(message) * 3)
            assert "result" in protocol.read_frame(sock)
            assert "result" in protocol.read_frame(sock)
            # The third pipelined request falls past the budget: EOF.
            assert protocol.read_frame(sock) is None
            sock.close()

    def test_threaded_governance_timeouts(self):
        config = OverloadConfig(enabled=True, idle_timeout=0.2)
        with PortalServer(make_itracker(), overload=config) as server:
            sock = socket.create_connection(server.address, timeout=5.0)
            assert protocol.read_frame(sock) is None
            sock.close()


@pytest.mark.timeout(30)
class TestDrain:
    def test_async_drain_stops_accepting_and_sheds_inflight(self):
        telemetry = Telemetry()
        with AsyncPortalServer(
            make_itracker(),
            workers=1,
            telemetry=telemetry,
            overload=OverloadConfig(enabled=True),
        ) as server:
            established = socket.create_connection(server.address, timeout=5.0)
            # One served request makes the connection *established* at the
            # application layer (a handshake still in the kernel backlog is
            # legitimately reset when the listener closes).
            warm, _ = raw_request(
                server.address,
                {"method": "get_version", "params": {}},
                sock=established,
            )
            assert "result" in warm
            assert server.drain(timeout=2.0) is True
            assert server.overload.state() == STATE_DRAINING
            # New connections are refused: the listeners are closed.
            with pytest.raises(OSError):
                socket.create_connection(server.address, timeout=0.5)
            # Established connections get a busy frame with a reconnect
            # hint spanning the drain bound.
            response, _ = raw_request(
                server.address,
                {"method": "get_version", "params": {}},
                sock=established,
            )
            assert response["busy"] is True
            assert response["retry_after"] >= 0.5
            established.close()
            gauge = telemetry.registry.gauge("p4p_overload_state").labels()
            assert gauge.value == STATE_DRAINING

    def test_threaded_drain_returns_true_on_empty_backlog(self):
        with PortalServer(
            make_itracker(), overload=OverloadConfig(enabled=True)
        ) as server:
            assert server.drain(timeout=2.0) is True
            with pytest.raises(OSError):
                socket.create_connection(server.address, timeout=0.5)

    def test_drain_works_with_overload_disabled(self):
        # Drain must shed even on servers that never enabled admission
        # control -- the failover path cannot depend on an opt-in flag.
        with AsyncPortalServer(make_itracker(), workers=1) as server:
            established = socket.create_connection(server.address, timeout=5.0)
            warm, _ = raw_request(
                server.address,
                {"method": "get_version", "params": {}},
                sock=established,
            )
            assert "result" in warm
            assert server.drain(timeout=2.0) is True
            response, _ = raw_request(
                server.address,
                {"method": "get_version", "params": {}},
                sock=established,
            )
            assert response["busy"] is True
            established.close()


@pytest.mark.timeout(30)
class TestCloseLeakAccounting:
    def test_leaked_worker_is_logged_and_counted(self, caplog):
        telemetry = Telemetry()
        server = AsyncPortalServer(
            make_itracker(), workers=1, telemetry=telemetry
        )
        worker = server._workers[0]
        real_stop = worker.stop
        worker.stop = lambda: None  # the worker never hears the shutdown
        try:
            with caplog.at_level("WARNING", logger="repro.portal.aserver"):
                server.close(join_timeout=0.2)
            leaks = telemetry.registry.counter(
                "p4p_server_close_leaks_total", "", ("kind",)
            ).labels(kind="worker")
            assert leaks.value == 1
            assert any(
                "still alive" in record.message for record in caplog.records
            )
        finally:
            real_stop()
            worker.thread.join(timeout=5.0)

    def test_clean_close_counts_no_leaks(self):
        telemetry = Telemetry()
        server = AsyncPortalServer(
            make_itracker(), workers=2, telemetry=telemetry
        )
        server.close()
        leaks = telemetry.registry.counter(
            "p4p_server_close_leaks_total", "", ("kind",)
        )
        assert leaks.labels(kind="worker").value == 0
        assert leaks.labels(kind="acceptor").value == 0


class _HandoffRecorder:
    def __init__(self, drained=True):
        self.calls = []
        self._drained = drained

    def sync(self):
        self.calls.append("sync")

    def drain(self, timeout=None):
        self.calls.append("drain")
        return self._drained

    def close(self):
        self.calls.append("close")


class TestGracefulHandoff:
    def test_handoff_syncs_then_drains_then_closes(self):
        primary = _HandoffRecorder()
        replica = _HandoffRecorder()
        assert graceful_handoff(primary, replica) is True
        assert replica.calls[0] == "sync"
        assert primary.calls == ["drain", "close"]
        assert replica.calls[-1] == "close"

    def test_handoff_reports_incomplete_drain(self):
        primary = _HandoffRecorder(drained=False)
        replica = _HandoffRecorder()
        assert graceful_handoff(primary, replica) is False
        assert primary.calls == ["drain", "close"]
