"""Tests for the iTracker portal."""

import pytest

from repro.core.capability import Capability, CapabilityKind
from repro.core.charging import ChargingVolumePredictor
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.objectives import BandwidthDistanceProduct
from repro.core.pdistance import uniform_pid_map
from repro.network.library import abilene


def make_itracker(**config_kwargs):
    return ITracker(
        topology=abilene(), config=ITrackerConfig(**config_kwargs)
    )


class TestStaticModes:
    def test_ospf_mode_uses_weights(self):
        topo = abilene()
        for link in topo.links.values():
            link.ospf_weight = link.distance
        tracker = ITracker(
            topology=topo, config=ITrackerConfig(mode=PriceMode.OSPF_WEIGHTS)
        )
        prices = tracker.link_prices
        key = ("WASH", "NYCM")
        assert prices[key] == pytest.approx(topo.link(*key).distance)

    def test_hop_count_mode(self):
        tracker = make_itracker(mode=PriceMode.HOP_COUNT)
        view = tracker.get_pdistances()
        routing = tracker.routing
        assert view.distance("SEAT", "NYCM") == routing.hop_count("SEAT", "NYCM")

    def test_explicit_mode(self):
        topo = abilene()
        prices = {key: 2.0 for key in topo.links}
        tracker = ITracker(
            topology=topo,
            config=ITrackerConfig(mode=PriceMode.EXPLICIT),
            explicit_prices=prices,
        )
        assert all(value == 2.0 for value in tracker.link_prices.values())

    def test_explicit_mode_requires_prices(self):
        with pytest.raises(ValueError):
            ITracker(topology=abilene(), config=ITrackerConfig(mode=PriceMode.EXPLICIT))

    def test_explicit_mode_requires_all_links(self):
        topo = abilene()
        with pytest.raises(ValueError):
            ITracker(
                topology=topo,
                config=ITrackerConfig(mode=PriceMode.EXPLICIT),
                explicit_prices={("WASH", "NYCM"): 1.0},
            )

    def test_static_mode_ignores_loads(self):
        tracker = make_itracker(mode=PriceMode.HOP_COUNT)
        before = tracker.link_prices
        assert not tracker.observe_loads({("WASH", "NYCM"): 100.0})
        assert tracker.link_prices == before


class TestDynamicMode:
    def test_loads_raise_hot_link_price(self):
        tracker = make_itracker(mode=PriceMode.DYNAMIC, step_size=0.001)
        hot = ("WASH", "NYCM")
        before = tracker.link_prices
        assert tracker.observe_loads({hot: 5000.0})
        after = tracker.link_prices
        assert after[hot] > before[hot]
        assert tracker.version == 1

    def test_update_period_rate_limits(self):
        tracker = make_itracker(mode=PriceMode.DYNAMIC, update_period=30.0)
        assert tracker.observe_loads({("WASH", "NYCM"): 100.0}, now=0.0)
        assert not tracker.observe_loads({("WASH", "NYCM"): 100.0}, now=10.0)
        assert tracker.observe_loads({("WASH", "NYCM"): 100.0}, now=40.0)

    def test_pdistance_reflects_price_updates(self):
        tracker = make_itracker(mode=PriceMode.DYNAMIC, step_size=0.001)
        before = tracker.get_pdistances().distance("WASH", "NYCM")
        for _ in range(5):
            tracker.observe_loads({("WASH", "NYCM"): 8000.0})
        after = tracker.get_pdistances().distance("WASH", "NYCM")
        assert after > before


class TestViews:
    def test_restricted_view(self):
        tracker = make_itracker()
        view = tracker.get_pdistances(pids=["SEAT", "NYCM"])
        assert set(view.pids) == {"SEAT", "NYCM"}

    def test_rank_view(self):
        tracker = make_itracker(serve_ranks=True)
        view = tracker.get_pdistances()
        values = sorted(set(view.row("SEAT").values()))
        assert values[0] == 1.0
        assert all(float(value).is_integer() for value in values)

    def test_perturbed_view_differs(self):
        plain = make_itracker().get_pdistances()
        noisy = make_itracker(perturbation=0.2).get_pdistances()
        diffs = [
            abs(plain.distance(a, b) - noisy.distance(a, b))
            for a in plain.pids
            for b in plain.pids
            if a != b
        ]
        assert max(diffs) > 0

    def test_intra_pid_distance_served(self):
        tracker = make_itracker(intra_pid_distance=0.5)
        assert tracker.get_pdistances().distance("SEAT", "SEAT") == pytest.approx(0.5)

    def test_bdp_objective_adds_distance_offsets(self):
        topo = abilene()
        tracker = ITracker(topology=topo, objective=BandwidthDistanceProduct())
        view = tracker.get_pdistances()
        routing = tracker.routing
        assert view.distance("SEAT", "NYCM") >= routing.distance("SEAT", "NYCM")


class TestPortalServices:
    def test_pid_lookup(self):
        topo = abilene()
        tracker = ITracker(topology=topo, pid_map=uniform_pid_map(topo))
        pid, as_number = tracker.lookup_pid("10.0.0.5")
        assert pid == topo.aggregation_pids[0]

    def test_pid_lookup_without_map(self):
        with pytest.raises(RuntimeError):
            make_itracker().lookup_pid("10.0.0.5")

    def test_capabilities_served(self):
        tracker = make_itracker()
        tracker.capabilities.add(Capability(CapabilityKind.CACHE, pid="NYCM"))
        assert len(tracker.get_capabilities("anyone")) == 1

    def test_policy_served(self):
        assert make_itracker().get_policy() is not None


class TestVirtualCapacityUpdates:
    def test_records_and_estimates(self):
        from repro.network.interdomain import partition_virtual_isps

        topo = abilene()
        partition = partition_virtual_isps(topo)
        tracker = ITracker(topology=topo)
        key = partition.cut_links[0]
        for _ in range(50):
            tracker.record_interval_volumes({key: 30000.0}, {key: 9000.0})
        estimates = tracker.update_virtual_capacities(
            charging_predictor=ChargingVolumePredictor(
                period_intervals=40, warmup_intervals=5
            )
        )
        # (30000 - 9000) Mbit / 300 s = 70 Mbps.
        assert estimates[key] == pytest.approx(70.0)
        assert topo.links[key].virtual_capacity == pytest.approx(70.0)

    def test_unknown_link_rejected(self):
        tracker = make_itracker()
        with pytest.raises(KeyError):
            tracker.record_interval_volumes({("X", "Y"): 1.0}, {})

    def test_no_history_no_estimates(self):
        from repro.network.interdomain import partition_virtual_isps

        topo = abilene()
        partition_virtual_isps(topo)
        tracker = ITracker(topology=topo)
        assert tracker.update_virtual_capacities() == {}


class TestWarmStart:
    def test_warm_start_targets_background_hot_links(self):
        from repro.network.routing import RoutingTable
        from repro.network.traffic import (
            TrafficMatrix,
            apply_background,
            scale_background_to_utilization,
        )

        topo = abilene()
        routing = RoutingTable.build(topo)
        apply_background(topo, TrafficMatrix.gravity(topo, 10_000.0, seed=4), routing)
        scale_background_to_utilization(topo, 0.8)
        hottest = max(
            topo.links, key=lambda key: topo.links[key].background / topo.links[key].capacity
        )
        tracker = ITracker(
            topology=topo, config=ITrackerConfig(mode=PriceMode.DYNAMIC, step_size=0.002)
        )
        tracker.warm_start()
        prices = tracker.link_prices
        assert prices[hottest] == max(prices.values())
        assert prices[hottest] > 0

    def test_warm_start_noop_for_static_modes(self):
        tracker = make_itracker(mode=PriceMode.HOP_COUNT)
        before = tracker.link_prices
        tracker.warm_start()
        assert tracker.link_prices == before

    def test_warm_start_bumps_version(self):
        tracker = make_itracker(mode=PriceMode.DYNAMIC)
        version = tracker.version
        tracker.warm_start()
        assert tracker.version == version + 1

    def test_negative_iterations_rejected(self):
        tracker = make_itracker(mode=PriceMode.DYNAMIC)
        with pytest.raises(ValueError):
            tracker.warm_start(iterations=-1)


class TestTopologyRefresh:
    def test_link_failure_reroutes_pdistances(self):
        topo = abilene()
        tracker = ITracker(
            topology=topo, config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        direct_hops = tracker.get_pdistances().distance("WASH", "NYCM")
        assert direct_hops == 1.0
        topo.remove_edge("WASH", "NYCM")
        tracker.refresh_topology()
        detour = tracker.get_pdistances().distance("WASH", "NYCM")
        assert detour > direct_hops  # rerouted the long way

    def test_dynamic_prices_survive_refresh(self):
        topo = abilene()
        tracker = ITracker(
            topology=topo, config=ITrackerConfig(mode=PriceMode.DYNAMIC, step_size=0.001)
        )
        tracker.observe_loads({("WASH", "NYCM"): 8000.0})
        hot_before = tracker.link_prices[("WASH", "NYCM")]
        topo.remove_edge("SEAT", "SNVA")  # unrelated link fails
        tracker.refresh_topology()
        prices = tracker.link_prices
        assert ("SEAT", "SNVA") not in prices
        assert prices[("WASH", "NYCM")] > 0
        assert prices[("WASH", "NYCM")] == pytest.approx(hot_before, rel=0.05)

    def test_refresh_bumps_version(self):
        tracker = make_itracker(mode=PriceMode.DYNAMIC)
        version = tracker.version
        tracker.refresh_topology()
        assert tracker.version == version + 1

    def test_remove_unknown_link_raises(self):
        topo = abilene()
        with pytest.raises(KeyError):
            topo.remove_link("SEAT", "NYCM")
