"""Tests for the LP modelling layer."""

import pytest

from repro.optimization.linprog import InfeasibleError, LinearProgram


class TestLinearProgram:
    def test_simple_minimize(self):
        lp = LinearProgram()
        lp.add_var("x", lb=1.0)
        lp.add_var("y", lb=2.0)
        lp.set_objective({"x": 1.0, "y": 1.0})
        solution = lp.solve()
        assert solution.objective == pytest.approx(3.0)
        assert solution["x"] == pytest.approx(1.0)

    def test_simple_maximize(self):
        lp = LinearProgram()
        lp.add_var("x", lb=0.0, ub=4.0)
        lp.set_objective({"x": 2.0}, maximize=True)
        solution = lp.solve()
        assert solution.objective == pytest.approx(8.0)
        assert solution.value("x") == pytest.approx(4.0)

    def test_le_constraint(self):
        lp = LinearProgram()
        lp.add_var("x")
        lp.add_var("y")
        lp.add_le({"x": 1.0, "y": 1.0}, 10.0)
        lp.set_objective({"x": 1.0, "y": 2.0}, maximize=True)
        assert lp.solve().objective == pytest.approx(20.0)

    def test_ge_constraint(self):
        lp = LinearProgram()
        lp.add_var("x")
        lp.add_ge({"x": 1.0}, 5.0)
        lp.set_objective({"x": 1.0})
        assert lp.solve().objective == pytest.approx(5.0)

    def test_eq_constraint(self):
        lp = LinearProgram()
        lp.add_var("x")
        lp.add_var("y")
        lp.add_eq({"x": 1.0, "y": 1.0}, 7.0)
        lp.set_objective({"x": 1.0})
        solution = lp.solve()
        assert solution["x"] == pytest.approx(0.0)
        assert solution["y"] == pytest.approx(7.0)

    def test_infeasible_raises(self):
        lp = LinearProgram(name="bad")
        lp.add_var("x", lb=0.0, ub=1.0)
        lp.add_ge({"x": 1.0}, 5.0)
        lp.set_objective({"x": 1.0})
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_unbounded_raises(self):
        lp = LinearProgram()
        lp.add_var("x")
        lp.set_objective({"x": 1.0}, maximize=True)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_duplicate_variable_rejected(self):
        lp = LinearProgram()
        lp.add_var("x")
        with pytest.raises(ValueError):
            lp.add_var("x")

    def test_unknown_variable_in_constraint_rejected(self):
        lp = LinearProgram()
        lp.add_var("x")
        with pytest.raises(KeyError):
            lp.add_le({"z": 1.0}, 1.0)

    def test_empty_lp_rejected(self):
        with pytest.raises(ValueError):
            LinearProgram().solve()

    def test_repeated_coefficients_accumulate(self):
        lp = LinearProgram()
        lp.add_var("x", ub=10.0)
        lp.set_objective({"x": 1.0}, maximize=True)
        lp.add_le({"x": 3.0}, 6.0)  # one coefficient entry
        assert lp.solve()["x"] == pytest.approx(2.0)

    def test_duals_available_for_le(self):
        # max x s.t. x <= 5 has dual 1 on the constraint (reported negative
        # by HiGHS convention for a minimization of -x).
        lp = LinearProgram()
        lp.add_var("x")
        lp.add_le({"x": 1.0}, 5.0)
        lp.set_objective({"x": 1.0}, maximize=True)
        solution = lp.solve()
        assert solution.dual_ub is not None
        assert abs(solution.dual_ub[0]) == pytest.approx(1.0)

    def test_transport_problem(self):
        # Two sources (supply 10, 20), two sinks (demand 15 each), unit
        # costs; optimum matches the classic transportation solution.
        lp = LinearProgram()
        costs = {("s1", "d1"): 1.0, ("s1", "d2"): 4.0, ("s2", "d1"): 2.0, ("s2", "d2"): 1.0}
        for key in costs:
            lp.add_var(f"f_{key[0]}_{key[1]}")
        lp.add_le({"f_s1_d1": 1.0, "f_s1_d2": 1.0}, 10.0)
        lp.add_le({"f_s2_d1": 1.0, "f_s2_d2": 1.0}, 20.0)
        lp.add_eq({"f_s1_d1": 1.0, "f_s2_d1": 1.0}, 15.0)
        lp.add_eq({"f_s1_d2": 1.0, "f_s2_d2": 1.0}, 15.0)
        lp.set_objective({f"f_{a}_{b}": cost for (a, b), cost in costs.items()})
        solution = lp.solve()
        assert solution.objective == pytest.approx(10 * 1 + 5 * 2 + 15 * 1)

    def test_has_var(self):
        lp = LinearProgram()
        lp.add_var("x")
        assert lp.has_var("x")
        assert not lp.has_var("y")
