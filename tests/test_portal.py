"""Tests for the portal wire protocol, server, client, and integrator."""

import socket
import struct
import threading

import pytest

from repro.core.capability import Capability, CapabilityKind
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.pdistance import PDistanceMap, uniform_pid_map
from repro.core.policy import NetworkPolicy, TimeOfDayPolicy
from repro.network.library import abilene
from repro.portal import protocol
from repro.portal.client import (
    DiscoveryError,
    Integrator,
    PortalClient,
    PortalClientError,
    clear_registry,
    discover_itracker,
    register_itracker,
)
from repro.portal.server import PortalServer


@pytest.fixture
def itracker():
    topo = abilene()
    tracker = ITracker(
        topology=topo,
        config=ITrackerConfig(mode=PriceMode.HOP_COUNT),
        pid_map=uniform_pid_map(topo),
    )
    tracker.capabilities.add(Capability(CapabilityKind.CACHE, pid="NYCM", capacity_mbps=500))
    tracker.policy.add_time_of_day(
        TimeOfDayPolicy(link=("WASH", "NYCM"), avoid_windows=((18.0, 23.0),))
    )
    return tracker


@pytest.fixture
def portal(itracker):
    with PortalServer(itracker) as server:
        yield server


class TestProtocol:
    def test_frame_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"method": "ping", "params": {"x": 1}}
            a.sendall(protocol.encode_frame(message))
            assert protocol.read_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert protocol.read_frame(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            frame = protocol.encode_frame({"method": "x"})
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(protocol.ProtocolError):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_frame({"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})

    def test_pdistance_round_trip(self):
        view = PDistanceMap(
            pids=("A", "B"),
            distances={("A", "B"): 1.5, ("B", "A"): 2.5, ("A", "A"): 0.0, ("B", "B"): 0.0},
        )
        wire = protocol.pdistance_to_wire(view)
        restored = protocol.pdistance_from_wire(wire)
        assert restored.distance("A", "B") == 1.5
        assert restored.distance("B", "A") == 2.5

    def test_bad_pdistance_document_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.pdistance_from_wire({"pids": ["A"]})


@pytest.mark.timeout(10)
class TestProtocolFramingEdgeCases:
    """Malformed frames raise ProtocolError promptly -- never hang a read."""

    def _pair(self):
        return socket.socketpair()

    def test_truncated_length_prefix(self):
        a, b = self._pair()
        try:
            a.sendall(b"\x00\x00")  # 2 of the 4 header bytes
            a.close()
            with pytest.raises(protocol.ProtocolError, match="mid-frame"):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_body_shorter_than_advertised(self):
        a, b = self._pair()
        try:
            body = b'{"method": "ping"}'
            a.sendall(struct.pack(">I", len(body) + 16) + body)
            a.close()
            with pytest.raises(protocol.ProtocolError, match="mid-frame"):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_body_longer_than_advertised_breaks_parse(self):
        # The advertised length wins: the reader takes a prefix of the real
        # body, which no longer parses -- an error, not silent corruption.
        a, b = self._pair()
        try:
            body = b'{"method": "ping", "params": {}}'
            a.sendall(struct.pack(">I", len(body) - 5) + body)
            with pytest.raises(protocol.ProtocolError, match="bad JSON"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_header_rejected_before_reading_body(self):
        a, b = self._pair()
        try:
            # No body is ever sent; the header alone must be enough to fail.
            a.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(protocol.ProtocolError, match="exceeds limit"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_invalid_utf8_body(self):
        a, b = self._pair()
        try:
            body = b"\xff\xfe\xfd\xfc"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(protocol.ProtocolError, match="bad JSON"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_invalid_json_body(self):
        a, b = self._pair()
        try:
            body = b"this is not json"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(protocol.ProtocolError, match="bad JSON"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_json_body(self):
        a, b = self._pair()
        try:
            body = b"[1, 2, 3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(protocol.ProtocolError, match="JSON object"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()


class TestPortalEndToEnd:
    def test_get_pdistances(self, portal, itracker):
        host, port = portal.address
        with PortalClient(host, port) as client:
            view = client.get_pdistances()
            local = itracker.get_pdistances()
            assert view.distance("SEAT", "NYCM") == pytest.approx(
                local.distance("SEAT", "NYCM")
            )

    def test_get_pdistances_restricted(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            view = client.get_pdistances(pids=["SEAT", "NYCM"])
            assert set(view.pids) == {"SEAT", "NYCM"}

    def test_view_cached_by_version(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            first = client.get_pdistances()
            second = client.get_pdistances()
            assert first is second  # same cached object

    def test_partial_views_bypass_version_cache(self, portal):
        """Pins the documented behaviour: ``pids=[...]`` fetches are never
        cached and never disturb the cached full view -- the stale-fallback
        logic in the resilient wrapper depends on this."""
        host, port = portal.address
        with PortalClient(host, port) as client:
            full = client.get_pdistances()
            partial_1 = client.get_pdistances(pids=["SEAT", "NYCM"])
            partial_2 = client.get_pdistances(pids=["SEAT", "NYCM"])
            # Fresh RPC each time: distinct objects, equal content.
            assert partial_1 is not partial_2
            assert partial_1.distances == partial_2.distances
            # The full-view cache is untouched by partial fetches.
            assert client.get_pdistances() is full

    def test_get_policy(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            policy = client.get_policy()
            assert policy.links_to_avoid(19.0) == [("WASH", "NYCM")]

    def test_get_capabilities(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            found = client.get_capabilities("anyone", kind="cache")
            assert len(found) == 1
            assert found[0]["pid"] == "NYCM"

    def test_lookup_pid(self, portal, itracker):
        host, port = portal.address
        with PortalClient(host, port) as client:
            pid, as_number = client.lookup_pid("10.0.0.9")
            assert pid == itracker.topology.aggregation_pids[0]

    def test_unknown_method_is_error(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            with pytest.raises(PortalClientError):
                client._call("no_such_method")

    def test_missing_param_is_error(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            with pytest.raises(PortalClientError):
                client._call("lookup_pid")

    def test_unmapped_ip_error_is_actionable(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            with pytest.raises(PortalClientError, match="no PID mapping for"):
                client.lookup_pid("192.168.1.1")

    def test_stray_keyerror_is_named(self, portal):
        """A handler leaking a bare KeyError must not surface as "'SEAT'"."""

        def exploding(params):
            raise KeyError("SEAT")

        portal._do_get_policy = exploding
        response = portal.dispatch({"method": "get_policy", "params": {}})
        assert response["error"] == "unknown key: 'SEAT'"

    def test_multiple_clients_concurrently(self, portal):
        host, port = portal.address
        errors = []

        def worker():
            try:
                with PortalClient(host, port) as client:
                    for _ in range(5):
                        client.get_version()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestPortalTelemetry:
    """The get_metrics interface and the server's instrumented dispatch."""

    def test_get_metrics_json_reflects_served_requests(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            for _ in range(3):
                client.get_version()
            client.get_metrics()
            snapshot = client.get_metrics()
        requests = next(
            m
            for m in snapshot["metrics"]
            if m["name"] == "p4p_portal_requests_total"
        )
        by_method = {
            s["labels"]["method"]: s["value"] for s in requests["samples"]
        }
        assert by_method["get_version"] == 3
        # A scrape counts itself only once finished, so the second scrape
        # sees exactly the first one.
        assert by_method["get_metrics"] == 1
        inflight = next(
            m
            for m in snapshot["metrics"]
            if m["name"] == "p4p_portal_inflight_requests"
        )
        # ...and sees itself as the one request currently in flight.
        assert inflight["samples"][0]["value"] == 1

    def test_get_metrics_prometheus_round_trips_json(self, portal):
        from repro.observability import flatten_snapshot, parse_prometheus_text

        host, port = portal.address
        with PortalClient(host, port) as client:
            client.get_version()
            # Scrape twice back-to-back; between the two scrapes exactly the
            # first scrape's own request lands in the registry.
            snapshot = client.get_metrics()
            prom = client.get_metrics(format="prometheus")
        assert prom["content_type"].startswith("text/plain")
        parsed = parse_prometheus_text(prom["text"])
        flat = flatten_snapshot(snapshot)
        # Every series of the JSON snapshot appears in the exposition, and
        # only request-path series may have advanced in between.
        for key, value in flat.items():
            assert key in parsed
            if value != parsed[key]:
                assert key.startswith(
                    ("p4p_portal_requests_total", "p4p_portal_request_latency",
                     "p4p_portal_frame_bytes_total", "p4p_slo_")
                )

    def test_get_metrics_unknown_format_is_error(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            with pytest.raises(PortalClientError, match="unknown metrics format"):
                client.get_metrics(format="xml")

    def test_latency_and_bytes_instruments_populate(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            client.get_pdistances()
            snapshot = client.get_metrics()
        latency = next(
            m
            for m in snapshot["metrics"]
            if m["name"] == "p4p_portal_request_latency_seconds"
        )
        methods = {s["labels"]["method"] for s in latency["samples"]}
        assert "get_pdistances" in methods
        bytes_metric = next(
            m
            for m in snapshot["metrics"]
            if m["name"] == "p4p_portal_frame_bytes_total"
        )
        by_direction = {
            s["labels"]["direction"]: s["value"] for s in bytes_metric["samples"]
        }
        assert by_direction["in"] > 0
        assert by_direction["out"] > by_direction["in"]  # views are big

    def test_unexpected_exception_returns_structured_error(self, portal):
        """Satellite: a buggy handler is logged and counted, the client gets
        an error frame, and the connection survives for the next request."""

        def exploding(params):
            raise RuntimeError("handler bug")

        portal._do_get_policy = exploding
        host, port = portal.address
        with PortalClient(host, port) as client:
            with pytest.raises(
                PortalClientError, match="internal error: RuntimeError: handler bug"
            ):
                client.get_policy()
            # Same connection still serves requests afterwards.
            assert isinstance(client.get_version(), int)
            snapshot = client.get_metrics()
        errors = next(
            m for m in snapshot["metrics"] if m["name"] == "p4p_portal_errors_total"
        )
        internal = [
            s for s in errors["samples"] if s["labels"]["kind"] == "internal"
        ]
        assert internal and internal[0]["value"] == 1
        assert internal[0]["labels"]["method"] == "get_policy"

    def test_unknown_methods_share_one_label(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            for bogus in ("nope_1", "nope_2", "nope_3"):
                with pytest.raises(PortalClientError):
                    client._call(bogus)
            snapshot = client.get_metrics()
        requests = next(
            m
            for m in snapshot["metrics"]
            if m["name"] == "p4p_portal_requests_total"
        )
        by_method = {
            s["labels"]["method"]: s["value"] for s in requests["samples"]
        }
        assert by_method["<unknown>"] == 3
        assert not any(name.startswith("nope") for name in by_method)

    @pytest.mark.timeout(30)
    def test_threaded_hammering_counts_exactly(self, portal):
        """Satellite: concurrent connection handlers share one registry
        without losing updates."""
        host, port = portal.address
        n_threads, n_calls = 6, 25
        errors = []

        def worker():
            try:
                with PortalClient(host, port) as client:
                    for _ in range(n_calls):
                        client.get_version()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        requests = portal.telemetry.registry.get("p4p_portal_requests_total")
        assert requests.labels(method="get_version").value == n_threads * n_calls
        inflight = portal.telemetry.registry.get("p4p_portal_inflight_requests")
        assert inflight.labels().value == 0

    def test_null_telemetry_disables_collection(self, itracker):
        from repro.observability import NULL_TELEMETRY

        itracker.telemetry = NULL_TELEMETRY
        with PortalServer(itracker, telemetry=NULL_TELEMETRY) as server:
            host, port = server.address
            with PortalClient(host, port) as client:
                client.get_version()
                snapshot = client.get_metrics()
        assert snapshot["metrics"] == []

    def test_client_side_cache_and_latency_instruments(self, portal):
        from repro.observability import Telemetry

        telemetry = Telemetry()
        host, port = portal.address
        with PortalClient(host, port, telemetry=telemetry) as client:
            client.get_pdistances()
            client.get_pdistances()  # version unchanged -> cache hit
        cache = telemetry.registry.get("p4p_client_view_cache_total")
        assert cache.labels(outcome="miss").value == 1
        assert cache.labels(outcome="hit").value == 1
        latency = telemetry.registry.get("p4p_client_call_latency_seconds")
        assert latency.labels(method="get_version").count == 2

    def test_itracker_price_updates_visible_via_get_metrics(self):
        topo = abilene()
        tracker = ITracker(
            topology=topo, config=ITrackerConfig(mode=PriceMode.DYNAMIC)
        )
        with PortalServer(tracker) as server:
            loads = {key: 100.0 for key in list(topo.links)[:4]}
            for _ in range(3):
                tracker.observe_loads(loads)
            host, port = server.address
            with PortalClient(host, port) as client:
                snapshot = client.get_metrics()
        version = next(
            m for m in snapshot["metrics"] if m["name"] == "p4p_core_price_version"
        )
        assert version["samples"][0]["value"] == 3
        update_spans = [
            span
            for span in snapshot["spans"]
            if span["name"] == "itracker.price_update"
        ]
        assert len(update_spans) == 3
        assert update_spans[-1]["attributes"]["supergradient_norm"] > 0


class TestIntegrator:
    def test_collects_views_per_as(self, itracker):
        with PortalServer(itracker) as server:
            host, port = server.address
            integrator = Integrator()
            integrator.add(11537, PortalClient(host, port))
            views = integrator.views()
            assert 11537 in views
            integrator.close()

    def test_dead_portal_skipped(self, itracker):
        server = PortalServer(itracker)
        host, port = server.address
        client = PortalClient(host, port)
        integrator = Integrator()
        integrator.add(1, client)
        server.close()
        client.close()
        assert integrator.views() == {}


class TestDiscovery:
    def test_register_and_discover(self):
        clear_registry()
        register_itracker("isp-b.example", "127.0.0.1", 4444)
        assert discover_itracker("isp-b.example") == ("127.0.0.1", 4444)

    def test_unknown_domain_raises_discovery_error(self):
        clear_registry()
        with pytest.raises(DiscoveryError, match="nowhere.example"):
            discover_itracker("nowhere.example")


class TestWireSchemaValidation:
    """METHOD_SCHEMAS doubles as the dispatch request validator; the
    static API001 rule keeps it in parity with the _do_* handlers."""

    def test_every_dispatch_method_has_a_schema(self, itracker):
        with PortalServer(itracker) as server:
            handlers = {
                name[len("_do_"):]
                for name in dir(server)
                if name.startswith("_do_")
            }
        assert handlers == set(protocol.METHOD_SCHEMAS)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unexpected parameter"):
            protocol.validate_params("get_pdistances", {"pidz": []})

    def test_missing_required_parameter_rejected(self):
        with pytest.raises(ValueError, match="ip is required"):
            protocol.validate_params("lookup_pid", {})

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError, match="ip"):
            protocol.validate_params("lookup_pid", {"ip": 42})
        with pytest.raises(ValueError, match="pids"):
            protocol.validate_params("get_pdistances", {"pids": "NYCM"})

    def test_valid_and_unknown_methods_pass(self):
        protocol.validate_params("lookup_pid", {"ip": "10.0.0.9"})
        protocol.validate_params("get_pdistances", {"pids": ["NYCM"]})
        # Unknown methods are the dispatcher's problem, not the schema's.
        protocol.validate_params("no_such_method", {"anything": 1})

    def test_server_rejects_unknown_parameter_end_to_end(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            with pytest.raises(PortalClientError, match="unexpected parameter"):
                client._call("get_pdistances", pidz=["NYCM"])

    def test_server_rejects_wrong_type_end_to_end(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            with pytest.raises(PortalClientError, match="ip"):
                client._call("lookup_pid", ip=42)
