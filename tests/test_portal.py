"""Tests for the portal wire protocol, server, client, and integrator."""

import socket
import struct
import threading

import pytest

from repro.core.capability import Capability, CapabilityKind
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.pdistance import PDistanceMap, uniform_pid_map
from repro.core.policy import NetworkPolicy, TimeOfDayPolicy
from repro.network.library import abilene
from repro.portal import protocol
from repro.portal.client import (
    DiscoveryError,
    Integrator,
    PortalClient,
    PortalClientError,
    clear_registry,
    discover_itracker,
    register_itracker,
)
from repro.portal.server import PortalServer


@pytest.fixture
def itracker():
    topo = abilene()
    tracker = ITracker(
        topology=topo,
        config=ITrackerConfig(mode=PriceMode.HOP_COUNT),
        pid_map=uniform_pid_map(topo),
    )
    tracker.capabilities.add(Capability(CapabilityKind.CACHE, pid="NYCM", capacity_mbps=500))
    tracker.policy.add_time_of_day(
        TimeOfDayPolicy(link=("WASH", "NYCM"), avoid_windows=((18.0, 23.0),))
    )
    return tracker


@pytest.fixture
def portal(itracker):
    with PortalServer(itracker) as server:
        yield server


class TestProtocol:
    def test_frame_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"method": "ping", "params": {"x": 1}}
            a.sendall(protocol.encode_frame(message))
            assert protocol.read_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert protocol.read_frame(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            frame = protocol.encode_frame({"method": "x"})
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(protocol.ProtocolError):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_frame({"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})

    def test_pdistance_round_trip(self):
        view = PDistanceMap(
            pids=("A", "B"),
            distances={("A", "B"): 1.5, ("B", "A"): 2.5, ("A", "A"): 0.0, ("B", "B"): 0.0},
        )
        wire = protocol.pdistance_to_wire(view)
        restored = protocol.pdistance_from_wire(wire)
        assert restored.distance("A", "B") == 1.5
        assert restored.distance("B", "A") == 2.5

    def test_bad_pdistance_document_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.pdistance_from_wire({"pids": ["A"]})


@pytest.mark.timeout(10)
class TestProtocolFramingEdgeCases:
    """Malformed frames raise ProtocolError promptly -- never hang a read."""

    def _pair(self):
        return socket.socketpair()

    def test_truncated_length_prefix(self):
        a, b = self._pair()
        try:
            a.sendall(b"\x00\x00")  # 2 of the 4 header bytes
            a.close()
            with pytest.raises(protocol.ProtocolError, match="mid-frame"):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_body_shorter_than_advertised(self):
        a, b = self._pair()
        try:
            body = b'{"method": "ping"}'
            a.sendall(struct.pack(">I", len(body) + 16) + body)
            a.close()
            with pytest.raises(protocol.ProtocolError, match="mid-frame"):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_body_longer_than_advertised_breaks_parse(self):
        # The advertised length wins: the reader takes a prefix of the real
        # body, which no longer parses -- an error, not silent corruption.
        a, b = self._pair()
        try:
            body = b'{"method": "ping", "params": {}}'
            a.sendall(struct.pack(">I", len(body) - 5) + body)
            with pytest.raises(protocol.ProtocolError, match="bad JSON"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_header_rejected_before_reading_body(self):
        a, b = self._pair()
        try:
            # No body is ever sent; the header alone must be enough to fail.
            a.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(protocol.ProtocolError, match="exceeds limit"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_invalid_utf8_body(self):
        a, b = self._pair()
        try:
            body = b"\xff\xfe\xfd\xfc"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(protocol.ProtocolError, match="bad JSON"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_invalid_json_body(self):
        a, b = self._pair()
        try:
            body = b"this is not json"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(protocol.ProtocolError, match="bad JSON"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_json_body(self):
        a, b = self._pair()
        try:
            body = b"[1, 2, 3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(protocol.ProtocolError, match="JSON object"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()


class TestPortalEndToEnd:
    def test_get_pdistances(self, portal, itracker):
        host, port = portal.address
        with PortalClient(host, port) as client:
            view = client.get_pdistances()
            local = itracker.get_pdistances()
            assert view.distance("SEAT", "NYCM") == pytest.approx(
                local.distance("SEAT", "NYCM")
            )

    def test_get_pdistances_restricted(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            view = client.get_pdistances(pids=["SEAT", "NYCM"])
            assert set(view.pids) == {"SEAT", "NYCM"}

    def test_view_cached_by_version(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            first = client.get_pdistances()
            second = client.get_pdistances()
            assert first is second  # same cached object

    def test_partial_views_bypass_version_cache(self, portal):
        """Pins the documented behaviour: ``pids=[...]`` fetches are never
        cached and never disturb the cached full view -- the stale-fallback
        logic in the resilient wrapper depends on this."""
        host, port = portal.address
        with PortalClient(host, port) as client:
            full = client.get_pdistances()
            partial_1 = client.get_pdistances(pids=["SEAT", "NYCM"])
            partial_2 = client.get_pdistances(pids=["SEAT", "NYCM"])
            # Fresh RPC each time: distinct objects, equal content.
            assert partial_1 is not partial_2
            assert partial_1.distances == partial_2.distances
            # The full-view cache is untouched by partial fetches.
            assert client.get_pdistances() is full

    def test_get_policy(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            policy = client.get_policy()
            assert policy.links_to_avoid(19.0) == [("WASH", "NYCM")]

    def test_get_capabilities(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            found = client.get_capabilities("anyone", kind="cache")
            assert len(found) == 1
            assert found[0]["pid"] == "NYCM"

    def test_lookup_pid(self, portal, itracker):
        host, port = portal.address
        with PortalClient(host, port) as client:
            pid, as_number = client.lookup_pid("10.0.0.9")
            assert pid == itracker.topology.aggregation_pids[0]

    def test_unknown_method_is_error(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            with pytest.raises(PortalClientError):
                client._call("no_such_method")

    def test_missing_param_is_error(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            with pytest.raises(PortalClientError):
                client._call("lookup_pid")

    def test_unmapped_ip_error_is_actionable(self, portal):
        host, port = portal.address
        with PortalClient(host, port) as client:
            with pytest.raises(PortalClientError, match="no PID mapping for"):
                client.lookup_pid("192.168.1.1")

    def test_stray_keyerror_is_named(self, portal):
        """A handler leaking a bare KeyError must not surface as "'SEAT'"."""

        def exploding(params):
            raise KeyError("SEAT")

        portal._do_get_policy = exploding
        response = portal.dispatch({"method": "get_policy", "params": {}})
        assert response["error"] == "unknown key: 'SEAT'"

    def test_multiple_clients_concurrently(self, portal):
        host, port = portal.address
        errors = []

        def worker():
            try:
                with PortalClient(host, port) as client:
                    for _ in range(5):
                        client.get_version()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestIntegrator:
    def test_collects_views_per_as(self, itracker):
        with PortalServer(itracker) as server:
            host, port = server.address
            integrator = Integrator()
            integrator.add(11537, PortalClient(host, port))
            views = integrator.views()
            assert 11537 in views
            integrator.close()

    def test_dead_portal_skipped(self, itracker):
        server = PortalServer(itracker)
        host, port = server.address
        client = PortalClient(host, port)
        integrator = Integrator()
        integrator.add(1, client)
        server.close()
        client.close()
        assert integrator.views() == {}


class TestDiscovery:
    def test_register_and_discover(self):
        clear_registry()
        register_itracker("isp-b.example", "127.0.0.1", 4444)
        assert discover_itracker("isp-b.example") == ("127.0.0.1", 4444)

    def test_unknown_domain_raises_discovery_error(self):
        clear_registry()
        with pytest.raises(DiscoveryError, match="nowhere.example"):
            discover_itracker("nowhere.example")
