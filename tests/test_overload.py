"""Tests for the overload-control layer (no sockets, no wall clock).

Admission, CoDel shedding, brownout transitions, drain, the governor
facade, and the deterministic overload chaos scenario all run on injected
step clocks -- every behaviour here must be exactly reproducible.  The
socket-level integration of the same machinery lives in
``tests/test_portal_overload.py``.
"""

import random

import pytest

from repro.management.monitors import ResilienceCounters
from repro.portal.client import PortalBusyError
from repro.portal.overload import (
    STATE_BROWNOUT,
    STATE_DRAINING,
    STATE_NORMAL,
    STATE_SHEDDING,
    AdmissionController,
    AdmissionOutcome,
    BrownoutController,
    OverloadConfig,
    OverloadGovernor,
)
from repro.portal.resilience import (
    BreakerState,
    CircuitBreaker,
    ResilientPortalClient,
    RetryPolicy,
)
from repro.simulator.overload import (
    OverloadScenarioSpec,
    format_overload,
    run_overload,
)


class StepClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def config(**overrides):
    defaults = dict(
        enabled=True,
        inflight_budget=2,
        queue_budget=2,
        max_queue_delay=0.5,
        codel_target=0.05,
        codel_interval=0.1,
        retry_after=0.25,
        brownout_enter=0.5,
        brownout_exit=1.0,
        drain_timeout=1.0,
    )
    defaults.update(overrides)
    return OverloadConfig(**defaults)


class TestOverloadConfig:
    def test_validation_rejects_nonsense(self):
        for bad in (
            dict(inflight_budget=0),
            dict(queue_budget=-1),
            dict(max_queue_delay=0.0),
            dict(codel_target=-1.0),
            dict(max_shed_level=0),
            dict(retry_after=0.0),
            dict(probe_interval=0.0),
            dict(max_connections=0),
            dict(idle_timeout=0.0),
            dict(frame_timeout=-1.0),
            dict(connection_request_budget=0),
            dict(brownout_enter=0.0),
            dict(drain_timeout=0.0),
        ):
            with pytest.raises(ValueError):
                config(**bad)

    def test_disabled_config_is_constructible_with_defaults(self):
        assert OverloadConfig(enabled=False).enabled is False


class TestAdmissionController:
    def test_admits_within_budget_then_queues_then_sheds(self):
        clock = StepClock()
        ctl = AdmissionController(config(), clock=clock)
        assert ctl.try_admit(0.0) is AdmissionOutcome.ADMITTED
        assert ctl.try_admit(0.0) is AdmissionOutcome.ADMITTED
        # Budget full: non-queueing callers are shed outright ...
        assert ctl.try_admit(0.0) is AdmissionOutcome.SHED_QUEUE
        # ... queueing callers park, up to the queue budget.
        assert ctl.try_admit(0.0, may_queue=True) is AdmissionOutcome.QUEUED
        assert ctl.try_admit(0.0, may_queue=True) is AdmissionOutcome.QUEUED
        assert ctl.try_admit(0.0, may_queue=True) is AdmissionOutcome.SHED_QUEUE
        assert ctl.inflight == 2 and ctl.queued == 2 and ctl.backlog == 4

    def test_admit_after_wait_enforces_the_delay_bound(self):
        clock = StepClock()
        ctl = AdmissionController(config(), clock=clock)
        ctl.try_admit(0.0)
        ctl.try_admit(0.0)
        assert ctl.try_admit(0.0, may_queue=True) is AdmissionOutcome.QUEUED
        ctl.release()
        # Within the bound: the waiter gets the slot.
        assert ctl.admit_after_wait(0.1, waited=0.1) is AdmissionOutcome.ADMITTED
        assert ctl.try_admit(0.2, may_queue=True) is AdmissionOutcome.QUEUED
        ctl.release()
        # Past the bound: shed even though a slot is free.
        assert ctl.admit_after_wait(0.9, waited=0.9) is AdmissionOutcome.SHED_QUEUE
        assert ctl.inflight == 1 and ctl.queued == 0

    def test_codel_shedding_enters_after_sustained_delay(self):
        clock = StepClock()
        ctl = AdmissionController(config(), clock=clock)
        assert not ctl.shedding()
        # One spike is not sustained delay.
        ctl.observe_delay(0.0, 0.2)
        assert not ctl.shedding()
        # Above target for a full interval: shedding engages.
        ctl.observe_delay(0.15, 0.2)
        assert ctl.shedding()
        # Progressive escalation: level grows with time spent shedding.
        assert ctl.shed_level(0.15) == 1
        assert ctl.shed_level(0.46) == 4
        assert ctl.shed_level(99.0) == config().max_shed_level
        # A below-target observation clears the state entirely.
        ctl.observe_delay(0.4, 0.01)
        assert not ctl.shedding()

    def test_shedding_admits_every_period_th_arrival(self):
        clock = StepClock()
        ctl = AdmissionController(config(inflight_budget=64), clock=clock)
        ctl.observe_delay(0.0, 0.2)
        ctl.observe_delay(0.15, 0.2)
        assert ctl.shedding()
        # Level 1 sheds every arrival whose counter is not a multiple of
        # 2: deterministic, so exactly half of a burst is admitted.
        outcomes = [ctl.try_admit(0.16) for _ in range(8)]
        admitted = [o for o in outcomes if o is AdmissionOutcome.ADMITTED]
        shed = [o for o in outcomes if o is AdmissionOutcome.SHED_CODEL]
        assert len(admitted) == 4 and len(shed) == 4
        # Direct admits do not clear the shedding state (only a real
        # below-target delay observation may -- the async lag probe).
        assert ctl.shedding()

    def test_drain_sheds_arrivals_and_empties_backlog(self):
        clock = StepClock()
        ctl = AdmissionController(config(), clock=clock)
        ctl.try_admit(0.0)
        ctl.start_drain(0.0)
        assert ctl.draining
        assert ctl.try_admit(0.1) is AdmissionOutcome.SHED_DRAIN
        assert ctl.try_admit(0.1, may_queue=True) is AdmissionOutcome.SHED_DRAIN
        assert ctl.backlog == 1
        ctl.release()
        assert ctl.backlog == 0
        assert ctl.wait_drained(timeout=0.1) is True

    def test_blocking_admission_bounds_the_wait(self):
        clock = StepClock()
        ctl = AdmissionController(config(inflight_budget=1), clock=clock)
        assert ctl.admit_blocking() == (AdmissionOutcome.ADMITTED, 0.0)
        # Slot occupied and nobody will release it: the bounded wait
        # expires (the step clock never advances inside cv.wait, so use a
        # tiny real bound via max_queue_delay on a real clock instead).
        real = AdmissionController(
            config(inflight_budget=1, max_queue_delay=0.05)
        )
        assert real.admit_blocking()[0] is AdmissionOutcome.ADMITTED
        outcome, waited = real.admit_blocking()
        assert outcome is AdmissionOutcome.SHED_QUEUE
        assert waited >= 0.05
        assert real.queued == 0


class TestBrownoutController:
    def test_enters_after_sustained_shedding_and_exits_after_clean(self):
        ctl = BrownoutController(config())
        assert ctl.update(0.0, shedding=True) is False
        assert ctl.update(0.4, shedding=True) is False
        assert ctl.update(0.5, shedding=True) is True  # sustained >= enter
        # Still active through a clean stretch shorter than the exit bar.
        assert ctl.update(0.6, shedding=False) is True
        assert ctl.update(1.5, shedding=False) is True
        assert ctl.update(1.6, shedding=False) is False  # sustained clean
        assert ctl.transitions == 2

    def test_shedding_resets_the_clean_timer(self):
        ctl = BrownoutController(config())
        ctl.update(0.0, shedding=True)
        ctl.update(0.5, shedding=True)
        assert ctl.active
        ctl.update(0.6, shedding=False)
        ctl.update(1.5, shedding=True)  # relapse: clean timer restarts
        ctl.update(1.6, shedding=False)
        assert ctl.update(2.5, shedding=False) is True
        assert ctl.update(2.7, shedding=False) is False

    def test_force_pins_the_state(self):
        ctl = BrownoutController(config())
        ctl.force(True)
        assert ctl.update(0.0, shedding=False) is True
        ctl.force(None)
        assert ctl.update(10.0, shedding=False) is True  # machine resumes
        assert ctl.update(11.1, shedding=False) is False


class TestOverloadGovernor:
    def test_state_machine_precedence(self):
        clock = StepClock()
        governor = OverloadGovernor(config(), clock=clock)
        assert governor.state() == STATE_NORMAL
        governor.observe_delay(0.2, now=0.0)
        governor.observe_delay(0.2, now=0.15)
        assert governor.state() == STATE_SHEDDING
        governor.force_brownout(True)
        assert governor.state() == STATE_BROWNOUT
        governor.start_drain()
        assert governor.state() == STATE_DRAINING

    def test_retry_after_hints_by_outcome(self):
        governor = OverloadGovernor(config(), clock=StepClock())
        base = config().retry_after
        assert governor.retry_after(AdmissionOutcome.SHED_CODEL) == base
        assert governor.retry_after(AdmissionOutcome.SHED_QUEUE) == 2 * base
        assert governor.retry_after(AdmissionOutcome.SHED_DRAIN) == max(
            base, config().drain_timeout
        )

    def test_connection_cap_accounting(self):
        governor = OverloadGovernor(
            config(max_connections=2), clock=StepClock()
        )
        assert governor.try_open_connection()
        assert governor.try_open_connection()
        assert not governor.try_open_connection()
        governor.connection_closed()
        assert governor.try_open_connection()
        assert governor.open_connections == 2

    def test_disabled_governor_admits_everything(self):
        governor = OverloadGovernor(
            OverloadConfig(enabled=False), clock=StepClock()
        )
        for _ in range(500):
            assert governor.admit() is AdmissionOutcome.ADMITTED
        governor.observe_delay(10.0, now=0.0)
        governor.observe_delay(10.0, now=1.0)
        assert governor.state() == STATE_NORMAL
        # ... except during drain, which sheds even when disabled.
        governor.start_drain()
        assert governor.admit() is AdmissionOutcome.SHED_DRAIN


class TestOverloadScenario:
    def test_invariants_hold_and_runs_are_bit_deterministic(self):
        spec = OverloadScenarioSpec()
        first = run_overload(spec)
        second = run_overload(spec)
        assert first.violations == ()
        assert first.digest == second.digest
        assert first.document == second.document

    def test_protected_sheds_while_unprotected_collapses(self):
        report = run_overload(OverloadScenarioSpec(seed=3))
        doc = report.document
        outcomes = doc["protected"]["outcomes"]
        assert outcomes.get("shed_codel", 0) + outcomes.get("shed_queue", 0) > 0
        assert doc["protected"]["breaker_trips"] == 0
        assert (
            doc["unprotected"]["latency_p99"]
            > 2 * doc["protected"]["latency_p99"]
        )
        goodput = doc["protected"]["goodput_qps"]
        assert goodput >= 0.7 * doc["spec"]["capacity_qps"]

    def test_drain_completes_within_bound(self):
        report = run_overload(OverloadScenarioSpec(seed=1))
        drain = report.document["protected"]["drain"]
        assert drain is not None and drain["completed"] is not None
        spec = OverloadScenarioSpec(seed=1)
        assert (
            drain["completed"] - drain["started"]
            <= spec.config.drain_timeout
        )

    def test_different_seeds_differ_and_no_drain_mode_works(self):
        with_drain = run_overload(OverloadScenarioSpec(seed=2))
        no_drain = run_overload(OverloadScenarioSpec(seed=2, drain_at=None))
        assert with_drain.digest != no_drain.digest
        assert no_drain.document["protected"]["drain"] is None
        assert no_drain.violations == ()

    def test_format_renders_verdict_and_digest(self):
        report = run_overload(OverloadScenarioSpec())
        text = format_overload(report)
        assert "all overload invariants hold" in text
        assert report.digest in text

    def test_spec_validation(self):
        for bad in (
            dict(capacity_qps=0.0),
            dict(multiple=-1.0),
            dict(duration=0.0),
            dict(goodput_floor=0.0),
            dict(deadline_budget=0.0),
            dict(drain_at=99.0),
        ):
            with pytest.raises(ValueError):
                OverloadScenarioSpec(**bad)


class _BusyScriptClient:
    """Stub PortalClient: raises PortalBusyError ``busy_first`` times,
    then answers get_version."""

    def __init__(self, script):
        self.script = script
        self.closed = False

    def get_version(self):
        if self.script:
            raise self.script.pop(0)
        return 7

    def close(self):
        self.closed = True


class TestResilienceBusyHandling:
    """Satellite regression: shed/busy responses are not faults -- the
    breaker must not flap, the connection must not be discarded, and the
    backoff must honor the server's hint."""

    def _client(self, script, **kwargs):
        clock = StepClock()
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        stub = _BusyScriptClient(script)
        counters = ResilienceCounters()
        client = ResilientPortalClient(
            "portal.test",
            1,
            retry=RetryPolicy(max_attempts=6, base_delay=0.2),
            breaker=CircuitBreaker(failure_threshold=2, clock=clock),
            clock=clock,
            sleep=sleep,
            rng=random.Random(42),
            counters=counters,
            client_factory=lambda *a, **k: stub,
            **kwargs,
        )
        return client, stub, counters, sleeps, clock

    def test_busy_storm_never_trips_the_breaker(self):
        script = [PortalBusyError("shed", retry_after=0.05) for _ in range(4)]
        client, stub, counters, sleeps, _ = self._client(script)
        assert client.get_version() == 7
        assert client.breaker.state is BreakerState.CLOSED
        assert client.breaker.trip_count == 0
        assert counters.busy_backoffs == 4
        assert counters.retries == 0
        # The connection was never discarded: one stub, never closed.
        assert not stub.closed
        # Backoff honors the hint, jittered into [0.5, 1.5] * hint.
        assert len(sleeps) == 4
        assert all(0.025 <= pause <= 0.075 for pause in sleeps)

    def test_busy_without_hint_uses_the_retry_schedule(self):
        script = [PortalBusyError("shed", retry_after=None)]
        client, _, counters, sleeps, _ = self._client(script)
        assert client.get_version() == 7
        assert counters.busy_backoffs == 1
        # The decorrelated-jitter draw is uniform in [0.2, 0.6]; the busy
        # branch then jitters it multiplicatively in [0.5, 1.5].
        assert 0.1 <= sleeps[0] <= 0.9

    def test_busy_exhausting_attempts_propagates(self):
        script = [PortalBusyError("shed", retry_after=0.01) for _ in range(9)]
        client, _, counters, _, _ = self._client(script)
        with pytest.raises(PortalBusyError):
            client.get_version()
        assert client.breaker.trip_count == 0

    def test_counters_snapshot_includes_busy_backoffs(self):
        counters = ResilienceCounters()
        counters.busy_backoffs = 3
        assert counters.snapshot()["busy_backoffs"] == 3
