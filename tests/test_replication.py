"""Tests for primary/standby replication and health-ranked failover.

Covers the wire method (``get_state_delta``), the standby's WAL-tailing
sync loop with its regression guard and staleness accounting, the
failover client's ranking and fresh-before-stale policy, and the client
reconnect satellite (a portal restart mid-session costs one resend, not
an error).  Socket tests carry ``@pytest.mark.timeout`` per the repo's
fault-testing convention.
"""

import random

import pytest

from repro.apptracker.selection import P4PSelection, PeerInfo
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.network.library import abilene
from repro.observability import Telemetry
from repro.portal.client import Integrator, PortalClient, PortalClientError
from repro.portal.faults import FaultyPortal
from repro.portal.replication import FailoverPortalClient, StandbyReplica
from repro.portal.resilience import (
    CircuitBreaker,
    PortalUnavailable,
    ResilientPortalClient,
    RetryPolicy,
)
from repro.portal.server import PortalServer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_tracker():
    return ITracker(
        topology=abilene(),
        config=ITrackerConfig(mode=PriceMode.DYNAMIC, update_period=5.0),
    )


def bump(tracker, times=1, start=0.0, load=60.0):
    key = next(iter(tracker.topology.links))
    for i in range(times):
        tracker.observe_loads({key: load}, now=start + 5.0 * (i + 1))


def fast_retry():
    return RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, attempt_timeout=2.0)


def make_failover(endpoints, clock, **kwargs):
    kwargs.setdefault("retry", fast_retry())
    kwargs.setdefault("stale_ttl", 30.0)
    kwargs.setdefault("clock", clock)
    kwargs.setdefault("sleep", lambda _d: None)
    kwargs.setdefault(
        "breaker_factory",
        lambda: CircuitBreaker(failure_threshold=2, cooldown=10.0, clock=clock),
    )
    return FailoverPortalClient(endpoints, **kwargs)


@pytest.mark.timeout(30)
class TestStateDeltaWire:
    def test_get_state_delta_over_the_wire(self):
        tracker = make_tracker()
        bump(tracker, times=3)
        with PortalServer(tracker) as server:
            with PortalClient(*server.address) as client:
                delta = client.get_state_delta(since=-1)
        assert delta["version"] == tracker.version
        assert delta["epoch"] == tracker.epoch
        versions = [record["version"] for record in delta["records"]]
        assert versions == sorted(versions)
        assert versions[-1] == tracker.version
        # Records are self-contained: the newest carries the full vector.
        assert len(delta["records"][-1]["prices"]) == len(tracker.topology.links)

    def test_since_filters_records(self):
        tracker = make_tracker()
        bump(tracker, times=4)
        with PortalServer(tracker) as server:
            with PortalClient(*server.address) as client:
                delta = client.get_state_delta(since=tracker.version - 1)
        assert [r["version"] for r in delta["records"]] == [tracker.version]

    def test_apply_state_delta_regression_guard(self):
        leader, follower = make_tracker(), make_tracker()
        bump(leader, times=3)
        assert follower.apply_state_delta(leader.state_delta()) is True
        assert follower.version == leader.version
        prices = dict(follower.link_prices)
        # An amnesiac leader (fresh identity, lower version) is ignored.
        amnesiac = make_tracker()
        bump(amnesiac, times=1)
        assert follower.apply_state_delta(amnesiac.state_delta()) is False
        assert follower.version == leader.version
        assert follower.link_prices == prices


@pytest.mark.timeout(30)
class TestStandbyReplica:
    def test_sync_applies_and_tracks_staleness(self):
        clock = FakeClock()
        primary = make_tracker()
        bump(primary, times=2)
        standby = StandbyReplica(make_tracker(), ("127.0.0.1", 0), clock=clock)
        with PortalServer(primary) as server:
            standby.primary = server.address
            assert standby.staleness() is None  # never synced yet
            assert standby.sync() is True
            assert standby.follower.version == primary.version
            clock.advance(7.0)
            assert standby.staleness() == pytest.approx(7.0)
            standby.close()

    def test_sync_failure_is_swallowed_and_counted(self):
        clock = FakeClock()
        standby = StandbyReplica(make_tracker(), ("127.0.0.1", 1), clock=clock)
        assert standby.sync() is False  # nothing listens on port 1
        assert standby.sync_failures == 1
        assert standby.staleness() is None

    def test_standby_server_advertises_staleness(self):
        clock = FakeClock()
        primary = make_tracker()
        bump(primary, times=2)
        with PortalServer(primary) as server:
            standby = StandbyReplica(make_tracker(), server.address, clock=clock)
            assert standby.sync()
            clock.advance(3.0)
            with standby.serve() as replica_server:
                with PortalClient(*replica_server.address) as client:
                    info = client.get_version_info()
            standby.close()
        assert info["version"] == primary.version
        assert info["staleness"] == pytest.approx(3.0)
        # The primary's own get_version has no staleness field at all.
        with PortalServer(primary) as server:
            with PortalClient(*server.address) as client:
                assert "staleness" not in client.get_version_info()


class TestFailoverClientConstruction:
    def test_rejects_empty_endpoints(self):
        with pytest.raises(ValueError):
            FailoverPortalClient([])

    def test_rejects_shared_breaker(self):
        with pytest.raises(ValueError, match="breaker_factory"):
            FailoverPortalClient(
                [("127.0.0.1", 1)], breaker=CircuitBreaker()
            )


@pytest.mark.timeout(60)
class TestFailover:
    def test_partitioned_primary_fails_over_to_standby(self):
        """The acceptance test: primary partitioned -> standby serves a
        *fresh* view with bounded advertised staleness; the selection
        plane sees zero exceptions throughout."""
        clock = FakeClock()
        primary = make_tracker()
        bump(primary, times=3)
        with PortalServer(primary) as server, FaultyPortal(server.address) as proxy:
            standby = StandbyReplica(make_tracker(), server.address, clock=clock)
            assert standby.sync()
            with standby.serve() as replica_server:
                client = make_failover(
                    [proxy.address, replica_server.address], clock
                )
                views, health = {}, {}
                selector = P4PSelection(pdistances=views, portal_health=health)
                integrator = Integrator()
                as_number = abilene().node(abilene().aggregation_pids[0]).as_number
                integrator.add(as_number, client)

                def refresh():
                    views.clear()
                    views.update(integrator.views())
                    health.clear()
                    health.update(integrator.status_map())

                refresh()
                assert health[as_number] == "ok"
                assert client.active_endpoint == proxy.address

                proxy.down = True  # the partition
                clock.advance(5.0)
                refresh()
                assert health[as_number] == "ok"  # still fresh -- via standby
                assert client.active_endpoint == replica_server.address
                snapshot = client.last_good
                assert snapshot is not None and not snapshot.stale
                assert snapshot.origin_staleness is not None
                assert snapshot.origin_staleness <= clock.now

                # The selection plane keeps working on the standby's view.
                peers = [
                    PeerInfo(peer_id=i, pid=pid, as_number=as_number)
                    for i, pid in enumerate(abilene().aggregation_pids[:4])
                ]
                chosen = selector.select(peers[0], peers[1:], 2, random.Random(1))
                assert len(chosen) == 2
                assert selector.native_fallbacks == 0
                standby.close()

    def test_both_endpoints_down_serves_stale_then_unavailable(self):
        clock = FakeClock()
        primary = make_tracker()
        bump(primary, times=2)
        with PortalServer(primary) as server, FaultyPortal(server.address) as proxy:
            standby = StandbyReplica(make_tracker(), server.address, clock=clock)
            assert standby.sync()
            with standby.serve() as replica_server:
                standby_proxy = FaultyPortal(replica_server.address)
                client = make_failover(
                    [proxy.address, standby_proxy.address], clock, stale_ttl=20.0
                )
                assert not client.get_view().stale
                proxy.down = True
                standby_proxy.down = True
                clock.advance(5.0)
                snapshot = client.get_view()
                assert snapshot.stale
                assert snapshot.age == pytest.approx(5.0)
                clock.advance(40.0)  # past the stale TTL
                with pytest.raises(PortalUnavailable):
                    client.get_view()
                standby_proxy.close()
                standby.close()

    def test_ranked_prefers_declaration_order_when_equally_healthy(self):
        clock = FakeClock()
        client = FailoverPortalClient(
            [("127.0.0.1", 1), ("127.0.0.1", 2)],
            clock=clock,
            breaker_factory=lambda: CircuitBreaker(clock=clock),
        )
        assert client.ranked() == [0, 1]
        client.clients[0].breaker.record_failure()
        assert client.ranked() == [1, 0]  # fewer consecutive failures wins


@pytest.mark.timeout(30)
class TestClientReconnect:
    """Satellite: a portal restart mid-session is survived transparently."""

    def test_reconnect_after_server_restart(self):
        tracker = make_tracker()
        bump(tracker, times=1)
        telemetry = Telemetry()
        server = PortalServer(tracker)
        host, port = server.address
        client = PortalClient(host, port, telemetry=telemetry)
        assert client.get_version() == tracker.version
        server.close()  # the client now holds a dead socket
        server = PortalServer(tracker, host=host, port=port)
        try:
            assert client.get_version() == tracker.version  # resent once
        finally:
            client.close()
            server.close()
        assert telemetry.registry.counter("p4p_client_reconnects_total").value == 1

    def test_reconnect_failure_propagates_transport_error(self):
        tracker = make_tracker()
        server = PortalServer(tracker)
        client = PortalClient(*server.address)
        server.close()
        with pytest.raises(PortalClientError):
            client.get_version()
        client.close()

    def test_resilient_client_still_wraps_reconnect_path(self):
        """The resilience layer sees reconnect failures as transport
        errors (breaker fodder), not raw socket exceptions."""
        clock = FakeClock()
        tracker = make_tracker()
        bump(tracker, times=1)
        server = PortalServer(tracker)
        resilient = ResilientPortalClient(
            *server.address,
            retry=fast_retry(),
            breaker=CircuitBreaker(failure_threshold=3, clock=clock),
            clock=clock,
            sleep=lambda _d: None,
        )
        assert resilient.fetch_fresh().version == tracker.version
        server.close()
        with pytest.raises(PortalClientError):
            resilient.fetch_fresh()
        assert resilient.breaker.consecutive_failures > 0
        resilient.close()
