"""Smoke + shape tests for the experiment harnesses (small scales).

The benchmarks run the full-size experiments; these tests exercise the
same code paths quickly and pin the qualitative invariants.
"""

import pytest

from repro.experiments.comparison import (
    ComparisonConfig,
    build_p4p_tracker,
    make_population,
    run_comparison,
)
from repro.experiments.fig6_internet import (
    ABILENE_POPULATION,
    abilene_internet_topology,
    default_config,
    run_fig6,
)
from repro.experiments.fig7_fig8_sweep import run_sweep, sweep_config
from repro.experiments.fig9_liveswarms import run_fig9
from repro.experiments.fig10_interdomain import interdomain_topology
from repro.experiments.sec8_swarms import run_sec8
from repro.experiments.table1_topologies import format_table1, run_table1
from repro.network.library import PROTECTED_LINK, abilene
from repro.network.routing import RoutingTable


class TestComparisonHarness:
    def test_population_is_deterministic(self):
        topo = abilene()
        config = ComparisonConfig(n_peers=20, rng_seed=5)
        peers_a, seeds_a = make_population(topo, config)
        peers_b, seeds_b = make_population(topo, config)
        assert [p.pid for p in peers_a] == [p.pid for p in peers_b]
        assert seeds_a[0].pid == seeds_b[0].pid

    def test_unknown_scheme_rejected(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        from repro.experiments.comparison import run_scheme

        with pytest.raises(ValueError):
            run_scheme(topo, routing, ComparisonConfig(n_peers=5), "bogus")

    def test_p4p_tracker_covers_all_ases(self):
        topo = abilene(as_number=123)
        tracker = build_p4p_tracker(topo, ComparisonConfig())
        assert set(tracker.itrackers) == {123}

    def test_run_comparison_fixes_common_bottleneck(self):
        topo = abilene_internet_topology()
        config = ComparisonConfig(
            n_peers=20, neighbors=6, join_window=10.0, rng_seed=3,
            completion_quantum=0.1,
        )
        outcomes = run_comparison(topo, config, schemes=("native", "p4p"))
        assert outcomes["native"].bottleneck_link == outcomes["p4p"].bottleneck_link


class TestFig6:
    def test_internet_topology_hot_link(self):
        topo = abilene_internet_topology(background_mlu=0.9)
        utilizations = {
            key: link.background / link.capacity for key, link in topo.links.items()
        }
        hottest = max(utilizations, key=utilizations.get)
        assert hottest in (PROTECTED_LINK, tuple(reversed(PROTECTED_LINK)))
        assert utilizations[hottest] == pytest.approx(0.9)

    def test_small_run_has_all_schemes(self):
        fig6 = run_fig6(n_peers=16, n_runs=1)
        assert set(fig6.outcomes) == {"native", "localized", "p4p"}
        for scheme in fig6.outcomes:
            assert len(fig6.cdf(scheme)) == 16

    def test_multi_run_aggregates_clients(self):
        fig6 = run_fig6(n_peers=10, n_runs=2)
        assert len(fig6.cdf("native")) == 20

    def test_invalid_runs_rejected(self):
        with pytest.raises(ValueError):
            run_fig6(n_peers=10, n_runs=0)


class TestSweep:
    def test_points_cover_sizes(self):
        topo = abilene_internet_topology()
        sweep = run_sweep(
            topo, swarm_sizes=(10, 20), schemes=("native", "p4p"),
            placement_weights=ABILENE_POPULATION,
        )
        assert [point.swarm_size for point in sweep.points] == [10, 20]
        assert set(sweep.timelines) == {"native", "p4p"}

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(abilene(), swarm_sizes=())

    def test_normalized_series_bounded_for_native(self):
        topo = abilene_internet_topology()
        sweep = run_sweep(topo, swarm_sizes=(10, 15), schemes=("native",))
        assert all(v <= 1.0 + 1e-9 for _, v in sweep.normalized_series("native"))

    def test_sweep_config_batch_arrival(self):
        assert sweep_config(100).join_window == 0.0


class TestFig9:
    def test_small_streaming_comparison(self):
        fig9 = run_fig9(n_clients=10, duration=60.0)
        assert fig9.native.total_blocks == fig9.p4p.total_blocks
        assert fig9.mean_backbone_mb("native") >= 0
        assert 0 <= fig9.throughput_ratio() < 10


class TestFig10Topology:
    def test_partition_and_estimates(self):
        topo, estimates = interdomain_topology(history_intervals=120)
        assert len(topo.interdomain_links) == 4
        assert set(estimates) == {link.key for link in topo.interdomain_links}
        assert all(v >= 0 for v in estimates.values())
        # Estimates are installed on the links.
        for link in topo.interdomain_links:
            assert link.virtual_capacity == pytest.approx(estimates[link.key])


class TestTable1:
    def test_rows(self):
        rows = run_table1()
        names = [row.network for row in rows]
        assert names == ["Abilene", "ISP-A", "ISP-B", "ISP-C"]

    def test_format(self):
        text = format_table1(run_table1())
        assert "Abilene" in text and "ISP-C" in text


class TestSec8:
    def test_tail_matches_paper_within_factor_two(self):
        result = run_sec8(n_swarms=20_000)
        assert result.within_factor_two

    def test_model_tail_close_to_empirical(self):
        result = run_sec8(n_swarms=20_000)
        assert result.empirical_tail == pytest.approx(result.model_tail, abs=0.005)
