"""Tests for background-traffic generation."""

import numpy as np
import pytest

from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.network.traffic import (
    INTERVAL_SECONDS,
    INTERVALS_PER_DAY,
    DiurnalProfile,
    TrafficMatrix,
    apply_background,
    generate_volume_series,
    scale_background_to_utilization,
)


class TestDiurnalProfile:
    def test_peak_at_peak_hour(self):
        profile = DiurnalProfile(mean_mbps=100.0, peak_to_trough=3.0, peak_hour=20.0)
        rates = [profile.rate_at(i) for i in range(INTERVALS_PER_DAY)]
        peak_interval = int(20.0 / 24.0 * INTERVALS_PER_DAY)
        assert rates.index(max(rates)) == peak_interval

    def test_peak_to_trough_ratio(self):
        profile = DiurnalProfile(mean_mbps=100.0, peak_to_trough=4.0)
        rates = [profile.rate_at(i) for i in range(INTERVALS_PER_DAY)]
        assert max(rates) / min(rates) == pytest.approx(4.0, rel=1e-3)

    def test_daily_mean(self):
        profile = DiurnalProfile(mean_mbps=250.0, peak_to_trough=2.0)
        rates = [profile.rate_at(i) for i in range(INTERVALS_PER_DAY)]
        assert np.mean(rates) == pytest.approx(250.0, rel=1e-3)

    def test_weekend_scaling(self):
        profile = DiurnalProfile(weekend_factor=0.5)
        weekday = profile.rate_at(0)
        weekend = profile.rate_at(5 * INTERVALS_PER_DAY)
        assert weekend == pytest.approx(0.5 * weekday)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(mean_mbps=-1.0)
        with pytest.raises(ValueError):
            DiurnalProfile(peak_to_trough=0.5)


class TestVolumeSeries:
    def test_length(self):
        series = generate_volume_series(DiurnalProfile(), 100)
        assert series.shape == (100,)

    def test_deterministic_for_seed(self):
        profile = DiurnalProfile()
        a = generate_volume_series(profile, 50, seed=3)
        b = generate_volume_series(profile, 50, seed=3)
        assert np.allclose(a, b)

    def test_noise_free_matches_rate(self):
        profile = DiurnalProfile(mean_mbps=100.0, noise_sigma=0.0)
        series = generate_volume_series(profile, 10)
        expected = np.array([profile.rate_at(i) * INTERVAL_SECONDS for i in range(10)])
        assert np.allclose(series, expected)

    def test_positive(self):
        series = generate_volume_series(DiurnalProfile(), 2000, seed=1)
        assert np.all(series > 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            generate_volume_series(DiurnalProfile(), 0)


class TestTrafficMatrix:
    def test_gravity_total(self):
        topo = abilene()
        matrix = TrafficMatrix.gravity(topo, total_mbps=1000.0, seed=0)
        assert matrix.total() == pytest.approx(1000.0)

    def test_gravity_covers_all_pairs(self):
        topo = abilene()
        matrix = TrafficMatrix.gravity(topo, total_mbps=10.0)
        n = len(topo.aggregation_pids)
        assert len(matrix.demands) == n * (n - 1)

    def test_gravity_with_explicit_weights(self):
        topo = abilene()
        weights = {pid: 1.0 for pid in topo.aggregation_pids}
        matrix = TrafficMatrix.gravity(topo, total_mbps=110.0, weights=weights)
        values = list(matrix.demands.values())
        assert max(values) == pytest.approx(min(values))

    def test_apply_background_loads_links(self):
        topo = abilene()
        table = RoutingTable.build(topo)
        matrix = TrafficMatrix.gravity(topo, total_mbps=1000.0, seed=0)
        apply_background(topo, matrix, table)
        total_bg = sum(link.background for link in topo.links.values())
        assert total_bg >= matrix.total()  # multi-hop routes count repeatedly

    def test_scale_background(self):
        topo = abilene()
        table = RoutingTable.build(topo)
        apply_background(topo, TrafficMatrix.gravity(topo, 1000.0, seed=0), table)
        scale_background_to_utilization(topo, 0.5)
        max_util = max(link.background / link.capacity for link in topo.links.values())
        assert max_util == pytest.approx(0.5)

    def test_scale_requires_existing_background(self):
        with pytest.raises(ValueError):
            scale_background_to_utilization(abilene(), 0.5)

    def test_scale_rejects_bad_target(self):
        with pytest.raises(ValueError):
            scale_background_to_utilization(abilene(), 1.5)
