"""Tests for the weighted-simplex projection (p-distance update step)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimization.projection import project_weighted_simplex, uniform_price


def vector_pairs(min_size=1, max_size=40):
    """(q, c) pairs with positive weights c."""
    return st.integers(min_value=min_size, max_value=max_size).flatmap(
        lambda n: st.tuples(
            st.lists(
                st.floats(min_value=-50, max_value=50, allow_nan=False),
                min_size=n,
                max_size=n,
            ),
            st.lists(
                st.floats(min_value=0.1, max_value=100, allow_nan=False),
                min_size=n,
                max_size=n,
            ),
        )
    )


class TestProjection:
    def test_point_on_simplex_is_fixed(self):
        c = np.array([1.0, 2.0, 3.0])
        p = np.array([0.2, 0.1, 0.2])  # c @ p = 1
        projected = project_weighted_simplex(p, c)
        assert np.allclose(projected, p, atol=1e-9)

    def test_uniform_weights_reduce_to_plain_simplex(self):
        q = np.array([0.5, 0.5, 0.5])
        c = np.ones(3)
        projected = project_weighted_simplex(q, c)
        assert np.allclose(projected, [1 / 3, 1 / 3, 1 / 3])

    def test_negative_coordinates_clipped(self):
        q = np.array([-5.0, 10.0])
        c = np.array([1.0, 1.0])
        projected = project_weighted_simplex(q, c)
        assert projected[0] == 0.0
        assert projected[1] == pytest.approx(1.0)

    def test_single_coordinate(self):
        projected = project_weighted_simplex(np.array([7.0]), np.array([4.0]))
        assert projected[0] == pytest.approx(0.25)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            project_weighted_simplex(np.ones(3), np.ones(2))

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            project_weighted_simplex(np.ones(2), np.array([1.0, 0.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            project_weighted_simplex(np.zeros(0), np.zeros(0))

    @settings(max_examples=200)
    @given(vector_pairs())
    def test_feasibility(self, pair):
        q, c = np.array(pair[0]), np.array(pair[1])
        p = project_weighted_simplex(q, c)
        assert np.all(p >= 0)
        assert float(c @ p) == pytest.approx(1.0, abs=1e-8)

    @settings(max_examples=100)
    @given(vector_pairs(min_size=2, max_size=15))
    def test_optimality_against_random_feasible_points(self, pair):
        """No random feasible point is closer to q than the projection."""
        q, c = np.array(pair[0]), np.array(pair[1])
        p = project_weighted_simplex(q, c)
        best = float(np.sum((p - q) ** 2))
        rng = np.random.default_rng(0)
        for _ in range(20):
            candidate = rng.uniform(0, 1, size=q.shape)
            candidate /= float(c @ candidate)
            assert float(np.sum((candidate - q) ** 2)) >= best - 1e-7

    @settings(max_examples=100)
    @given(vector_pairs())
    def test_idempotent(self, pair):
        q, c = np.array(pair[0]), np.array(pair[1])
        p = project_weighted_simplex(q, c)
        again = project_weighted_simplex(p, c)
        assert np.allclose(p, again, atol=1e-7)


class TestUniformPrice:
    def test_is_feasible(self):
        c = np.array([2.0, 3.0, 5.0])
        p = uniform_price(c)
        assert float(c @ p) == pytest.approx(1.0)

    def test_uniform(self):
        p = uniform_price(np.array([1.0, 9.0]))
        assert p[0] == p[1]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            uniform_price(np.array([1.0, -1.0]))
