"""Distributed tracing and SLOs: context propagation, assembly, burn rates.

Four layers, mirroring the pipeline:

* **wire** -- :class:`TraceContext` round-trips through the optional
  ``trace`` envelope and tolerates every malformed shape (tracing must
  never fail a request);
* **tracer** -- deterministic trace ids, head sampling, auto-parenting
  through the active span, remote parents via ``start_child``;
* **assembly** -- per-process buffers join into sorted causal trees with
  a bit-deterministic canonical JSON export (golden file + double run);
* **end to end** -- real sockets with injected faults: the scripted
  scenario's reconnect/retry/breaker/stale events land on the right
  spans, and server-side dispatch spans parent under the caller's
  context even across a byzantine proxy.

Plus the SLO tracker (burn-rate math, registry series, dashboard
section) and the fuzz-fixture ``trace`` key (format /2) staying
backward compatible with /1 fixtures.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.fuzz.fuzzer import (
    FIXTURE_FORMAT,
    FIXTURE_FORMATS,
    Fixture,
    load_fixture,
)
from repro.network.library import abilene
from repro.observability.assembler import (
    assemble_traces,
    canonical_json,
    critical_path,
    export_document,
    export_traces,
    format_trace_tree,
    slowest,
    tree_has_error,
)
from repro.observability.dashboard import render_dashboard, render_slo_table
from repro.observability.registry import MetricsRegistry
from repro.observability.slo import DEFAULT_PORTAL_SLOS, SLO, SLOTracker
from repro.observability.telemetry import Telemetry
from repro.observability.tracing import (
    NullTraceBuffer,
    Span,
    TraceBuffer,
    TraceContext,
    Tracer,
    active_span,
)
from repro.portal import protocol
from repro.portal.faults import Fault, FaultKind, FaultSchedule, FaultyPortal
from repro.portal.resilience import (
    CircuitBreaker,
    PortalUnavailable,
    ResilientPortalClient,
    RetryPolicy,
)
from repro.portal.server import PortalServer
from repro.simulator.traced import run_traced_scenario

GOLDEN = Path(__file__).parent / "golden"
FUZZ_FIXTURES = Path(__file__).parent / "fixtures" / "fuzz"


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- wire context ----------------------------------------------------------


class TestTraceContext:
    def test_round_trips_through_wire_form(self):
        context = TraceContext(trace_id="app-000001", span_ref="app:7", sampled=False)
        assert TraceContext.from_wire(context.to_wire()) == context

    def test_sampled_defaults_true_on_the_wire(self):
        parsed = TraceContext.from_wire({"trace_id": "t", "span_ref": "a:1"})
        assert parsed is not None and parsed.sampled is True

    @pytest.mark.parametrize(
        "document",
        [
            None,
            "not-a-dict",
            [],
            {},
            {"trace_id": "t"},
            {"span_ref": "a:1"},
            {"trace_id": "", "span_ref": "a:1"},
            {"trace_id": "t", "span_ref": ""},
            {"trace_id": 7, "span_ref": "a:1"},
            {"trace_id": "t", "span_ref": ["a", 1]},
        ],
        ids=[
            "none", "string", "list", "empty", "no-ref", "no-id",
            "blank-id", "blank-ref", "int-id", "list-ref",
        ],
    )
    def test_malformed_envelopes_parse_to_none(self, document):
        assert TraceContext.from_wire(document) is None

    def test_attach_trace_rides_beside_params(self):
        message = protocol.request("get_version")
        envelope = {"trace_id": "t", "span_ref": "a:1", "sampled": True}
        assert protocol.attach_trace(message, envelope) is message
        assert message["trace"] == envelope
        assert message["method"] == "get_version"
        # The envelope is a sibling of params, so schema validation
        # (which only sees params) is untouched.
        protocol.validate_params("get_version", message.get("params") or {})


# -- tracer ----------------------------------------------------------------


class TestTracer:
    def test_trace_ids_are_deterministic_counters(self):
        buffer = TraceBuffer(clock=FakeClock(), namespace="app")
        tracer = Tracer(buffer)
        first = tracer.start_trace("client.call")
        second = tracer.start_trace("client.call")
        assert first.trace_id == "app-000001"
        assert second.trace_id == "app-000002"
        assert first.attributes["sampled"] is True

    def test_sample_rate_zero_marks_roots_unsampled(self):
        buffer = TraceBuffer(clock=FakeClock())
        tracer = Tracer(buffer, sample_rate=0.0)
        span = tracer.start_trace("client.call")
        assert span.attributes["sampled"] is False

    def test_partial_sampling_is_seeded(self):
        def decisions(seed):
            tracer = Tracer(
                TraceBuffer(clock=FakeClock()), sample_rate=0.5, seed=seed
            )
            return [
                tracer.start_trace("client.call").attributes["sampled"]
                for _ in range(32)
            ]

        assert decisions(7) == decisions(7)
        assert True in decisions(7) and False in decisions(7)

    def test_start_child_parents_remotely(self):
        buffer = TraceBuffer(clock=FakeClock(), namespace="portal")
        tracer = Tracer(buffer)
        context = TraceContext(trace_id="app-000001", span_ref="app:3", sampled=False)
        span = tracer.start_child("portal.dispatch", context)
        assert span.trace_id == "app-000001"
        assert span.parent_id is None
        assert span.attributes["remote_parent"] == "app:3"
        assert span.attributes["sampled"] is False

    def test_context_for_qualifies_the_span_ref(self):
        buffer = TraceBuffer(clock=FakeClock(), namespace="app")
        tracer = Tracer(buffer)
        span = tracer.start_trace("client.call")
        context = tracer.context_for(span)
        assert context == TraceContext(
            trace_id=span.trace_id, span_ref=f"app:{span.span_id}", sampled=True
        )

    def test_context_for_flat_span_is_none(self):
        buffer = TraceBuffer(clock=FakeClock())
        tracer = Tracer(buffer)
        flat = buffer.start("itracker.price_update")
        assert tracer.context_for(flat) is None

    def test_trace_activates_and_auto_parents(self):
        buffer = TraceBuffer(clock=FakeClock())
        tracer = Tracer(buffer)
        with tracer.trace("resilient.get_view") as outer:
            assert active_span(buffer) is outer
            child = buffer.start("client.call")
            assert child.parent_id == outer.span_id
            assert child.trace_id == outer.trace_id
            assert child.attributes["sampled"] is True
        assert active_span(buffer) is None
        assert outer.end is not None

    def test_activation_is_scoped_to_the_buffer(self):
        ours = TraceBuffer(clock=FakeClock(), namespace="a")
        theirs = TraceBuffer(clock=FakeClock(), namespace="b")
        with Tracer(ours).trace("resilient.get_view"):
            # Parent ids are buffer-local: another buffer must not
            # auto-parent under our span.
            assert active_span(theirs) is None
            stranger = theirs.start("client.call")
            assert stranger.parent_id is None

    def test_trace_tags_errors_and_reraises(self):
        buffer = TraceBuffer(clock=FakeClock())
        tracer = Tracer(buffer)
        with pytest.raises(RuntimeError):
            with tracer.trace("resilient.fetch"):
                raise RuntimeError("boom")
        (span,) = buffer.snapshot()
        assert span.attributes["error"] == "RuntimeError"
        assert span.end is not None

    def test_event_lands_on_the_active_span_only(self):
        buffer = TraceBuffer(clock=FakeClock())
        tracer = Tracer(buffer)
        tracer.event("retry")  # no active span: dropped, no error
        with tracer.trace("resilient.fetch") as span:
            tracer.event("retry", attempt=2)
        assert [event["name"] for event in span.events] == ["retry"]
        assert span.events[0]["attributes"] == {"attempt": 2}

    def test_null_buffer_swallows_events(self):
        buffer = NullTraceBuffer()
        span = buffer.start("client.call")
        buffer.add_event(span, "retry")
        assert span.events == []
        assert buffer.snapshot() == []


# -- assembly and export ---------------------------------------------------


def _two_process_buffers():
    clock = FakeClock()
    client = TraceBuffer(clock=clock, namespace="app")
    server = TraceBuffer(clock=clock, namespace="portal")
    tracer = Tracer(client)
    remote = Tracer(server)
    with tracer.trace("client.call") as root:
        clock.advance(0.010)
        context = tracer.context_for(root)
        dispatch = remote.start_child("portal.dispatch", context)
        clock.advance(0.005)
        handle = server.start("itracker.handle", parent=dispatch)
        clock.advance(0.002)
        server.finish(handle)
        server.finish(dispatch)
        clock.advance(0.001)
    return client, server, root


class TestAssembler:
    def test_joins_local_and_remote_parents(self):
        client, server, root = _two_process_buffers()
        (tree,) = assemble_traces(
            {"app": client.snapshot(), "portal": server.snapshot()}
        )
        assert tree["name"] == "client.call"
        assert tree["ref"] == f"app:{root.span_id}"
        (dispatch,) = tree["children"]
        assert dispatch["name"] == "portal.dispatch"
        (handle,) = dispatch["children"]
        assert handle["name"] == "itracker.handle"
        assert handle["children"] == []

    def test_flat_spans_stay_out_of_trees(self):
        buffer = TraceBuffer(clock=FakeClock())
        buffer.finish(buffer.start("itracker.price_update"))
        assert assemble_traces({"local": buffer.snapshot()}) == []

    def test_missing_parent_promotes_to_root(self):
        span = Span(
            name="portal.dispatch",
            span_id=9,
            parent_id=None,
            start=1.0,
            end=2.0,
            trace_id="app-000001",
            attributes={"remote_parent": "app:404"},
        )
        (tree,) = assemble_traces({"portal": [span]})
        assert tree["ref"] == "portal:9"

    def test_export_policy_keeps_sampled_or_error_trees(self):
        def tree(sampled, error=False):
            attributes = {"sampled": sampled}
            if error:
                attributes["error"] = "RuntimeError"
            return {
                "name": "client.call",
                "ref": "app:1",
                "trace_id": "t",
                "start": 0.0,
                "end": 1.0,
                "duration": 1.0,
                "attributes": attributes,
                "events": [],
                "children": [],
            }

        kept = export_traces(
            [tree(True), tree(False), tree(False, error=True)]
        )
        assert [t["attributes"].get("error") is not None for t in kept] == [
            False,
            True,
        ]
        assert tree_has_error(tree(False, error=True))
        assert not tree_has_error(tree(True))

    def test_canonical_json_is_bit_stable(self):
        client, server, _ = _two_process_buffers()
        buffers = {"app": client.snapshot(), "portal": server.snapshot()}
        first = canonical_json(export_document(assemble_traces(buffers)))
        second = canonical_json(export_document(assemble_traces(buffers)))
        assert first == second
        assert first.endswith("\n")
        assert json.loads(first)["format"] == "p4p-trace-export/1"

    def test_critical_path_follows_latest_finisher(self):
        client, server, _ = _two_process_buffers()
        (tree,) = assemble_traces(
            {"app": client.snapshot(), "portal": server.snapshot()}
        )
        assert [node["name"] for node in critical_path(tree)] == [
            "client.call",
            "portal.dispatch",
            "itracker.handle",
        ]

    def test_slowest_ranks_by_root_duration(self):
        def tree(trace_id, duration):
            return {
                "name": "client.call",
                "ref": f"app:{trace_id}",
                "trace_id": trace_id,
                "start": 0.0,
                "end": duration,
                "duration": duration,
                "attributes": {},
                "events": [],
                "children": [],
            }

        trees = [tree("a", 0.1), tree("b", 0.5), tree("c", 0.3)]
        assert [t["trace_id"] for t in slowest(trees, 2)] == ["b", "c"]

    def test_format_trace_tree_renders_spans_and_events(self):
        client, server, root = _two_process_buffers()
        client.add_event(root, "retry", attempt=2)
        (tree,) = assemble_traces(
            {"app": client.snapshot(), "portal": server.snapshot()}
        )
        text = format_trace_tree(tree)
        assert "client.call" in text.splitlines()[0]
        assert "* retry" in text and "attempt=2" in text
        assert "`-- itracker.handle" in text
        # Bookkeeping attributes stay out of the operator view.
        assert "remote_parent" not in text and "sampled" not in text


# -- SLOs ------------------------------------------------------------------


class TestSLO:
    def test_objective_and_window_are_validated(self):
        with pytest.raises(ValueError):
            SLO(name="x", method="*", objective=1.0)
        with pytest.raises(ValueError):
            SLO(name="x", method="*", objective=0.5, window=0)

    def test_duplicate_slo_names_rejected(self):
        registry = MetricsRegistry(clock=FakeClock())
        slo = SLO(name="dup", method="*", objective=0.9)
        with pytest.raises(ValueError):
            SLOTracker(registry, [slo, slo])

    def test_latency_threshold_makes_slow_successes_bad(self):
        slo = SLO(name="lat", method="*", objective=0.95, latency_threshold=0.1)
        assert not slo.is_bad(0.05, error=False)
        assert slo.is_bad(0.25, error=False)
        assert slo.is_bad(0.05, error=True)

    def test_burn_rate_math_over_the_rolling_window(self):
        registry = MetricsRegistry(clock=FakeClock())
        tracker = SLOTracker(
            registry, [SLO(name="avail", method="*", objective=0.9, window=4)]
        )
        for error in (False, False, False, True):
            tracker.observe("get_view", 0.0, error)
        # 1 bad of 4 with a 10% budget: burning 2.5x the budget.
        assert tracker.burn_rates() == {"avail": pytest.approx(2.5)}
        # The window rolls: four clean requests push the bad one out.
        for _ in range(4):
            tracker.observe("get_view", 0.0, False)
        assert tracker.burn_rates() == {"avail": 0.0}

    def test_method_scoped_slo_ignores_other_methods(self):
        registry = MetricsRegistry(clock=FakeClock())
        tracker = SLOTracker(
            registry,
            [SLO(name="views", method="get_view", objective=0.5, window=8)],
        )
        tracker.observe("get_version", 0.0, error=True)
        assert tracker.burn_rates() == {"views": 0.0}
        tracker.observe("get_view", 0.0, error=True)
        assert tracker.burn_rates()["views"] > 0.0

    def test_registry_series_track_observations(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        tracker = SLOTracker(telemetry.registry, DEFAULT_PORTAL_SLOS)
        tracker.observe("get_view", 0.25, error=False)  # slow: bad for latency
        snapshot = telemetry.snapshot()
        by_name = {metric["name"]: metric for metric in snapshot["metrics"]}
        events = {
            (s["labels"]["slo"], s["labels"]["outcome"]): s["value"]
            for s in by_name["p4p_slo_events_total"]["samples"]
        }
        assert events[("portal-availability", "good")] == 1
        assert events[("portal-latency", "bad")] == 1
        budget = {
            s["labels"]["slo"]: s["value"]
            for s in by_name["p4p_slo_error_budget_remaining"]["samples"]
        }
        assert budget["portal-availability"] == 1.0
        assert budget["portal-latency"] == 0.0  # one of one bad: budget gone

    def test_dashboard_renders_slo_section(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        tracker = SLOTracker(telemetry.registry, DEFAULT_PORTAL_SLOS)
        tracker.observe("get_view", 0.0, error=False)
        lines = render_slo_table(telemetry.snapshot())
        assert any("portal-availability" in line for line in lines)
        assert any("100.0%" in line for line in lines)
        dashboard = render_dashboard(telemetry.snapshot())
        assert "-- SLOs --" in dashboard

    def test_dashboard_without_slos_says_so(self):
        telemetry = Telemetry(clock=FakeClock())
        assert render_slo_table(telemetry.snapshot()) == ["  (no SLOs declared)"]


# -- server integration ----------------------------------------------------


@pytest.fixture
def itracker():
    return ITracker(
        topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
    )


class TestServerPropagation:
    def _traced_request(self, method, **params):
        buffer = TraceBuffer(clock=FakeClock(), namespace="app")
        tracer = Tracer(buffer)
        span = tracer.start_trace("client.call", method=method)
        message = protocol.request(method, **params)
        protocol.attach_trace(message, tracer.context_for(span).to_wire())
        return buffer, span, message

    @pytest.mark.timeout(30)
    def test_dispatch_parents_under_the_wire_context(self, itracker):
        telemetry = Telemetry(clock=FakeClock(), trace_namespace="portal")
        with PortalServer(itracker, telemetry=telemetry) as server:
            _, span, message = self._traced_request("get_version")
            response = server.dispatch(message)
            assert "result" in response
            (dispatch,) = telemetry.traces.by_name("portal.dispatch")
            assert dispatch.trace_id == span.trace_id
            assert dispatch.attributes["remote_parent"] == f"app:{span.span_id}"
            assert dispatch.attributes["method"] == "get_version"
            assert dispatch.end is not None
            (handle,) = telemetry.traces.by_name("itracker.handle")
            assert handle.parent_id == dispatch.span_id
            assert handle.trace_id == span.trace_id
            # Dispatch deactivated its span on the way out.
            assert active_span(telemetry.traces) is None

    @pytest.mark.timeout(30)
    def test_error_responses_tag_the_dispatch_span(self, itracker):
        telemetry = Telemetry(clock=FakeClock(), trace_namespace="portal")
        with PortalServer(itracker, telemetry=telemetry) as server:
            _, _, message = self._traced_request("no_such_method")
            response = server.dispatch(message)
            assert "error" in response
            (dispatch,) = telemetry.traces.by_name("portal.dispatch")
            assert dispatch.attributes["error"] == "response-error"

    @pytest.mark.timeout(30)
    def test_malformed_envelope_serves_untraced(self, itracker):
        telemetry = Telemetry(clock=FakeClock(), trace_namespace="portal")
        with PortalServer(itracker, telemetry=telemetry) as server:
            message = protocol.request("get_version")
            protocol.attach_trace(message, {"trace_id": 42})
            response = server.dispatch(message)
            assert "result" in response
            assert telemetry.traces.by_name("portal.dispatch") == []

    @pytest.mark.timeout(30)
    def test_dispatch_feeds_the_default_slos(self, itracker):
        telemetry = Telemetry(clock=FakeClock(), trace_namespace="portal")
        with PortalServer(itracker, telemetry=telemetry) as server:
            server.dispatch(protocol.request("get_version"))
            snapshot = telemetry.snapshot()
            names = {metric["name"] for metric in snapshot["metrics"]}
            assert "p4p_slo_burn_rate" in names
            assert "p4p_slo_events_total" in names

    @pytest.mark.timeout(30)
    def test_null_telemetry_stays_instrument_free(self, itracker):
        from repro.observability.telemetry import NULL_TELEMETRY

        with PortalServer(itracker, telemetry=NULL_TELEMETRY) as server:
            _, _, message = self._traced_request("get_version")
            response = server.dispatch(message)
            assert "result" in response
            assert server._slo is None
            assert not server._trace_enabled
            assert len(NULL_TELEMETRY.traces) == 0

    @pytest.mark.timeout(30)
    def test_byzantine_proxy_forwards_the_envelope(self, itracker):
        """A mutating proxy corrupts payloads, not causality: the server
        span still parents under the caller and the rejection events land
        on the caller's spans."""
        from repro.portal.faults import negate_distances

        def negate_views(result):
            # Only the view payload has distances; version documents and
            # friends pass through so the walk reaches get_pdistances.
            if isinstance(result, dict) and "distances" in result:
                return negate_distances(result)
            return result

        telemetry = Telemetry(clock=FakeClock(), trace_namespace="portal")
        clock = FakeClock()
        client_telemetry = Telemetry(clock=clock, trace_namespace="app")
        tracer = Tracer(client_telemetry.traces)
        schedule = FaultSchedule(
            default=Fault(FaultKind.BYZANTINE, mutate=negate_views)
        )
        with PortalServer(itracker, telemetry=telemetry) as server:
            with FaultyPortal(server.address, schedule=schedule) as proxy:
                client = ResilientPortalClient(
                    *proxy.address,
                    retry=RetryPolicy(
                        max_attempts=2,
                        base_delay=0.0,
                        max_delay=0.0,
                        attempt_timeout=5.0,
                    ),
                    breaker=CircuitBreaker(
                        failure_threshold=3, cooldown=30.0, clock=clock
                    ),
                    stale_ttl=60.0,
                    clock=clock,
                    sleep=lambda _d: None,
                    rng=random.Random(0),
                    tracer=tracer,
                )
                try:
                    with pytest.raises(PortalUnavailable):
                        client.get_view()
                finally:
                    client.close()
        (root,) = client_telemetry.traces.by_name("resilient.get_view")
        assert "validation-rejected" in [e["name"] for e in root.events]
        (fetch,) = client_telemetry.traces.by_name("resilient.fetch")
        assert fetch.attributes["error"] == "ViewValidationError"
        dispatches = telemetry.traces.by_name("portal.dispatch")
        assert dispatches, "server saw no traced requests through the proxy"
        assert {span.trace_id for span in dispatches} == {root.trace_id}


# -- the scripted end-to-end scenario --------------------------------------


def _spans_by_name(tree):
    index = {}

    def walk(node):
        index.setdefault(node["name"], []).append(node)
        for child in node["children"]:
            walk(child)

    walk(tree)
    return index


def _event_names(node):
    return [event["name"] for event in node["events"]]


class TestTracedScenario:
    @pytest.fixture(scope="class")
    def document(self):
        return run_traced_scenario(seed=0)

    @pytest.mark.timeout(60)
    def test_outcomes_walk_the_degradation_ladder(self, document):
        assert document["outcomes"] == ["fresh", "stale", "stale", "fresh"]
        assert len(document["traces"]) == 4

    @pytest.mark.timeout(60)
    def test_faulted_fetch_records_resilience_events_in_causal_order(
        self, document
    ):
        spans = _spans_by_name(document["traces"][0])
        assert document["traces"][0]["name"] == "resilient.get_view"
        # The mid-frame resets surface as a reconnect on a client.call
        # span and an escalation to the retry loop on resilient.fetch.
        reconnects = [
            call for call in spans["client.call"]
            if "reconnect" in _event_names(call)
        ]
        assert reconnects
        (fetch,) = spans["resilient.fetch"]
        events = _event_names(fetch)
        assert "retry" in events and "backoff" in events
        # Cross-process: every server dispatch span hangs under one of
        # the client's call spans, with the handler span inside it.
        call_refs = {call["ref"] for call in spans["client.call"]}
        dispatch_parents = {
            call["ref"]
            for call in spans["client.call"]
            for child in call["children"]
            if child["name"] == "portal.dispatch"
        }
        assert dispatch_parents and dispatch_parents <= call_refs
        assert spans["portal.dispatch"]
        for dispatch in spans["portal.dispatch"]:
            assert [c["name"] for c in dispatch["children"]] == ["itracker.handle"]

    @pytest.mark.timeout(60)
    def test_outage_trips_breaker_then_serves_stale(self, document):
        second = _spans_by_name(document["traces"][1])
        assert "stale-serve" in _event_names(second["resilient.get_view"][0])
        assert "retry" in _event_names(second["resilient.fetch"][0])
        third = _spans_by_name(document["traces"][2])
        # The open breaker rejects inside the fetch attempt; the stale
        # fallback happens back in get_view.
        assert _event_names(third["resilient.fetch"][0]) == ["breaker-open"]
        assert "stale-serve" in _event_names(third["resilient.get_view"][0])
        # Recovery: the last trace is a clean fresh fetch.
        last = _spans_by_name(document["traces"][3])
        assert _event_names(last["resilient.get_view"][0]) == []
        assert "portal.dispatch" in last

    @pytest.mark.timeout(60)
    def test_export_matches_golden_file(self, document):
        assert canonical_json(document) == (GOLDEN / "trace_tree.json").read_text()

    @pytest.mark.timeout(120)
    def test_two_seeded_runs_export_identical_bytes(self, document):
        again = run_traced_scenario(seed=0)
        assert canonical_json(again) == canonical_json(document)


# -- fuzz fixture format bump ----------------------------------------------


class TestFixtureTraceKey:
    def test_checked_in_v1_fixtures_still_load(self):
        paths = sorted(FUZZ_FIXTURES.glob("*.json"))
        assert paths, "expected checked-in fuzz fixtures"
        for path in paths:
            fixture = load_fixture(str(path))
            assert fixture.trace is None

    def test_v2_fixture_with_trace_loads(self):
        path = sorted(FUZZ_FIXTURES.glob("*.json"))[0]
        document = json.loads(path.read_text())
        document["format"] = FIXTURE_FORMAT
        document["trace"] = {"name": "chaos.tick", "children": []}
        fixture = Fixture.from_json(document)
        assert fixture.trace == {"name": "chaos.tick", "children": []}

    def test_unknown_format_rejected(self):
        path = sorted(FUZZ_FIXTURES.glob("*.json"))[0]
        document = json.loads(path.read_text())
        document["format"] = "p4p-fuzz-fixture/99"
        with pytest.raises(ValueError, match="unsupported fixture format"):
            Fixture.from_json(document)

    def test_non_dict_trace_rejected(self):
        path = sorted(FUZZ_FIXTURES.glob("*.json"))[0]
        document = json.loads(path.read_text())
        document["format"] = FIXTURE_FORMAT
        document["trace"] = ["not", "a", "tree"]
        with pytest.raises(ValueError, match="trace must be an object"):
            Fixture.from_json(document)

    def test_current_format_is_the_newest_accepted(self):
        assert FIXTURE_FORMAT == FIXTURE_FORMATS[-1]
        assert "p4p-fuzz-fixture/1" in FIXTURE_FORMATS
