"""End-to-end integration tests across subsystem boundaries.

These are the "whole pipeline" checks: portal wire protocol feeding a
P4P appTracker feeding a swarm simulation over a provider topology, and
the decomposition loop driving an iTracker whose views the appTracker
serves.
"""

import random

import pytest

from repro.apptracker.selection import P4PSelection, PeerInfo
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.objectives import MinMaxUtilization
from repro.experiments.fig6_internet import abilene_internet_topology
from repro.network.library import PROTECTED_LINK, abilene
from repro.network.routing import RoutingTable
from repro.portal.client import PortalClient
from repro.portal.server import PortalServer
from repro.simulator.swarm import SwarmConfig, SwarmSimulation
from repro.workloads.placement import place_peers


class TestPortalDrivenSwarm:
    """A swarm whose selector consumes views fetched over the wire."""

    def test_swarm_with_remote_views(self):
        topo = abilene_internet_topology()
        routing = RoutingTable.build(topo)
        itracker = ITracker(
            topology=topo,
            config=ITrackerConfig(mode=PriceMode.DYNAMIC, step_size=0.002),
            objective=MinMaxUtilization(),
        )
        itracker.warm_start()
        as_number = topo.node("SEAT").as_number

        with PortalServer(itracker) as server:
            host, port = server.address
            with PortalClient(host, port) as client:
                view = client.get_pdistances()
        selector = P4PSelection(pdistances={as_number: view})

        rng = random.Random(2)
        peers = place_peers(topo, 24, rng, first_id=1)
        seed = PeerInfo(peer_id=0, pid="CHIN", as_number=as_number)
        config = SwarmConfig(
            file_mbit=16.0, block_mbit=2.0, neighbors=8, join_window=10.0,
            access_up_mbps=10.0, access_down_mbps=20.0, seed_up_mbps=50.0,
            completion_quantum=0.05, rng_seed=4,
        )
        sim = SwarmSimulation(topo, routing, config, selector, peers, [seed])
        result = sim.run(until=5000.0)
        assert len(result.completion_times) == 24

    def test_remote_view_matches_local(self):
        itracker = ITracker(
            topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        local = itracker.get_pdistances()
        with PortalServer(itracker) as server:
            with PortalClient(*server.address) as client:
                remote = client.get_pdistances()
        for src in local.pids:
            for dst in local.pids:
                assert remote.distance(src, dst) == pytest.approx(
                    local.distance(src, dst)
                )


class TestControlLoopProtectsLink:
    """Dynamic prices steer a live swarm away from the protected trunk."""

    def test_dynamic_beats_frozen_prices(self):
        from repro.apptracker.bittorrent import P4PBitTorrentTracker
        from repro.experiments.comparison import ComparisonConfig, make_population

        topo = abilene_internet_topology(background_mlu=0.9)
        routing = RoutingTable.build(topo)
        config = ComparisonConfig(
            n_peers=60, neighbors=12, join_window=120.0, rng_seed=9,
            completion_quantum=0.1,
        )
        peers, seeds = make_population(topo, config)

        def run(with_hook: bool) -> float:
            itracker = ITracker(
                topology=topo,
                config=ITrackerConfig(mode=PriceMode.DYNAMIC, step_size=0.002),
                objective=MinMaxUtilization(),
            )
            # No warm start: prices begin uniform, so only the feedback
            # loop can learn to avoid the hot link.
            tracker = P4PBitTorrentTracker(
                itrackers={topo.node("SEAT").as_number: itracker}
            )
            sim = SwarmSimulation(
                topo,
                routing,
                config.swarm_config(rng_seed=11),
                tracker.selector,
                peers,
                seeds,
                tracker_hook=tracker.tracker_hook if with_hook else None,
            )
            result = sim.run(until=1_000_000.0)
            return result.link_traffic_mbit.get(PROTECTED_LINK, 0.0)

        frozen = run(with_hook=False)
        adaptive = run(with_hook=True)
        # The feedback loop reduces protected-link usage relative to
        # frozen uniform prices (allow slack for stochastic swarms).
        assert adaptive <= frozen * 1.1

    def test_observe_loads_concentrates_price_on_hot_link(self):
        topo = abilene()
        itracker = ITracker(
            topology=topo,
            config=ITrackerConfig(mode=PriceMode.DYNAMIC, step_size=0.001),
        )
        hot = PROTECTED_LINK
        initial = dict(itracker.link_prices)
        for _ in range(3):
            itracker.observe_loads({hot: 9000.0})
        final = itracker.link_prices
        # All price mass migrates to the only loaded link; the simplex
        # constraint caps it at 1 / c_hot.
        assert final[hot] > initial[hot]
        assert final[hot] == pytest.approx(1.0 / topo.links[hot].capacity)
        cold = ("SEAT", "SNVA")
        assert final[cold] < initial[cold]
        assert final[cold] == pytest.approx(0.0, abs=1e-12)


class TestGossipDistribution:
    """Sec. 3: peers help distribute iTracker information via gossip."""

    def test_view_reaches_whole_swarm_with_one_portal_query(self):
        import random as rnd

        from repro.portal.gossip import GossipSwarm, VersionedView

        itracker = ITracker(
            topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        swarm = GossipSwarm(fanout=3)
        for peer_id in range(80):
            swarm.add_peer(peer_id)
        # One peer queries the portal; everyone else learns by gossip.
        fetched = VersionedView(
            version=itracker.version, view=itracker.get_pdistances()
        )
        swarm.seed(0, fetched)
        rounds = swarm.run_until_converged(rnd.Random(1))
        assert swarm.coverage(itracker.version) == 1.0
        assert rounds < 20
        # Any peer can now select with the gossiped view.
        view = swarm.peers[79].held.view
        assert view.distance("SEAT", "NYCM") == pytest.approx(
            itracker.get_pdistances().distance("SEAT", "NYCM")
        )
