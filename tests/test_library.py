"""Tests for the Abilene topology (Table 1 row: 11 nodes, 28 links)."""

import pytest

from repro.network.library import (
    ABILENE_CAPACITY_MBPS,
    PROTECTED_LINK,
    abilene,
)
from repro.network.routing import RoutingTable


class TestAbilene:
    def test_table1_node_and_link_counts(self):
        topo = abilene()
        assert len(topo.nodes) == 11
        assert len(topo.links) == 28

    def test_links_are_symmetric(self):
        topo = abilene()
        for (src, dst) in topo.links:
            assert topo.has_link(dst, src)

    def test_capacities(self):
        topo = abilene()
        assert all(
            link.capacity == ABILENE_CAPACITY_MBPS for link in topo.links.values()
        )

    def test_protected_link_exists(self):
        topo = abilene()
        assert topo.has_link(*PROTECTED_LINK)

    def test_distances_are_realistic_miles(self):
        topo = abilene()
        for link in topo.links.values():
            assert 100 < link.distance < 1600

    def test_connected(self):
        topo = abilene()
        table = RoutingTable.build(topo)
        assert all(
            table.has_route(a, b) for a in topo.pids for b in topo.pids
        )

    def test_coast_to_coast_is_multi_hop(self):
        table = RoutingTable.build(abilene())
        assert table.hop_count("SEAT", "NYCM") >= 3

    def test_all_aggregation_pids(self):
        topo = abilene()
        assert set(topo.aggregation_pids) == set(topo.pids)

    def test_as_number_applied(self):
        topo = abilene(as_number=42)
        assert all(node.as_number == 42 for node in topo.nodes.values())
