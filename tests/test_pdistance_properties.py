"""Property tests for the p-distance view transformations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pdistance import PDistanceMap


def view_strategy(min_pids=2, max_pids=6):
    return st.integers(min_value=min_pids, max_value=max_pids).flatmap(
        lambda n: st.lists(
            st.floats(min_value=0.0, max_value=1e4),
            min_size=n * (n - 1),
            max_size=n * (n - 1),
        ).map(lambda values: _build_view(n, values))
    )


def _build_view(n, values):
    pids = tuple(f"P{i}" for i in range(n))
    distances = {}
    index = 0
    for a in pids:
        for b in pids:
            if a == b:
                continue
            distances[(a, b)] = values[index]
            index += 1
    return PDistanceMap(pids=pids, distances=distances)


class TestRankProperties:
    @settings(max_examples=60)
    @given(view_strategy())
    def test_ranks_preserve_strict_order(self, view):
        ranks = view.to_ranks()
        for src in view.pids:
            row = view.row(src)
            rank_row = ranks.row(src)
            for a in row:
                for b in row:
                    if row[a] < row[b] - 1e-9:
                        assert rank_row[a] < rank_row[b]

    @settings(max_examples=60)
    @given(view_strategy())
    def test_ranks_are_positive_integers_starting_at_one(self, view):
        ranks = view.to_ranks()
        for src in view.pids:
            values = list(ranks.row(src).values())
            assert min(values) == 1.0
            assert all(float(v).is_integer() and v >= 1 for v in values)

    @settings(max_examples=40)
    @given(view_strategy())
    def test_rank_idempotence_on_orders(self, view):
        """Ranking twice yields the same ranks (ranks of ranks = ranks)."""
        once = view.to_ranks()
        twice = once.to_ranks()
        assert once.distances == twice.distances


class TestPerturbationProperties:
    @settings(max_examples=60)
    @given(view_strategy(), st.floats(min_value=0.0, max_value=0.49),
           st.integers(min_value=0, max_value=100))
    def test_noise_bounded_and_nonnegative(self, view, noise, seed):
        noisy = view.perturbed(noise, seed=seed)
        for pair, value in view.distances.items():
            assert noisy.distances[pair] >= 0
            assert abs(noisy.distances[pair] - value) <= noise * value + 1e-9

    @settings(max_examples=30)
    @given(view_strategy(), st.integers(min_value=0, max_value=50))
    def test_zero_noise_is_identity(self, view, seed):
        assert view.perturbed(0.0, seed=seed).distances == view.distances

    @settings(max_examples=30)
    @given(view_strategy(), st.integers(min_value=0, max_value=50))
    def test_same_seed_same_noise(self, view, seed):
        a = view.perturbed(0.1, seed=seed)
        b = view.perturbed(0.1, seed=seed)
        assert a.distances == b.distances


class TestRestrictionProperties:
    @settings(max_examples=60)
    @given(view_strategy(min_pids=3))
    def test_restriction_preserves_distances(self, view):
        keep = list(view.pids[:2])
        sub = view.restricted_to(keep)
        assert set(sub.pids) == set(keep)
        for src in keep:
            for dst in keep:
                if src != dst:
                    assert sub.distance(src, dst) == view.distance(src, dst)

    @settings(max_examples=30)
    @given(view_strategy(min_pids=3))
    def test_restriction_then_ranks_consistent(self, view):
        """Restricting and ranking commute on the surviving pairs' order."""
        keep = list(view.pids[:3])
        ranked_sub = view.restricted_to(keep).to_ranks()
        for src in keep:
            row = {dst: view.distance(src, dst) for dst in keep if dst != src}
            rank_row = ranked_sub.row(src)
            for a in row:
                for b in row:
                    if row[a] < row[b] - 1e-9:
                        assert rank_row[a] < rank_row[b]
