"""Tests for the portal resilience layer (no sockets, no wall clock).

Everything here runs on an injected clock, sleep, and seeded RNG against a
scriptable in-process portal stub -- backoff, breaker, stale-view, and
validation behaviour must be exactly reproducible.
"""

import random
from collections import deque

import pytest

from repro.apptracker.selection import P4PSelection, PeerInfo, RandomSelection
from repro.core.pdistance import PDistanceMap
from repro.management.monitors import ResilienceCounters
from repro.portal.client import (
    DiscoveryError,
    Integrator,
    PortalClientError,
    PortalStatus,
    PortalTransportError,
    clear_registry,
    discover_itracker,
)
from repro.portal.resilience import (
    BreakerState,
    CircuitBreaker,
    PortalUnavailable,
    ResilientPortalClient,
    RetryPolicy,
    ValidationPolicy,
    ViewValidationError,
    validate_view,
)


def make_view(scale=1.0, pids=("A", "B", "C"), intra=0.0):
    distances = {}
    for i, src in enumerate(pids):
        distances[(src, src)] = intra
        for j, dst in enumerate(pids):
            if src != dst:
                distances[(src, dst)] = scale * (1.0 + abs(i - j))
    return PDistanceMap(pids=tuple(pids), distances=distances)


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds):
        self.now += seconds


class StubPortal:
    """Scriptable portal backend.  Each script entry answers one fetch:

    ("ok", view, version) | ("transport", msg) | ("refuse", msg) |
    ("error", msg) | ("badparse", msg).  An empty script serves
    ``self.healthy`` with an auto-incrementing version.
    """

    def __init__(self, healthy=None):
        self.script = deque()
        self.healthy = healthy if healthy is not None else make_view()
        self.version = 1
        self.connects = 0

    def push(self, *entries):
        self.script.extend(entries)

    def factory(self, host, port, timeout=5.0):
        if self.script and self.script[0][0] == "refuse":
            entry = self.script.popleft()
            raise OSError(entry[1])
        self.connects += 1
        return _StubClient(self)


class _StubClient:
    def __init__(self, portal):
        self.portal = portal
        self.closed = False

    def _peek(self):
        if not self.portal.script:
            return ("ok", self.portal.healthy, self.portal.version)
        return self.portal.script[0]

    def get_version(self):
        entry = self._peek()
        if entry[0] == "transport":
            self.portal.script.popleft()
            raise PortalTransportError(entry[1])
        if entry[0] == "error":
            self.portal.script.popleft()
            raise PortalClientError(entry[1])
        if entry[0] == "ok":
            return entry[2]
        return self.portal.version

    def get_pdistances(self, pids=None):
        if not self.portal.script:
            return self.portal.healthy
        entry = self.portal.script.popleft()
        if entry[0] == "transport":
            raise PortalTransportError(entry[1])
        if entry[0] == "badparse":
            raise ValueError(entry[1])
        return entry[1]

    def close(self):
        self.closed = True


def make_client(portal, clock, **kwargs):
    kwargs.setdefault(
        "retry", RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)
    )
    kwargs.setdefault(
        "breaker", CircuitBreaker(failure_threshold=3, cooldown=30.0, clock=clock)
    )
    kwargs.setdefault("stale_ttl", 60.0)
    kwargs.setdefault("counters", ResilienceCounters())
    return ResilientPortalClient(
        "stub",
        0,
        clock=clock,
        sleep=clock.sleep,
        rng=random.Random(7),
        client_factory=portal.factory,
        **kwargs,
    )


class TestRetryPolicy:
    def test_delay_count_and_bounds(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=1.0)
        delays = list(policy.delays(random.Random(1)))
        assert len(delays) == 4
        assert all(0.1 <= d <= 1.0 for d in delays)

    def test_deterministic_under_seed(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.05, max_delay=2.0)
        first = list(policy.delays(random.Random(42)))
        second = list(policy.delays(random.Random(42)))
        assert first == second

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.5, max_delay=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trip_count == 1
        assert not breaker.allow()

    def test_half_open_probe_then_recovery(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()
        assert breaker.probe_count == 1
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED


class TestValidateView:
    def test_accepts_sane_view(self):
        validate_view(make_view())

    def test_rejects_non_finite(self):
        view = PDistanceMap(
            pids=("A", "B"),
            distances={
                ("A", "B"): float("inf"),
                ("B", "A"): 1.0,
                ("A", "A"): 0.0,
                ("B", "B"): 0.0,
            },
        )
        with pytest.raises(ViewValidationError, match="non-finite"):
            validate_view(view)

    def test_rejects_missing_rows(self):
        view = PDistanceMap(
            pids=("A", "B"), distances={("A", "B"): 1.0}
        )
        with pytest.raises(ViewValidationError, match="missing distance row"):
            validate_view(view)

    def test_rejects_intra_above_inter(self):
        view = make_view(intra=5.0)
        with pytest.raises(ViewValidationError, match="intra-PID"):
            validate_view(view)
        # ... unless the check is disabled (the UK DSL case of Sec. 8).
        validate_view(
            view, ValidationPolicy(require_intra_le_inter=False)
        )

    def test_rejects_pid_set_mismatch(self):
        policy = ValidationPolicy(expected_pids=("A", "B", "C", "D"))
        with pytest.raises(ViewValidationError, match="PID set mismatch"):
            validate_view(make_view(), policy)

    def test_rejects_empty_pid_set_unconditionally(self):
        empty = PDistanceMap(pids=(), distances={})
        with pytest.raises(ViewValidationError, match="empty PID set"):
            validate_view(empty)
        # Even with every optional check disabled: an empty view can only
        # degrade every session, so it is never acceptable.
        permissive = ValidationPolicy(
            require_finite=False,
            require_full_mesh=False,
            require_intra_le_inter=False,
            max_churn_factor=None,
        )
        with pytest.raises(ViewValidationError, match="empty PID set"):
            validate_view(empty, permissive)

    def test_rejects_negative_distance(self):
        # PDistanceMap itself refuses negatives at construction, so build
        # a valid view and scribble the shared distances dict afterwards
        # (what a byzantine wire payload smuggled past parsing looks like).
        view = make_view()
        view.distances[("A", "B")] = -3.0
        with pytest.raises(ViewValidationError, match="negative"):
            validate_view(view)

    def test_rejects_excess_churn(self):
        previous = make_view(scale=1.0)
        churned = make_view(scale=100.0)
        with pytest.raises(ViewValidationError, match="churn"):
            validate_view(
                churned, ValidationPolicy(max_churn_factor=10.0), previous=previous
            )
        # Mild drift passes.
        validate_view(
            make_view(scale=2.0),
            ValidationPolicy(max_churn_factor=10.0),
            previous=previous,
        )


class TestResilientPortalClient:
    def test_lazy_connect(self):
        portal = StubPortal()
        client = make_client(portal, FakeClock())
        assert portal.connects == 0
        client.get_view()
        assert portal.connects == 1

    def test_retries_transient_failure(self):
        portal = StubPortal()
        portal.push(("transport", "connection reset"))
        clock = FakeClock()
        client = make_client(portal, clock)
        snapshot = client.get_view()
        assert not snapshot.stale
        assert client.counters.retries == 1
        assert clock.sleeps  # backoff went through the injected sleep

    def test_backoff_is_deterministic(self):
        sleeps = []
        for _ in range(2):
            portal = StubPortal()
            portal.push(
                ("transport", "reset"), ("transport", "reset"), ("transport", "reset")
            )
            clock = FakeClock()
            client = make_client(
                portal,
                clock,
                retry=RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.5),
                breaker=CircuitBreaker(failure_threshold=10, clock=clock),
            )
            client.get_view()
            sleeps.append(tuple(clock.sleeps))
        assert sleeps[0] == sleeps[1] and len(sleeps[0]) == 3

    def test_reconnects_after_broken_socket(self):
        portal = StubPortal()
        portal.push(("transport", "reset"))
        client = make_client(portal, FakeClock())
        client.get_view()
        # first connection broke, retry opened a second one
        assert portal.connects == 2

    def test_stale_view_served_with_age(self):
        portal = StubPortal()
        clock = FakeClock()
        client = make_client(portal, clock)
        fresh = client.get_view()
        assert not fresh.stale and fresh.version == 1
        clock.advance(20.0)
        portal.push(("transport", "down"), ("transport", "down"))
        snapshot = client.get_view()
        assert snapshot.stale
        assert snapshot.age == pytest.approx(20.0, abs=1.0)
        assert snapshot.view is fresh.view
        assert client.counters.stale_serves == 1

    def test_connect_refused_also_falls_back(self):
        portal = StubPortal()
        clock = FakeClock()
        client = make_client(portal, clock)
        client.get_view()
        # The live socket breaks, and every reconnect is refused.
        portal.push(("transport", "reset"), ("refuse", "connection refused"))
        assert client.get_view().stale

    def test_unavailable_past_ttl(self):
        portal = StubPortal()
        clock = FakeClock()
        client = make_client(portal, clock, stale_ttl=10.0)
        client.get_view()
        clock.advance(11.0)
        portal.push(("transport", "down"), ("transport", "down"))
        with pytest.raises(PortalUnavailable):
            client.get_view()
        assert client.counters.unavailable == 1

    def test_unavailable_when_never_fetched(self):
        portal = StubPortal()
        portal.push(("transport", "down"), ("transport", "down"))
        client = make_client(portal, FakeClock())
        with pytest.raises(PortalUnavailable):
            client.get_view()

    def test_breaker_opens_and_blocks_connections(self):
        portal = StubPortal()
        clock = FakeClock()
        client = make_client(portal, clock)
        client.get_view()
        connects_before_outage = portal.connects
        portal.push(*[("transport", "down")] * 4)
        client.get_view()  # 2 failed attempts
        client.get_view()  # third failure trips the breaker mid-call
        assert client.breaker_state == "open"
        assert client.counters.breaker_trips == 1
        # While open, the stale view is served without touching the network.
        connects_when_open = portal.connects
        assert client.get_view().stale
        assert portal.connects == connects_when_open
        assert connects_when_open > connects_before_outage

    def test_half_open_probe_recovers(self):
        portal = StubPortal()
        clock = FakeClock()
        client = make_client(portal, clock)
        client.get_view()
        portal.push(*[("transport", "down")] * 3)
        client.get_view()
        client.get_view()
        assert client.breaker_state == "open"
        portal.version = 2
        clock.advance(31.0)  # past the cooldown; portal healthy again
        snapshot = client.get_view()
        assert not snapshot.stale and snapshot.version == 2
        assert client.breaker_state == "closed"
        assert client.counters.breaker_probes >= 1

    def test_validation_rejection_falls_back_to_stale(self):
        portal = StubPortal()
        clock = FakeClock()
        client = make_client(portal, clock)
        good = client.get_view()
        bad = PDistanceMap(pids=("A", "B"), distances={("A", "B"): 1.0})
        portal.push(("ok", bad, 2), ("transport", "down"))
        snapshot = client.get_view()
        assert snapshot.stale and snapshot.view is good.view
        assert client.counters.validation_rejections == 1

    def test_topology_disagreeing_view_pins_to_stale_not_selector_crash(self):
        """A view whose PID map disagrees with the provisioned network map
        is rejected; the client pins to the stale cache and the selection
        plane keeps running on the last-known-good topology."""
        portal = StubPortal()
        clock = FakeClock()
        client = make_client(
            portal, clock, validation=ValidationPolicy(expected_pids=("A", "B", "C"))
        )
        good = client.get_view()
        # The iTracker re-provisions its PID map; the client's network map
        # has not caught up, so the advertised PIDs no longer match.
        renamed = make_view(pids=("A", "B", "Z"))
        portal.push(("ok", renamed, 2), ("transport", "down"))
        snapshot = client.get_view()
        assert snapshot.stale and snapshot.view is good.view
        assert client.counters.validation_rejections == 1
        # The stale view still drives selection without an exception.
        peer = PeerInfo(peer_id=0, pid="A", as_number=7)
        candidates = [
            PeerInfo(peer_id=i, pid=pid, as_number=7)
            for i, pid in enumerate(["A", "B", "C"], start=1)
        ]
        selector = P4PSelection(
            pdistances={7: snapshot.view}, portal_health={7: "stale"}
        )
        chosen = selector.select(peer, candidates, 2, random.Random(3))
        assert len(chosen) == 2
        assert selector.native_fallbacks == 0

    def test_byzantine_parse_error_counts_as_validation(self):
        portal = StubPortal()
        client = make_client(portal, FakeClock())
        client.get_view()
        portal.push(("badparse", "negative p-distance for ('A', 'B')"))
        portal.push(("transport", "down"))
        assert client.get_view().stale
        assert client.counters.validation_rejections == 1

    def test_churn_rejected_against_last_good(self):
        portal = StubPortal()
        client = make_client(portal, FakeClock())
        client.get_view()
        portal.push(("ok", make_view(scale=1000.0), 2), ("transport", "down"))
        snapshot = client.get_view()
        assert snapshot.stale
        assert client.counters.validation_rejections == 1

    def test_server_error_response_not_retried(self):
        portal = StubPortal()
        clock = FakeClock()
        client = make_client(portal, clock)
        client.get_view()
        portal.push(("error", "unknown key: 'SEAT'"))
        assert client.get_view().stale  # falls back, but...
        assert client.counters.retries == 0  # ...no retry storm
        assert client.breaker_state == "closed"  # and no breaker pressure

    def test_partial_view_restricted_locally(self):
        portal = StubPortal()
        client = make_client(portal, FakeClock())
        snapshot = client.get_view(pids=["A", "B"])
        assert set(snapshot.view.pids) == {"A", "B"}
        # The full view was cached, so a later outage still has fallback.
        portal.push(("transport", "down"), ("transport", "down"))
        assert set(client.get_view().view.pids) == {"A", "B", "C"}

    def test_get_pdistances_is_drop_in(self):
        portal = StubPortal()
        client = make_client(portal, FakeClock())
        view = client.get_pdistances()
        assert view.distance("A", "B") == 2.0


class TestIntegratorHealth:
    def test_tracks_ok_stale_unavailable(self):
        portal = StubPortal()
        clock = FakeClock()
        client = make_client(portal, clock, stale_ttl=10.0)
        integrator = Integrator()
        integrator.add(7, client)

        views = integrator.views()
        assert 7 in views
        assert integrator.health[7].status is PortalStatus.OK

        portal.push(*[("transport", "down")] * 8)
        views = integrator.views()
        assert 7 in views  # stale but served
        assert integrator.health[7].status is PortalStatus.STALE
        assert integrator.health[7].stale_age is not None

        clock.advance(11.0)
        views = integrator.views()
        assert 7 not in views
        assert integrator.health[7].status is PortalStatus.UNAVAILABLE
        assert integrator.health[7].consecutive_failures >= 1
        assert integrator.status_map() == {7: "unavailable"}

    def test_breaker_state_surfaces(self):
        portal = StubPortal()
        clock = FakeClock()
        client = make_client(portal, clock)
        integrator = Integrator()
        integrator.add(9, client)
        integrator.views()
        assert integrator.health[9].breaker_state == "closed"


class TestSelectionFallback:
    def _peers(self):
        client = PeerInfo(peer_id=0, pid="A", as_number=7)
        candidates = [
            PeerInfo(peer_id=i, pid=pid, as_number=7)
            for i, pid in enumerate(["A", "A", "B", "B", "C", "C"], start=1)
        ]
        return client, candidates

    def test_unavailable_as_uses_native(self):
        client, candidates = self._peers()
        selector = P4PSelection(
            pdistances={7: make_view()}, portal_health={7: "unavailable"}
        )
        chosen = selector.select(client, candidates, 4, random.Random(11))
        reference = RandomSelection().select(
            client, candidates, 4, random.Random(11)
        )
        assert chosen == reference
        assert selector.native_fallbacks == 1

    def test_ok_and_stale_keep_guidance(self):
        client, candidates = self._peers()
        for status in ("ok", "stale"):
            selector = P4PSelection(
                pdistances={7: make_view()}, portal_health={7: status}
            )
            selector.select(client, candidates, 4, random.Random(11))
            assert selector.native_fallbacks == 0

    def test_no_health_map_behaves_as_before(self):
        client, candidates = self._peers()
        selector = P4PSelection(pdistances={7: make_view()})
        chosen = selector.select(client, candidates, 4, random.Random(11))
        assert len(chosen) == 4
        assert selector.native_fallbacks == 0


class TestCounters:
    def test_snapshot_and_reset(self):
        counters = ResilienceCounters(retries=2, stale_serves=1)
        snap = counters.snapshot()
        assert snap["retries"] == 2 and snap["stale_serves"] == 1
        counters.reset()
        assert all(value == 0 for value in counters.snapshot().values())


class TestDiscovery:
    def test_unknown_domain_raises_named_error(self):
        clear_registry()
        with pytest.raises(DiscoveryError, match="nowhere.example"):
            discover_itracker("nowhere.example")
        # Still a PortalClientError, so existing handlers keep working.
        with pytest.raises(PortalClientError):
            discover_itracker("nowhere.example")
