"""Regression pins for the DET001 determinism fixes.

Each test locks in one source change made to satisfy the DET001 lint
rule (no unseeded RNGs, no wall-clock reads in replayable paths), so a
later edit that quietly reintroduces entropy fails here -- not just in
the linter.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.network.traffic import DiurnalProfile, generate_volume_series
from repro.observability.telemetry import Telemetry
from repro.portal.resilience import ResilientPortalClient, RetryPolicy
from repro.simulator.tcp import VectorizedFlowNetwork
from repro.workloads.swarms import SwarmPopulationModel


class TickingClock:
    """Deterministic perf-clock stand-in: +0.25 s per read."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.25
        return self.now


def test_resilient_client_default_rng_is_reproducible():
    """The default jitter RNG is seeded from the portal address."""
    first = ResilientPortalClient("portal.example", 6671)
    second = ResilientPortalClient("portal.example", 6671)
    policy = RetryPolicy(max_attempts=6)
    assert list(policy.delays(first._rng)) == list(policy.delays(second._rng))


def test_resilient_client_rngs_decorrelated_across_portals():
    """Different portal addresses must not share a jitter stream."""
    one = ResilientPortalClient("portal.example", 6671)
    other = ResilientPortalClient("portal.example", 6672)
    policy = RetryPolicy(max_attempts=6)
    assert list(policy.delays(one._rng)) != list(policy.delays(other._rng))


def test_resilient_client_explicit_rng_still_wins():
    client = ResilientPortalClient(
        "portal.example", 6671, rng=random.Random(99)
    )
    expected = list(RetryPolicy(max_attempts=4).delays(random.Random(99)))
    assert list(RetryPolicy(max_attempts=4).delays(client._rng)) == expected


def _run_engine(perf_clock) -> VectorizedFlowNetwork:
    telemetry = Telemetry(clock=lambda: 0.0)
    net = VectorizedFlowNetwork(telemetry=telemetry, perf_clock=perf_clock)
    bottleneck = net.add_link("bottleneck", 100.0)
    edge = net.add_link("edge", 50.0)
    net.start_flow([bottleneck], 100.0)
    net.start_flow([bottleneck, edge], 100.0)
    net.advance(1.0)
    net.start_flow([edge], 50.0)
    net.advance(2.0)
    return net


def test_vectorized_engine_solve_latency_uses_injected_clock():
    """``perf_clock`` drives the solve-latency histogram: each solve
    reads the clock exactly twice, so a +0.25 ticking clock must record
    exactly 0.25 s per solve."""
    net = _run_engine(TickingClock())
    child = net._m_latency
    assert child.count >= 2  # one solve per dirty advance
    assert child.sum == pytest.approx(0.25 * child.count)


def test_vectorized_engine_histograms_replay_identically():
    """Two runs with identical fake clocks export identical telemetry."""
    first = _run_engine(TickingClock())
    second = _run_engine(TickingClock())
    assert first._m_latency.count == second._m_latency.count
    assert first._m_latency.sum == second._m_latency.sum


def test_volume_series_reproducible_by_seed():
    profile = DiurnalProfile()
    first = generate_volume_series(profile, 288, seed=7)
    second = generate_volume_series(profile, 288, seed=7)
    np.testing.assert_array_equal(first, second)
    other = generate_volume_series(profile, 288, seed=8)
    assert not np.array_equal(first, other)


def test_swarm_population_reproducible_by_seed():
    model = SwarmPopulationModel()
    first = model.sample(200, random.Random(7))
    second = model.sample(200, random.Random(7))
    assert first == second
    assert first != model.sample(200, random.Random(8))
