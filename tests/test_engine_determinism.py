"""Determinism regression: both engines replay the Fig. 7/8 code path.

Two guarantees are pinned here, at reduced scale so the suite stays fast:

* same RNG seed, same engine, run twice -> *identical* results (no hidden
  global state, no dict-order or floating-accumulation drift);
* scalar vs vectorized engine, same RNG seed -> identical completion-time
  traces and link traffic.  The swarm protocol consumes randomness in
  event order, so this only holds because the vectorized engine reproduces
  the scalar engine's completion *ordering* exactly; the 0.1 s completion
  quantum of the sweep configuration absorbs any sub-ulp rate differences
  the incremental solves introduce.

This is the property that lets experiments flip ``engine="vectorized"``
(or ``$P4P_SIM_ENGINE=vectorized``) without perturbing a single figure.
"""

import os

import pytest

from repro.experiments.comparison import run_scheme
from repro.experiments.fig7_fig8_sweep import sweep_config
from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.simulator.swarm import SwarmConfig
from repro.simulator.tcp import ENGINE_ENV_VAR, make_flow_network, resolve_engine

N_PEERS = 48


@pytest.fixture(scope="module")
def scenario():
    topology = abilene()
    # Give the backbone P2P headroom the way the experiment topologies do.
    for link in topology.links.values():
        link.background = 0.3 * link.capacity
    return topology, RoutingTable.build(topology)


def _trace(topology, routing, scheme, engine, rng_seed=23):
    config = sweep_config(N_PEERS, rng_seed=rng_seed)
    config.engine = engine
    outcome = run_scheme(topology, routing, config, scheme)
    result = outcome.result
    return (
        sorted(result.completion_times.items()),
        sorted(result.finish_at.items()),
        sorted(result.link_traffic_mbit.items()),
    )


@pytest.mark.parametrize("scheme", ["native", "localized"])
def test_same_seed_same_engine_reproduces(scenario, scheme):
    topology, routing = scenario
    first = _trace(topology, routing, scheme, engine="vectorized")
    second = _trace(topology, routing, scheme, engine="vectorized")
    assert first == second


@pytest.mark.parametrize("scheme", ["native", "localized"])
def test_engines_produce_identical_traces(scenario, scheme):
    """The headline guarantee: flipping the engine changes nothing."""
    topology, routing = scenario
    scalar = _trace(topology, routing, scheme, engine="scalar")
    vector = _trace(topology, routing, scheme, engine="vectorized")
    assert scalar[0] == vector[0], "completion-time traces diverged"
    assert scalar[1] == vector[1], "absolute finish timestamps diverged"
    assert scalar[2] == vector[2], "per-link traffic diverged"


def test_seed_changes_the_outcome(scenario):
    """Sanity check that the traces above are not trivially constant."""
    topology, routing = scenario
    a = _trace(topology, routing, "native", engine="vectorized", rng_seed=23)
    b = _trace(topology, routing, "native", engine="vectorized", rng_seed=24)
    assert a != b


def test_env_var_selects_engine(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
    assert resolve_engine(None) == "scalar"
    monkeypatch.setenv(ENGINE_ENV_VAR, "vectorized")
    assert resolve_engine(None) == "vectorized"
    # Explicit choice wins over the environment.
    assert resolve_engine("scalar") == "scalar"
    net = make_flow_network()
    assert type(net).__name__ == "VectorizedFlowNetwork"
    monkeypatch.setenv(ENGINE_ENV_VAR, "nonsense")
    with pytest.raises(ValueError):
        resolve_engine(None)
    with pytest.raises(ValueError):
        SwarmConfig(engine="nonsense")
