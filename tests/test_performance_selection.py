"""Tests for performance-map combination and black-box selection (Sec. 4)."""

import random

import pytest

from repro.apptracker.performance import (
    BlackBoxSelection,
    CombinedSelection,
    PathPerformance,
    PerformanceMap,
    backoff_rate_hints,
)
from repro.apptracker.selection import PeerInfo, RandomSelection
from repro.core.pdistance import PDistanceMap


def flat_view(pids, overrides=None):
    distances = {}
    for a in pids:
        for b in pids:
            distances[(a, b)] = 0.0 if a == b else 1.0
    distances.update(overrides or {})
    return PDistanceMap(pids=tuple(pids), distances=distances)


def peers_at(spec):
    peers = []
    next_id = 0
    for count, pid in spec:
        for _ in range(count):
            peers.append(PeerInfo(peer_id=next_id, pid=pid, as_number=1))
            next_id += 1
    return peers


class TestPathPerformance:
    def test_badness_orders_sensibly(self):
        fast = PathPerformance(delay_ms=5.0, bandwidth_mbps=100.0, loss_rate=0.0)
        slow = PathPerformance(delay_ms=200.0, bandwidth_mbps=1.0, loss_rate=0.05)
        assert fast.badness() < slow.badness()

    def test_default_is_neutral(self):
        assert PathPerformance().badness() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PathPerformance(delay_ms=-1.0)
        with pytest.raises(ValueError):
            PathPerformance(bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            PathPerformance(loss_rate=1.0)


class TestCombinedSelection:
    def test_pure_network_weight_follows_pdistance(self):
        view = flat_view(["A", "B", "C"], {("A", "B"): 1.0, ("A", "C"): 10.0})
        perf = PerformanceMap()
        # Performance says C is great, network says B: weight 1.0 -> B wins.
        perf.set("A", "C", PathPerformance(delay_ms=1.0))
        perf.set("A", "B", PathPerformance(delay_ms=500.0))
        selector = CombinedSelection(pdistance=view, performance=perf, network_weight=1.0)
        client = PeerInfo(peer_id=99, pid="A", as_number=1)
        candidates = peers_at([(5, "B"), (5, "C")])
        chosen = selector.select(client, candidates, 5, random.Random(0))
        assert all(peer.pid == "B" for peer in chosen)

    def test_pure_performance_weight_ignores_pdistance(self):
        view = flat_view(["A", "B", "C"], {("A", "B"): 1.0, ("A", "C"): 10.0})
        perf = PerformanceMap()
        perf.set("A", "C", PathPerformance(delay_ms=1.0))
        perf.set("A", "B", PathPerformance(delay_ms=500.0))
        selector = CombinedSelection(pdistance=view, performance=perf, network_weight=0.0)
        client = PeerInfo(peer_id=99, pid="A", as_number=1)
        candidates = peers_at([(5, "B"), (5, "C")])
        chosen = selector.select(client, candidates, 5, random.Random(0))
        assert all(peer.pid == "C" for peer in chosen)

    def test_small_pool_returned_whole(self):
        view = flat_view(["A", "B"])
        selector = CombinedSelection(pdistance=view, performance=PerformanceMap())
        client = PeerInfo(peer_id=99, pid="A", as_number=1)
        candidates = peers_at([(2, "B")])
        assert len(selector.select(client, candidates, 10, random.Random(0))) == 2

    def test_unknown_pid_gets_neutral_network_score(self):
        view = flat_view(["A", "B"])
        selector = CombinedSelection(pdistance=view, performance=PerformanceMap())
        client = PeerInfo(peer_id=99, pid="A", as_number=1)
        candidates = peers_at([(3, "B"), (3, "GHOST")])
        chosen = selector.select(client, candidates, 4, random.Random(0))
        assert len(chosen) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            CombinedSelection(
                pdistance=flat_view(["A"]), performance=PerformanceMap(),
                network_weight=2.0,
            )


class TestBackoffHints:
    def test_cheap_paths_full_rate(self):
        view = flat_view(
            ["A", "B", "C", "D"],
            {("A", "B"): 1.0, ("A", "C"): 5.0, ("A", "D"): 9.0},
        )
        hints = backoff_rate_hints(view, "A", ["B", "C", "D"], full_rate_quantile=0.4)
        assert hints["B"] == 1.0
        assert hints["D"] < hints["C"] <= 1.0

    def test_floor_respected(self):
        view = flat_view(["A", "B", "C"], {("A", "B"): 1.0, ("A", "C"): 100.0})
        hints = backoff_rate_hints(view, "A", ["B", "C"], full_rate_quantile=0.0, floor=0.2)
        assert hints["C"] == pytest.approx(0.2)

    def test_uniform_distances_no_backoff(self):
        view = flat_view(["A", "B", "C"])
        hints = backoff_rate_hints(view, "A", ["B", "C"])
        assert all(value == 1.0 for value in hints.values())

    def test_empty(self):
        assert backoff_rate_hints(flat_view(["A"]), "A", []) == {}

    def test_validation(self):
        view = flat_view(["A", "B"])
        with pytest.raises(ValueError):
            backoff_rate_hints(view, "A", ["B"], full_rate_quantile=2.0)
        with pytest.raises(ValueError):
            backoff_rate_hints(view, "A", ["B"], floor=0.0)


class TestBlackBoxSelection:
    def test_multiple_attempts_lower_cost(self):
        view = flat_view(
            ["A", "B", "C"],
            {("A", "B"): 1.0, ("A", "C"): 50.0},
        )
        client = PeerInfo(peer_id=99, pid="A", as_number=1)
        candidates = peers_at([(10, "B"), (10, "C")])
        rng_single = random.Random(7)
        rng_multi = random.Random(7)
        single = BlackBoxSelection(
            inner=RandomSelection(), pdistance=view, attempts=1
        )
        multi = BlackBoxSelection(
            inner=RandomSelection(), pdistance=view, attempts=10
        )
        cost_single = single.total_cost(
            client, single.select(client, candidates, 6, rng_single)
        )
        cost_multi = multi.total_cost(
            client, multi.select(client, candidates, 6, rng_multi)
        )
        assert cost_multi <= cost_single

    def test_preserves_inner_contract(self):
        view = flat_view(["A", "B"])
        selector = BlackBoxSelection(
            inner=RandomSelection(), pdistance=view, attempts=3
        )
        client = PeerInfo(peer_id=99, pid="A", as_number=1)
        candidates = peers_at([(8, "B")])
        chosen = selector.select(client, candidates, 4, random.Random(1))
        assert len(chosen) == 4
        assert len({p.peer_id for p in chosen}) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            BlackBoxSelection(inner=RandomSelection(), pdistance=flat_view(["A"]), attempts=0)

    def test_statistical_improvement(self):
        """Over many requests, 10-attempt selection beats 1-attempt on
        average total p-distance (the Sec. 4 claim)."""
        view = flat_view(["A", "B", "C"], {("A", "B"): 1.0, ("A", "C"): 10.0})
        client = PeerInfo(peer_id=99, pid="A", as_number=1)
        candidates = peers_at([(6, "B"), (6, "C")])
        single_total = 0.0
        multi_total = 0.0
        for seed in range(30):
            single = BlackBoxSelection(inner=RandomSelection(), pdistance=view, attempts=1)
            multi = BlackBoxSelection(inner=RandomSelection(), pdistance=view, attempts=8)
            single_total += single.total_cost(
                client, single.select(client, candidates, 4, random.Random(seed))
            )
            multi_total += multi.total_cost(
                client, multi.select(client, candidates, 4, random.Random(1000 + seed))
            )
        assert multi_total < single_total
