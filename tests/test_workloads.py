"""Tests for workload generators: placement and swarm populations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.library import abilene
from repro.workloads.placement import peers_per_pid, place_peers
from repro.workloads.swarms import SwarmPopulationModel, fraction_above


class TestPlacement:
    def test_count(self):
        peers = place_peers(abilene(), 25, random.Random(0))
        assert len(peers) == 25

    def test_ids_consecutive(self):
        peers = place_peers(abilene(), 5, random.Random(0), first_id=10)
        assert [p.peer_id for p in peers] == [10, 11, 12, 13, 14]

    def test_as_numbers_from_topology(self):
        topo = abilene(as_number=777)
        peers = place_peers(topo, 5, random.Random(0))
        assert all(p.as_number == 777 for p in peers)

    def test_restricted_pids(self):
        peers = place_peers(abilene(), 20, random.Random(0), pids=["SEAT", "NYCM"])
        assert {p.pid for p in peers} <= {"SEAT", "NYCM"}

    def test_weights_bias_placement(self):
        topo = abilene()
        weights = {pid: 0.0 for pid in topo.aggregation_pids}
        weights["NYCM"] = 1.0
        peers = place_peers(topo, 30, random.Random(0), weights=weights)
        assert all(p.pid == "NYCM" for p in peers)

    def test_zero_weights_rejected(self):
        topo = abilene()
        weights = {pid: 0.0 for pid in topo.aggregation_pids}
        with pytest.raises(ValueError):
            place_peers(topo, 5, random.Random(0), weights=weights)

    def test_unknown_pid_rejected(self):
        with pytest.raises(KeyError):
            place_peers(abilene(), 5, random.Random(0), pids=["NOPE"])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            place_peers(abilene(), -1, random.Random(0))

    def test_histogram(self):
        peers = place_peers(abilene(), 40, random.Random(1))
        histogram = peers_per_pid(peers)
        assert sum(histogram.values()) == 40


class TestSwarmPopulation:
    def test_sample_count_and_bounds(self):
        model = SwarmPopulationModel(max_size=1000)
        sizes = model.sample(200, random.Random(0))
        assert len(sizes) == 200
        assert all(1 <= size <= 1000 for size in sizes)

    def test_deterministic(self):
        model = SwarmPopulationModel(max_size=500)
        assert model.sample(50, random.Random(3)) == model.sample(50, random.Random(3))

    def test_tail_fraction_monotone(self):
        model = SwarmPopulationModel(max_size=10_000)
        assert model.tail_fraction(10) > model.tail_fraction(100)

    def test_default_calibration_near_paper(self):
        """The default alpha reproduces the piratebay tail (~0.72%)."""
        model = SwarmPopulationModel()
        tail = model.tail_fraction(100)
        assert 0.005 < tail < 0.010

    def test_small_swarms_dominate(self):
        model = SwarmPopulationModel(max_size=10_000)
        sizes = model.sample(2000, random.Random(5))
        assert fraction_above(sizes, 10) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            SwarmPopulationModel(alpha=1.0)
        with pytest.raises(ValueError):
            SwarmPopulationModel(max_size=0)
        with pytest.raises(ValueError):
            SwarmPopulationModel().sample(-1, random.Random(0))
        with pytest.raises(ValueError):
            fraction_above([], 10)
        with pytest.raises(ValueError):
            SwarmPopulationModel().tail_fraction(-1)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=1.2, max_value=3.0))
    def test_heavier_tails_for_smaller_alpha(self, alpha):
        lighter = SwarmPopulationModel(alpha=alpha + 0.3, max_size=5000)
        heavier = SwarmPopulationModel(alpha=alpha, max_size=5000)
        assert heavier.tail_fraction(50) >= lighter.tail_fraction(50)
