"""Tests for the Pando field-test simulation."""

import random

import pytest

from repro.simulator.fieldtest import (
    EXTERNAL_AS,
    EXTERNAL_PID,
    FieldTest,
    FieldTestConfig,
    build_field_topology,
    flash_crowd_arrivals,
)


def small_config(**kwargs):
    defaults = dict(n_clients=80, days=3, day_seconds=120.0, neighbors=6)
    defaults.update(kwargs)
    return FieldTestConfig(**defaults)


class TestConfig:
    def test_horizon(self):
        config = FieldTestConfig(days=10, day_seconds=400.0)
        assert config.horizon == 4000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FieldTestConfig(isp_fraction=1.5)
        with pytest.raises(ValueError):
            FieldTestConfig(n_clients=1)
        with pytest.raises(ValueError):
            FieldTestConfig(days=0)


class TestTopology:
    def test_external_node_added(self):
        topo, classes = build_field_topology(small_config())
        assert EXTERNAL_PID in topo.nodes
        assert topo.node(EXTERNAL_PID).as_number == EXTERNAL_AS

    def test_interdomain_links_marked(self):
        topo, _ = build_field_topology(small_config())
        interdomain = topo.interdomain_links
        assert len(interdomain) == 6  # 3 edges x 2 directions
        assert all(EXTERNAL_PID in link.key for link in interdomain)

    def test_classes_cover_isp_pids(self):
        topo, classes = build_field_topology(small_config())
        isp_pids = [pid for pid in topo.aggregation_pids if pid != EXTERNAL_PID]
        assert set(classes) == set(isp_pids)
        assert set(classes.values()) <= {"fttp", "dsl"}


class TestArrivals:
    def test_count_and_range(self):
        config = small_config()
        times = flash_crowd_arrivals(config, 50, random.Random(0))
        assert len(times) == 50
        assert all(0 <= t <= config.horizon for t in times)

    def test_flash_days_dominate(self):
        config = small_config(days=6, flash_days=3, flash_multiplier=5.0)
        times = flash_crowd_arrivals(config, 2000, random.Random(1))
        flash_window = config.flash_days * config.day_seconds
        early = sum(1 for t in times if t < flash_window)
        assert early / len(times) > 0.6

    def test_sorted(self):
        times = flash_crowd_arrivals(small_config(), 30, random.Random(2))
        assert times == sorted(times)


class TestFieldTestRun:
    @pytest.fixture(scope="class")
    def report(self):
        return FieldTest(small_config(n_clients=200)).run()

    def test_both_swarms_complete(self, report):
        assert len(report.native.result.completion_times) > 0
        assert len(report.p4p.result.completion_times) > 0

    def test_populations_split_evenly(self, report):
        native_n = len(report.native.result.completion_times)
        p4p_n = len(report.p4p.result.completion_times)
        assert abs(native_n - p4p_n) <= 1

    def test_ledger_accounts_all_payload(self, report):
        for outcome in (report.native, report.p4p):
            done = len(outcome.result.completion_times)
            # Every completed peer downloaded the full file, and aborted
            # in-flight transfers may add a little extra recorded payload.
            expected = done * 160.0
            assert outcome.ledger.total >= expected - 1e-6

    def test_p4p_localizes_more(self, report):
        # Small populations are noisy; allow slack but require the trend.
        assert (
            report.p4p.ledger.localization_percent()
            >= report.native.ledger.localization_percent() - 2.0
        )
        assert report.p4p.ledger.external_to_isp <= report.native.ledger.external_to_isp

    def test_p4p_reduces_unit_bdp(self, report):
        assert report.p4p.unit_bdp <= report.native.unit_bdp + 0.5

    def test_swarm_timeline_recorded(self, report):
        assert report.native.swarm_size_timeline
        sizes = [size for _, size in report.native.swarm_size_timeline]
        assert max(sizes) > 0

    def test_completion_classes_partition(self, report):
        for outcome in (report.native, report.p4p):
            classified = sum(
                len(times) for times in outcome.completion_by_class.values()
            )
            assert classified == len(outcome.result.completion_times)
            assert set(outcome.completion_by_class) <= {"fttp", "dsl", "external"}

    def test_deterministic(self):
        a = FieldTest(small_config(n_clients=40)).run()
        b = FieldTest(small_config(n_clients=40)).run()
        assert (
            a.native.result.completion_times == b.native.result.completion_times
        )
        assert a.p4p.ledger.as_table() == b.p4p.ledger.as_table()


class TestIspCParticipation:
    """The paper ran iTrackers for ISP-B *and* ISP-C (reporting ISP-B)."""

    @pytest.fixture(scope="class")
    def report(self):
        return FieldTest(
            small_config(n_clients=150, include_isp_c=True, isp_c_fraction=0.2)
        ).run()

    def test_isp_c_clients_present(self, report):
        for outcome in (report.native, report.p4p):
            assert "isp-c" in outcome.completion_by_class
            assert len(outcome.completion_by_class["isp-c"]) > 0

    def test_topology_has_both_isps(self):
        config = small_config(include_isp_c=True)
        topo, _ = build_field_topology(config)
        as_numbers = {
            node.as_number
            for node in topo.nodes.values()
            if node.pid != EXTERNAL_PID
        }
        assert len(as_numbers) == 2

    def test_isp_b_ledger_counts_isp_c_as_external(self, report):
        # Table 2 is from ISP-B's perspective: ISP-C traffic is not intra.
        ledger = report.p4p.ledger
        assert ledger.total > 0
        # Some cross-provider traffic exists in a mixed swarm.
        assert ledger.external_to_isp + ledger.isp_to_external > 0

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            FieldTestConfig(isp_fraction=0.8, isp_c_fraction=0.5)
