"""Tests for the synthetic ISP-A/B/C topology generators."""

import pytest

from repro.network.generators import (
    US_METROS,
    access_classes,
    isp_a,
    isp_b,
    isp_c,
    synthetic_isp,
)
from repro.network.routing import RoutingTable


class TestSyntheticIsp:
    def test_pop_count_honoured(self):
        topo = synthetic_isp("t", 15, US_METROS, n_hubs=4, as_number=1, seed=0)
        assert len(topo.nodes) == 15

    def test_deterministic_for_seed(self):
        a = synthetic_isp("t", 12, US_METROS, n_hubs=3, as_number=1, seed=5)
        b = synthetic_isp("t", 12, US_METROS, n_hubs=3, as_number=1, seed=5)
        assert set(a.links) == set(b.links)
        assert all(
            a.links[key].distance == pytest.approx(b.links[key].distance)
            for key in a.links
        )

    def test_different_seeds_differ(self):
        a = synthetic_isp("t", 20, US_METROS, n_hubs=6, as_number=1, seed=1)
        b = synthetic_isp("t", 20, US_METROS, n_hubs=6, as_number=1, seed=2)
        assert set(a.links) != set(b.links) or any(
            a.links[key].distance != b.links[key].distance for key in a.links
        )

    def test_connected(self):
        topo = synthetic_isp("t", 30, US_METROS, n_hubs=5, as_number=1, seed=3)
        table = RoutingTable.build(topo)
        pids = topo.pids
        assert all(table.has_route(pids[0], pid) for pid in pids)

    def test_too_few_hubs_rejected(self):
        with pytest.raises(ValueError):
            synthetic_isp("t", 10, US_METROS, n_hubs=2, as_number=1, seed=0)

    def test_more_hubs_than_pops_rejected(self):
        with pytest.raises(ValueError):
            synthetic_isp("t", 3, US_METROS, n_hubs=4, as_number=1, seed=0)

    def test_links_symmetric(self):
        topo = synthetic_isp("t", 25, US_METROS, n_hubs=6, as_number=1, seed=4)
        for (src, dst) in topo.links:
            assert topo.has_link(dst, src)

    def test_ospf_weights_track_distance(self):
        topo = synthetic_isp("t", 25, US_METROS, n_hubs=6, as_number=1, seed=4)
        for link in topo.links.values():
            assert link.ospf_weight == pytest.approx(max(1.0, link.distance))


class TestNamedIsps:
    def test_isp_a_table1(self):
        assert len(isp_a().nodes) == 20

    def test_isp_b_table1(self):
        assert len(isp_b().nodes) == 52

    def test_isp_c_table1(self):
        assert len(isp_c().nodes) == 37

    def test_isp_b_metros_have_two_pops(self):
        topo = isp_b()
        by_metro = {}
        for node in topo.nodes.values():
            by_metro.setdefault(node.metro, []).append(node.pid)
        assert all(len(pids) == 2 for pids in by_metro.values())

    def test_distinct_as_numbers(self):
        assert len({isp_a().node(isp_a().pids[0]).as_number,
                    isp_b().node(isp_b().pids[0]).as_number,
                    isp_c().node(isp_c().pids[0]).as_number}) == 3


class TestAccessClasses:
    def test_fraction_respected(self):
        topo = isp_b()
        classes = access_classes(topo, fttp_fraction=0.25, seed=1)
        n_fttp = sum(1 for value in classes.values() if value == "fttp")
        assert n_fttp == round(0.25 * len(topo.aggregation_pids))

    def test_all_pids_covered(self):
        topo = isp_a()
        classes = access_classes(topo)
        assert set(classes) == set(topo.aggregation_pids)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            access_classes(isp_a(), fttp_fraction=1.5)

    def test_deterministic(self):
        topo = isp_b()
        assert access_classes(topo, seed=9) == access_classes(topo, seed=9)
