"""Tests for BGP-preference-derived p-distances (Sec. 4 / Sec. 2)."""

import random

import pytest

from repro.apptracker.bittorrent import localized_tracker
from repro.apptracker.selection import P4PSelection, PeerInfo
from repro.core.bgp import (
    BgpPolicy,
    BgpRelationship,
    derive_prices,
)
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.network.routing import RoutingTable
from repro.network.topology import Topology


def multihomed_topology() -> Topology:
    """A stub AS with one customer, one peer, one provider, one backup.

    HOME's clients can also reach FARAWAY only through the provider or the
    backup.
    """
    topo = Topology(name="multihomed")
    for pid, as_number in (
        ("HOME", 1), ("CUST", 2), ("PEERAS", 3), ("PROV", 4), ("BACKUP", 5),
    ):
        topo.add_pid(pid, as_number=as_number)
    for neighbor in ("CUST", "PEERAS", "PROV", "BACKUP"):
        forward, reverse = topo.add_edge("HOME", neighbor, capacity=1000.0)
        forward.interdomain = True
        reverse.interdomain = True
    return topo


def classified_policy() -> BgpPolicy:
    policy = BgpPolicy()
    for neighbor, relationship in (
        ("CUST", BgpRelationship.CUSTOMER),
        ("PEERAS", BgpRelationship.PEER),
        ("PROV", BgpRelationship.PROVIDER),
        ("BACKUP", BgpRelationship.BACKUP),
    ):
        policy.classify(("HOME", neighbor), relationship)
        policy.classify((neighbor, "HOME"), relationship)
    return policy


class TestDerivePrices:
    def test_relationship_ordering(self):
        topo = multihomed_topology()
        prices = derive_prices(topo, classified_policy())
        assert prices[("HOME", "CUST")] < prices[("HOME", "PEERAS")]
        assert prices[("HOME", "PEERAS")] < prices[("HOME", "PROV")]
        assert prices[("HOME", "PROV")] < prices[("HOME", "BACKUP")]

    def test_intradomain_links_keep_ospf(self):
        topo = multihomed_topology()
        topo.add_pid("HOME2", as_number=1)
        topo.add_edge("HOME", "HOME2", capacity=1000.0, ospf_weight=7.0)
        prices = derive_prices(topo, classified_policy())
        assert prices[("HOME", "HOME2")] == 7.0

    def test_unclassified_defaults_to_provider(self):
        topo = multihomed_topology()
        policy = BgpPolicy()  # nothing classified
        prices = derive_prices(topo, policy)
        provider_price = policy.unit_price * policy.multipliers[BgpRelationship.PROVIDER]
        assert prices[("HOME", "BACKUP")] == provider_price

    def test_unclassified_can_be_an_error(self):
        topo = multihomed_topology()
        with pytest.raises(KeyError):
            derive_prices(topo, BgpPolicy(), default_interdomain=None)

    def test_validation(self):
        with pytest.raises(ValueError):
            BgpPolicy(unit_price=0.0)
        with pytest.raises(ValueError):
            BgpPolicy(multipliers={BgpRelationship.PEER: -1.0})

    def test_plugs_into_explicit_mode(self):
        topo = multihomed_topology()
        prices = derive_prices(topo, classified_policy())
        tracker = ITracker(
            topology=topo,
            config=ITrackerConfig(mode=PriceMode.EXPLICIT),
            explicit_prices=prices,
        )
        view = tracker.get_pdistances()
        assert view.distance("HOME", "CUST") < view.distance("HOME", "BACKUP")


class TestBackupAvoidance:
    """Sec. 2's third failure of pure locality: latency cannot see that a
    nearby peer sits behind an expensive backup provider."""

    def test_p4p_avoids_backup_but_localized_does_not(self):
        topo = multihomed_topology()
        # The backup provider's clients are physically CLOSE (low latency);
        # the customer's are far.
        for link in topo.links.values():
            if "BACKUP" in link.key:
                link.distance = 10.0
            else:
                link.distance = 800.0
        routing = RoutingTable.build(topo)
        tracker = ITracker(
            topology=topo,
            config=ITrackerConfig(mode=PriceMode.EXPLICIT),
            explicit_prices=derive_prices(topo, classified_policy()),
        )
        view = tracker.get_pdistances()

        client = PeerInfo(peer_id=0, pid="HOME", as_number=1)
        candidates = (
            [PeerInfo(peer_id=i, pid="BACKUP", as_number=5) for i in range(1, 11)]
            + [PeerInfo(peer_id=i, pid="CUST", as_number=2) for i in range(11, 21)]
        )
        rng = random.Random(3)

        localized = localized_tracker(routing, jitter=0.0)
        localized_choice = localized.select(client, candidates, 6, rng)
        backup_share_localized = sum(
            1 for peer in localized_choice if peer.pid == "BACKUP"
        ) / len(localized_choice)

        p4p = P4PSelection(pdistances={1: view}, gamma=1.0)
        p4p_counts = {"BACKUP": 0, "CUST": 0}
        for seed in range(20):
            for peer in p4p.select(client, candidates, 6, random.Random(seed)):
                p4p_counts[peer.pid] += 1
        backup_share_p4p = p4p_counts["BACKUP"] / sum(p4p_counts.values())

        # Latency-guided selection floods the cheap-looking backup route;
        # cost-guided P4P keeps most traffic on the customer link.
        assert backup_share_localized >= 0.9
        assert backup_share_p4p < 0.3
