"""Tests for the management plane: neutrality verification and monitors."""

import pytest

from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.pdistance import PDistanceMap, external_view
from repro.management.monitors import (
    LoadAuditReport,
    PriceStabilityMonitor,
    UpdateLivenessMonitor,
    audit_loads,
)
from repro.management.neutrality import (
    verify_equal_treatment,
    verify_link_consistency,
)
from repro.network.library import abilene
from repro.network.routing import RoutingTable


class TestLinkConsistency:
    def test_honest_view_is_consistent(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        prices = {key: link.distance for key, link in topo.links.items()}
        view = external_view(topo, routing, prices)
        report = verify_link_consistency(view, topo, routing, tolerance=1e-6)
        assert report.consistent
        assert report.max_residual < 1e-6
        assert report.link_prices is not None

    def test_discriminatory_view_detected(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        prices = {key: 1.0 for key in topo.links}
        view = external_view(topo, routing, prices)
        # Tamper: one specific pair quoted 5x what any link model allows.
        tampered = dict(view.distances)
        tampered[("SEAT", "NYCM")] = view.distance("SEAT", "NYCM") * 5.0
        bad_view = PDistanceMap(pids=view.pids, distances=tampered)
        report = verify_link_consistency(bad_view, topo, routing, tolerance=1e-3)
        assert not report.consistent
        assert report.worst_pair is not None

    def test_perturbed_view_passes_with_declared_tolerance(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        prices = {key: link.distance for key, link in topo.links.items()}
        view = external_view(topo, routing, prices).perturbed(0.02, seed=1)
        typical = max(view.distances.values())
        report = verify_link_consistency(
            view, topo, routing, tolerance=0.05 * typical
        )
        assert report.consistent

    def test_dynamic_itracker_views_are_consistent(self):
        """Views the iTracker actually serves pass their own audit."""
        topo = abilene()
        itracker = ITracker(
            topology=topo,
            config=ITrackerConfig(mode=PriceMode.DYNAMIC, step_size=0.001),
        )
        itracker.observe_loads({("WASH", "NYCM"): 5000.0})
        view = itracker.get_pdistances()
        report = verify_link_consistency(view, topo, itracker.routing)
        assert report.consistent

    def test_unknown_pid_rejected(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        view = PDistanceMap(pids=("GHOST", "SEAT"), distances={
            ("GHOST", "SEAT"): 1.0, ("SEAT", "GHOST"): 1.0,
        })
        with pytest.raises(KeyError):
            verify_link_consistency(view, topo, routing)

    def test_negative_tolerance_rejected(self):
        topo = abilene()
        routing = RoutingTable.build(topo)
        view = external_view(topo, routing, {})
        with pytest.raises(ValueError):
            verify_link_consistency(view, topo, routing, tolerance=-1.0)


class TestEqualTreatment:
    def make_view(self, scale=1.0):
        topo = abilene()
        routing = RoutingTable.build(topo)
        prices = {key: scale * link.distance for key, link in topo.links.items()}
        return external_view(topo, routing, prices)

    def test_identical_views_pass(self):
        report = verify_equal_treatment(self.make_view(), self.make_view())
        assert report.equal
        assert report.max_relative_gap == 0.0

    def test_scaled_view_detected(self):
        report = verify_equal_treatment(self.make_view(1.0), self.make_view(1.5))
        assert not report.equal
        assert report.max_relative_gap > 0.3

    def test_perturbation_within_tolerance(self):
        base = self.make_view()
        noisy = base.perturbed(0.05, seed=2)
        report = verify_equal_treatment(base, noisy, relative_tolerance=0.12)
        assert report.equal

    def test_mismatched_pid_sets_fail(self):
        base = self.make_view()
        sub = base.restricted_to(list(base.pids[:5]))
        report = verify_equal_treatment(base, sub)
        assert not report.equal


class TestPriceStabilityMonitor:
    def test_oscillation_detected(self):
        monitor = PriceStabilityMonitor(window=10)
        for i in range(10):
            monitor.record({("A", "B"): 1.0 if i % 2 == 0 else 2.0})
        assert ("A", "B") in monitor.oscillating_links()

    def test_converging_series_clean(self):
        monitor = PriceStabilityMonitor(window=10)
        value = 2.0
        for _ in range(10):
            monitor.record({("A", "B"): value})
            value = 1.0 + (value - 1.0) * 0.5
        assert monitor.oscillating_links() == []

    def test_flat_series_clean(self):
        monitor = PriceStabilityMonitor()
        for _ in range(12):
            monitor.record({("A", "B"): 1.0})
        assert monitor.oscillating_links() == []

    def test_small_wiggle_ignored(self):
        monitor = PriceStabilityMonitor(magnitude=0.05)
        for i in range(12):
            monitor.record({("A", "B"): 1.0 + 0.001 * (-1) ** i})
        assert monitor.oscillating_links() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            PriceStabilityMonitor(window=2)
        with pytest.raises(ValueError):
            PriceStabilityMonitor(flip_threshold=0.0)


class TestUpdateLiveness:
    def test_fresh_tracker_not_stale(self):
        monitor = UpdateLivenessMonitor(expected_period=30.0)
        monitor.observe(0.0, version=1)
        monitor.observe(30.0, version=2)
        assert not monitor.is_stale(45.0)

    def test_stalled_tracker_flagged(self):
        monitor = UpdateLivenessMonitor(expected_period=30.0, grace_factor=2.0)
        monitor.observe(0.0, version=1)
        monitor.observe(100.0, version=1)  # version never moved
        assert monitor.is_stale(100.0)

    def test_no_observations_not_stale(self):
        assert not UpdateLivenessMonitor(expected_period=30.0).is_stale(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            UpdateLivenessMonitor(expected_period=0.0)
        with pytest.raises(ValueError):
            UpdateLivenessMonitor(expected_period=1.0, grace_factor=0.5)


class TestLoadAudit:
    def test_exact_match(self):
        report = audit_loads({("A", "B"): 10.0}, {("A", "B"): 10.0})
        assert report.max_absolute_drift == 0.0
        assert report.within(0.01)

    def test_drift_reported(self):
        report = audit_loads({("A", "B"): 10.0}, {("A", "B"): 20.0})
        assert report.max_absolute_drift == 10.0
        assert report.max_relative_drift == pytest.approx(0.5)
        assert report.worst_link == ("A", "B")

    def test_missing_links_count_as_zero(self):
        report = audit_loads({("A", "B"): 5.0}, {})
        assert report.max_absolute_drift == 5.0

    def test_empty_is_clean(self):
        report = audit_loads({}, {})
        assert report.within(0.0)
