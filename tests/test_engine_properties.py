"""Property-based tests for the max-min allocation invariants.

Plain seeded pytest (no hypothesis dependency): each case draws a random
instance from one of three generators -- unstructured random incidences,
access-network-shaped instances (per-peer up/down links plus shared
backbone links, the simulator's actual shape), and heavily rate-capped
instances -- and checks the defining properties of max-min fairness:

* feasibility: no link carries more than its capacity;
* bottleneck justification: every flow either sits at its rate cap or
  crosses a saturated link (otherwise its rate could be raised, which
  contradicts max-min);
* removal monotonicity: deleting any flow never lowers anyone else's rate.

The fast CSR fill used by the vectorized engine must agree *bit for bit*
with the reference fill on every instance.
"""

import random

import numpy as np
import pytest

from repro.optimization.maxmin import (
    _build_entries,
    _progressive_fill,
    _progressive_fill_fast,
    link_loads,
    maxmin_rates,
    verify_maxmin,
)

_TOL = 1e-6
N_SEEDS = 70


def _uniform_instance(rng):
    n_links = rng.randint(2, 15)
    n_flows = rng.randint(1, 40)
    capacities = [rng.uniform(0.5, 60.0) for _ in range(n_links)]
    flow_links = [
        rng.sample(range(n_links), rng.randint(0, min(4, n_links)))
        for _ in range(n_flows)
    ]
    caps = [
        rng.uniform(0.2, 25.0) if rng.random() < 0.3 else None
        for _ in range(n_flows)
    ]
    return flow_links, capacities, caps


def _access_instance(rng):
    """Up/down access links per peer plus a few shared backbone links."""
    n_peers = rng.randint(3, 12)
    n_backbone = rng.randint(1, 4)
    capacities = []
    up, down = [], []
    for _ in range(n_peers):
        up.append(len(capacities))
        capacities.append(rng.uniform(5.0, 15.0))
        down.append(len(capacities))
        capacities.append(rng.uniform(10.0, 30.0))
    backbone = []
    for _ in range(n_backbone):
        backbone.append(len(capacities))
        capacities.append(rng.uniform(20.0, 200.0))
    n_flows = rng.randint(1, 3 * n_peers)
    flow_links, caps = [], []
    for _ in range(n_flows):
        src, dst = rng.sample(range(n_peers), 2)
        links = [up[src], down[dst]]
        if rng.random() < 0.5:
            links.extend(rng.sample(backbone, rng.randint(1, n_backbone)))
        flow_links.append(links)
        caps.append(rng.uniform(1.0, 25.0) if rng.random() < 0.5 else None)
    return flow_links, capacities, caps


def _capped_instance(rng):
    flow_links, capacities, _ = _uniform_instance(rng)
    caps = [rng.uniform(0.05, 5.0) for _ in flow_links]
    return flow_links, capacities, caps


GENERATORS = {
    "uniform": _uniform_instance,
    "access": _access_instance,
    "capped": _capped_instance,
}

# str.hash is process-randomized; seeds must not depend on it.
_FAMILY_SALT = {"access": 1, "capped": 2, "uniform": 3}


def _solve(flow_links, capacities, caps):
    return maxmin_rates(flow_links, capacities, rate_caps=caps)


@pytest.mark.parametrize("family", sorted(GENERATORS))
@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_feasible_and_bottlenecked(family, seed):
    rng = random.Random(_FAMILY_SALT[family] * 100_000 + seed)
    flow_links, capacities, caps = GENERATORS[family](rng)
    rates = _solve(flow_links, capacities, caps)

    finite = np.where(np.isfinite(rates), rates, 0.0)
    loads = link_loads(flow_links, finite, len(capacities))
    # Feasibility: no link above capacity.
    assert np.all(loads <= np.asarray(capacities) + _TOL)

    # Bottleneck justification for every flow that crosses links.
    for index, links in enumerate(flow_links):
        cap = caps[index]
        if not links:
            expected = np.inf if cap is None else cap
            assert rates[index] == pytest.approx(expected)
            continue
        at_cap = cap is not None and rates[index] >= cap - _TOL
        saturated = any(
            loads[link] >= capacities[link] - _TOL for link in links
        )
        assert at_cap or saturated, (
            f"flow {index} rate {rates[index]} neither capped nor "
            f"bottlenecked (links {links})"
        )

    # The repo's own checker agrees.
    assert verify_maxmin(flow_links, capacities, rates, rate_caps=caps)


@pytest.mark.parametrize("family", sorted(GENERATORS))
@pytest.mark.parametrize("seed", range(40))
def test_removing_a_flow_never_lowers_the_fairness_floor(family, seed):
    """Removal monotonicity, in the form that is actually a theorem.

    Naive per-flow monotonicity ("removing a flow never decreases anyone's
    rate") is FALSE for multi-link max-min -- see
    ``test_removal_can_hurt_a_distant_flow`` below for the canonical
    counterexample.  What does hold is that the *minimum* rate among
    surviving flows never decreases: the first freeze level is
    ``min_link capacity / crossing_count``, and removing any flow weakly
    raises every one of those quotients (caps only enter as smaller fixed
    freeze points that removal cannot lower).
    """
    rng = random.Random(7_000_000 + _FAMILY_SALT[family] * 10_000 + seed)
    flow_links, capacities, caps = GENERATORS[family](rng)
    if len(flow_links) < 2:
        pytest.skip("needs at least two flows")
    rates = _solve(flow_links, capacities, caps)
    victim = rng.randrange(len(flow_links))
    reduced_links = [l for i, l in enumerate(flow_links) if i != victim]
    reduced_caps = [c for i, c in enumerate(caps) if i != victim]
    reduced = _solve(reduced_links, capacities, reduced_caps)
    survivors = [i for i in range(len(flow_links)) if i != victim]
    old_finite = [
        rates[i] for i in survivors if np.isfinite(rates[i])
    ]
    new_finite = [
        reduced[ni]
        for ni, oi in enumerate(survivors)
        if np.isfinite(rates[oi])
    ]
    if old_finite:
        assert min(new_finite) >= min(old_finite) - 1e-9
    # Infinite (unconstrained) flows stay infinite.
    for ni, oi in enumerate(survivors):
        if np.isinf(rates[oi]):
            assert np.isinf(reduced[ni])


@pytest.mark.parametrize("seed", range(30))
def test_removal_monotone_on_a_single_shared_link(seed):
    """On one link, removal monotonicity *does* hold per flow."""
    rng = random.Random(40_000 + seed)
    n_flows = rng.randint(2, 20)
    capacity = rng.uniform(1.0, 100.0)
    caps = [
        rng.uniform(0.1, 20.0) if rng.random() < 0.5 else None
        for _ in range(n_flows)
    ]
    flow_links = [[0]] * n_flows
    rates = _solve(flow_links, [capacity], caps)
    victim = rng.randrange(n_flows)
    reduced = _solve(
        flow_links[:-1],
        [capacity],
        [c for i, c in enumerate(caps) if i != victim],
    )
    survivors = [i for i in range(n_flows) if i != victim]
    for ni, oi in enumerate(survivors):
        assert reduced[ni] >= rates[oi] - 1e-9


def test_removal_can_hurt_a_distant_flow():
    """The canonical counterexample, pinned so nobody "fixes" the engine
    to chase per-flow removal monotonicity.

    Link A (cap 4) carries flows 1,2; link B (cap 10) carries flows 2,3.
    With all three: A bottlenecks flows 1,2 at 2 each, flow 3 takes the
    rest of B -> (2, 2, 8).  Remove flow 1: flow 2 rises to A's full
    capacity 4, leaving flow 3 only 6.  Flow 3 never shared anything with
    flow 1 yet loses rate -- max-min is a global equilibrium, which is
    exactly why the vectorized engine must re-solve the *closed component*
    rather than just the departed flow's links.
    """
    rates = _solve([[0], [0, 1], [1]], [4.0, 10.0], [None, None, None])
    assert rates == pytest.approx([2.0, 2.0, 8.0])
    reduced = _solve([[0, 1], [1]], [4.0, 10.0], [None, None])
    assert reduced == pytest.approx([4.0, 6.0])


@pytest.mark.parametrize("seed", range(100))
def test_fast_fill_bit_identical_to_reference(seed):
    rng = random.Random(31_000 + seed)
    family = rng.choice(sorted(GENERATORS))
    flow_links, capacities, caps = GENERATORS[family](rng)
    n_flows = len(flow_links)
    n_links = len(capacities)
    caps_arr = np.array(
        [np.inf if c is None else float(c) for c in caps], dtype=float
    )
    link_of, flow_of = _build_entries(flow_links, n_links)
    reference = _progressive_fill(
        link_of, flow_of, np.asarray(capacities, dtype=float), n_flows, caps_arr
    )
    fast = _progressive_fill_fast(
        link_of, flow_of, np.asarray(capacities, dtype=float), n_flows, caps_arr
    )
    assert np.array_equal(reference, fast)  # exact, including inf pattern


def test_rates_scale_with_capacity():
    """Doubling every capacity doubles every uncapped rate (scale-freeness)."""
    rng = random.Random(5)
    flow_links, capacities, _ = _uniform_instance(rng)
    caps = [None] * len(flow_links)
    base = _solve(flow_links, capacities, caps)
    doubled = _solve(flow_links, [2 * c for c in capacities], caps)
    finite = np.isfinite(base)
    assert np.allclose(doubled[finite], 2 * base[finite], rtol=1e-9)
