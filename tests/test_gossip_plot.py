"""Tests for gossip distribution and the ASCII plotting helpers."""

import math
import random

import pytest

from repro.core.pdistance import PDistanceMap
from repro.metrics.ascii_plot import ascii_bars, ascii_cdf, ascii_plot
from repro.portal.gossip import GossipSwarm, VersionedView


def tiny_view(scale=1.0):
    return PDistanceMap(
        pids=("A", "B"), distances={("A", "B"): scale, ("B", "A"): scale}
    )


class TestGossip:
    def make_swarm(self, n=50, fanout=3):
        swarm = GossipSwarm(fanout=fanout)
        for peer_id in range(n):
            swarm.add_peer(peer_id)
        return swarm

    def test_full_coverage_from_one_seed(self):
        swarm = self.make_swarm(n=60)
        swarm.seed(0, VersionedView(version=1, view=tiny_view()))
        swarm.run_until_converged(random.Random(1))
        assert swarm.coverage(1) == 1.0

    def test_convergence_is_logarithmic(self):
        swarm = self.make_swarm(n=200, fanout=3)
        swarm.seed(0, VersionedView(version=1, view=tiny_view()))
        rounds = swarm.run_until_converged(random.Random(2))
        # ~log_3(200) + slack; far below linear.
        assert rounds <= 4 * math.ceil(math.log(200, 3))

    def test_newer_version_displaces_older(self):
        swarm = self.make_swarm(n=40)
        swarm.seed(0, VersionedView(version=1, view=tiny_view(1.0)))
        swarm.run_until_converged(random.Random(3))
        swarm.seed(5, VersionedView(version=2, view=tiny_view(2.0)))
        swarm.run_until_converged(random.Random(4))
        assert swarm.coverage(2) == 1.0
        assert all(peer.held.view.distance("A", "B") == 2.0 for peer in swarm.peers.values())

    def test_stale_version_never_adopted(self):
        swarm = self.make_swarm(n=10)
        swarm.seed(0, VersionedView(version=5, view=tiny_view()))
        swarm.run_until_converged(random.Random(5))
        swarm.seed(3, VersionedView(version=2, view=tiny_view(9.0)))
        swarm.run_until_converged(random.Random(6))
        assert all(peer.version == 5 for peer in swarm.peers.values())

    def test_empty_swarm_round_is_noop(self):
        assert GossipSwarm().run_round(random.Random(0)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GossipSwarm(fanout=0)
        swarm = self.make_swarm(n=2)
        with pytest.raises(ValueError):
            swarm.add_peer(0)
        with pytest.raises(ValueError):
            VersionedView(version=-1, view=tiny_view())

    def test_coverage_partial(self):
        swarm = self.make_swarm(n=4, fanout=1)
        swarm.seed(0, VersionedView(version=1, view=tiny_view()))
        assert swarm.coverage(1) == pytest.approx(0.25)


class TestAsciiPlot:
    def test_plot_contains_marks_and_legend(self):
        chart = ascii_plot(
            {"native": [(0, 0), (1, 1)], "p4p": [(0, 1), (1, 0)]},
            width=30,
            height=8,
        )
        assert "*" in chart and "o" in chart
        assert "native" in chart and "p4p" in chart

    def test_cdf_axis_labels(self):
        chart = ascii_cdf({"x": [(1.0, 0.5), (2.0, 1.0)]})
        assert "completion time" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_plot({"flat": [(0, 5), (1, 5), (2, 5)]}, width=20, height=5)
        assert "flat" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"x": []})

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"x": [(0, 0)]}, width=2, height=2)

    def test_bars(self):
        chart = ascii_bars({"native": 100.0, "p4p": 25.0})
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")

    def test_bars_zero_value(self):
        chart = ascii_bars({"a": 0.0, "b": 1.0})
        assert "0.0" in chart

    def test_bars_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars({})
