"""Tests for the ALTO-compatible export (RFC 7285 document shapes)."""

import json

import pytest

from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.pdistance import PDistanceMap, uniform_pid_map
from repro.network.library import abilene
from repro.portal.alto import (
    NUMERICAL,
    ORDINAL,
    AltoFormatError,
    cost_map_document,
    cost_map_from_document,
    endpoint_cost_document,
    network_map_document,
    network_map_from_pidmap,
)


def sample_view():
    return PDistanceMap(
        pids=("PID-A", "PID-B", "PID-C"),
        distances={
            ("PID-A", "PID-A"): 0.0,
            ("PID-B", "PID-B"): 0.0,
            ("PID-C", "PID-C"): 0.0,
            ("PID-A", "PID-B"): 2.0,
            ("PID-A", "PID-C"): 7.5,
            ("PID-B", "PID-A"): 2.0,
            ("PID-B", "PID-C"): 4.0,
            ("PID-C", "PID-A"): 7.5,
            ("PID-C", "PID-B"): 4.0,
        },
    )


class TestNetworkMap:
    def test_document_shape(self):
        document = network_map_document({"PID-A": ["10.0.0.0/16"]})
        assert document["meta"]["vtag"]["tag"] == "p4p-1"
        assert document["network-map"]["PID-A"]["ipv4"] == ["10.0.0.0/16"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            network_map_document({})

    def test_from_pidmap_covers_all_pids(self):
        topo = abilene()
        document = network_map_from_pidmap(uniform_pid_map(topo))
        assert set(document["network-map"]) == set(topo.aggregation_pids)
        for entry in document["network-map"].values():
            assert entry["ipv4"]

    def test_json_serializable(self):
        json.dumps(network_map_from_pidmap(uniform_pid_map(abilene())))


class TestCostMap:
    def test_numerical_round_trip(self):
        view = sample_view()
        document = cost_map_document(view, mode=NUMERICAL)
        restored = cost_map_from_document(document)
        for src in view.pids:
            for dst in view.pids:
                assert restored.distance(src, dst) == pytest.approx(
                    view.distance(src, dst)
                )

    def test_ordinal_mode_exports_ranks(self):
        document = cost_map_document(sample_view(), mode=ORDINAL)
        row = document["cost-map"]["PID-A"]
        assert row["PID-B"] == 1
        assert row["PID-C"] == 2
        assert document["meta"]["cost-type"]["cost-mode"] == "ordinal"

    def test_meta_references_network_map(self):
        document = cost_map_document(sample_view())
        assert document["meta"]["dependent-vtags"][0]["resource-id"] == "p4p-network-map"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            cost_map_document(sample_view(), mode="hopcount")

    def test_malformed_document_rejected(self):
        with pytest.raises(AltoFormatError):
            cost_map_from_document({"meta": {}})
        with pytest.raises(AltoFormatError):
            cost_map_from_document({"cost-map": {"A": {"B": "not-a-number"}}})

    def test_live_itracker_export(self):
        itracker = ITracker(
            topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        view = itracker.get_pdistances()
        document = cost_map_document(view)
        restored = cost_map_from_document(document)
        assert restored.distance("SEAT", "NYCM") == pytest.approx(
            view.distance("SEAT", "NYCM")
        )
        json.dumps(document)


class TestEndpointCost:
    def test_costs_via_pid_mapping(self):
        view = sample_view()
        pid_of = {"10.0.0.1": "PID-A", "10.1.0.1": "PID-B", "10.2.0.1": "PID-C"}
        document = endpoint_cost_document(
            view, pid_of, "10.0.0.1", ["10.1.0.1", "10.2.0.1"]
        )
        row = document["endpoint-cost-map"]["ipv4:10.0.0.1"]
        assert row["ipv4:10.1.0.1"] == pytest.approx(2.0)
        assert row["ipv4:10.2.0.1"] == pytest.approx(7.5)

    def test_unmappable_destinations_omitted(self):
        view = sample_view()
        pid_of = {"10.0.0.1": "PID-A"}
        document = endpoint_cost_document(view, pid_of, "10.0.0.1", ["8.8.8.8"])
        assert document["endpoint-cost-map"]["ipv4:10.0.0.1"] == {}

    def test_unknown_source_rejected(self):
        with pytest.raises(KeyError):
            endpoint_cost_document(sample_view(), {}, "1.2.3.4", [])


class TestAltoOverTheWire:
    def test_costmap_and_networkmap_served(self):
        from repro.portal.client import PortalClient
        from repro.portal.server import PortalServer

        itracker = ITracker(
            topology=abilene(),
            config=ITrackerConfig(mode=PriceMode.HOP_COUNT),
            pid_map=uniform_pid_map(abilene()),
        )
        with PortalServer(itracker) as server:
            with PortalClient(*server.address) as client:
                cost_doc = client.get_alto_costmap()
                net_doc = client.get_alto_networkmap()
        restored = cost_map_from_document(cost_doc)
        assert restored.distance("SEAT", "NYCM") > 0
        assert set(net_doc["network-map"]) == set(abilene().aggregation_pids)
        assert cost_doc["meta"]["cost-type"]["cost-mode"] == "numerical"

    def test_ordinal_mode_over_the_wire(self):
        from repro.portal.client import PortalClient
        from repro.portal.server import PortalServer

        itracker = ITracker(
            topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        with PortalServer(itracker) as server:
            with PortalClient(*server.address) as client:
                document = client.get_alto_costmap(mode="ordinal")
        assert document["meta"]["cost-type"]["cost-mode"] == "ordinal"

    def test_networkmap_requires_pid_map(self):
        from repro.portal.client import PortalClient, PortalClientError
        from repro.portal.server import PortalServer

        itracker = ITracker(
            topology=abilene(), config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        )
        with PortalServer(itracker) as server:
            with PortalClient(*server.address) as client:
                with pytest.raises(PortalClientError):
                    client.get_alto_networkmap()
