"""White-box tests of the BitTorrent protocol mechanics inside the swarm
simulator: interest detection, rarest-first piece choice, tit-for-tat
recipient choice, slot management, and TCP rate caps."""

import random

import pytest

from repro.apptracker.selection import PeerInfo, RandomSelection
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.simulator.swarm import SwarmConfig, SwarmSimulation


def pair_topology():
    topo = Topology(name="pair")
    topo.add_pid("L")
    topo.add_pid("R")
    topo.add_edge("L", "R", capacity=1000.0)
    return topo


def make_sim(n_peers=4, n_blocks=4, **config_kwargs):
    topo = pair_topology()
    routing = RoutingTable.build(topo)
    defaults = dict(
        file_mbit=2.0 * n_blocks,
        block_mbit=2.0,
        neighbors=8,
        join_window=0.0,
        access_up_mbps=10.0,
        access_down_mbps=10.0,
        seed_up_mbps=10.0,
        completion_quantum=0.0,
        optimistic_probability=0.0,
        rng_seed=1,
    )
    defaults.update(config_kwargs)
    config = SwarmConfig(**defaults)
    peers = [
        PeerInfo(peer_id=i, pid="L" if i % 2 else "R", as_number=0)
        for i in range(1, n_peers + 1)
    ]
    seeds = [PeerInfo(peer_id=0, pid="L", as_number=0)]
    sim = SwarmSimulation(topo, routing, config, RandomSelection(), peers, seeds)
    # Join everyone immediately -- with slot filling suppressed, so tests
    # can inspect protocol decisions from a quiescent state.
    original_fill = sim._fill_slots
    sim._fill_slots = lambda peer: None
    for peer in list(sim._pending):
        sim._join(peer)
    sim._pending = []
    sim._fill_slots = original_fill
    return sim


class TestInterest:
    def test_seed_interested_in_empty_peers(self):
        sim = make_sim()
        seed = sim.peers[0]
        interested = sim._interested_neighbors(seed)
        assert {p.peer_id for p in interested} <= {1, 2, 3, 4}
        assert interested  # fresh peers lack everything

    def test_no_interest_when_peer_has_all(self):
        sim = make_sim()
        seed = sim.peers[0]
        sim.peers[1].blocks = set(range(sim._n_blocks))
        interested = sim._interested_neighbors(seed)
        assert all(p.peer_id != 1 for p in interested)

    def test_in_progress_blocks_suppress_interest(self):
        sim = make_sim(n_blocks=1)
        seed = sim.peers[0]
        sim.peers[1].in_progress = {0}
        interested = sim._interested_neighbors(seed)
        assert all(p.peer_id != 1 for p in interested)

    def test_departed_peers_not_interesting(self):
        sim = make_sim()
        sim.depart(1)
        seed = sim.peers[0]
        assert all(p.peer_id != 1 for p in sim._interested_neighbors(seed))

    def test_active_upload_excludes_peer(self):
        sim = make_sim()
        seed = sim.peers[0]
        seed.active_uploads.add(1)
        assert all(p.peer_id != 1 for p in sim._interested_neighbors(seed))


class TestRarestFirst:
    def test_rarest_block_chosen(self):
        sim = make_sim(n_peers=4, n_blocks=3)
        uploader = sim.peers[0]  # seed with blocks {0,1,2}
        downloader = sim.peers[1]
        # Blocks 0 and 1 are widely replicated; block 2 is rare.
        for peer_id in (2, 3, 4):
            sim.peers[peer_id].blocks = {0, 1}
        chosen = sim._choose_block(uploader, downloader)
        assert chosen == 2

    def test_no_offerable_block_returns_none(self):
        sim = make_sim(n_blocks=2)
        uploader = sim.peers[0]
        downloader = sim.peers[1]
        downloader.blocks = {0}
        downloader.in_progress = {1}
        assert sim._choose_block(uploader, downloader) is None

    def test_ties_broken_among_rarest(self):
        sim = make_sim(n_peers=2, n_blocks=4)
        uploader = sim.peers[0]
        downloader = sim.peers[1]
        chosen = {sim._choose_block(uploader, downloader) for _ in range(25)}
        # All blocks equally rare: random tie-break explores several.
        assert chosen <= {0, 1, 2, 3}
        assert len(chosen) >= 2


class TestTitForTat:
    def test_best_reciprocator_preferred(self):
        sim = make_sim(n_peers=3, optimistic_probability=0.0)
        uploader = sim.peers[1]
        uploader.blocks = {0, 1}
        uploader.received_from = {2: 100.0, 3: 1.0}
        interested = [sim.peers[2], sim.peers[3]]
        choice = sim._choose_recipient(uploader, interested)
        assert choice.peer_id == 2

    def test_seed_chooses_randomly(self):
        sim = make_sim(n_peers=3)
        seed = sim.peers[0]
        interested = [sim.peers[1], sim.peers[2], sim.peers[3]]
        chosen = {sim._choose_recipient(seed, interested).peer_id for _ in range(30)}
        assert len(chosen) >= 2

    def test_optimistic_unchoke_explores(self):
        sim = make_sim(n_peers=3, optimistic_probability=1.0)
        uploader = sim.peers[1]
        uploader.received_from = {2: 100.0}
        interested = [sim.peers[2], sim.peers[3]]
        chosen = {sim._choose_recipient(uploader, interested).peer_id for _ in range(30)}
        assert 3 in chosen  # pure tit-for-tat would never pick 3


class TestSlots:
    def test_upload_slots_bounded(self):
        sim = make_sim(n_peers=8, upload_slots=2)
        seed = sim.peers[0]
        sim._fill_slots(seed)
        assert len(seed.active_uploads) <= 2

    def test_slots_refill_after_completion(self):
        sim = make_sim(n_peers=4, upload_slots=1)
        result = sim.run(until=2000.0)
        assert len(result.completion_times) == 4

    def test_one_transfer_per_pair(self):
        sim = make_sim(n_peers=2, upload_slots=4)
        seed = sim.peers[0]
        sim._fill_slots(seed)
        # Only 2 downloaders exist: at most one concurrent transfer each.
        assert len(seed.active_uploads) <= 2


class TestRateCaps:
    def test_window_caps_long_transfers(self):
        # Two PoPs 1000 distance units apart; tiny window throttles the
        # cross-PoP flow while same-PoP flows run at access speed.
        topo = Topology()
        topo.add_pid("A", location=(0.0, 0.0))
        topo.add_pid("B", location=(10.0, 0.0))  # ~691 miles
        topo.add_edge("A", "B", capacity=1000.0)
        topo.assign_distances_from_locations()
        routing = RoutingTable.build(topo)
        config = SwarmConfig(
            file_mbit=8.0, block_mbit=8.0, neighbors=2, join_window=0.0,
            access_up_mbps=100.0, access_down_mbps=100.0, seed_up_mbps=100.0,
            tcp_window_mbit=0.1, rtt_base_ms=2.0, rtt_per_mile_ms=0.02,
            rng_seed=3,
        )
        peers = [PeerInfo(peer_id=1, pid="B", as_number=0)]
        seeds = [PeerInfo(peer_id=0, pid="A", as_number=0)]
        sim = SwarmSimulation(topo, routing, config, RandomSelection(), peers, seeds)
        result = sim.run(until=100.0)
        # RTT ~ (2 + 0.02 * 691)ms = ~15.8ms; cap = 0.1/0.0158 ~ 6.3 Mbps.
        # 8 Mbit at ~6.3 Mbps takes ~1.27s, far above the 0.08s access floor.
        duration = result.completion_times[1]
        assert duration > 1.0

    def test_no_window_means_access_limited(self):
        topo = pair_topology()
        routing = RoutingTable.build(topo)
        config = SwarmConfig(
            file_mbit=8.0, block_mbit=8.0, neighbors=2, join_window=0.0,
            access_up_mbps=100.0, access_down_mbps=100.0, seed_up_mbps=100.0,
            tcp_window_mbit=None, rng_seed=3,
        )
        peers = [PeerInfo(peer_id=1, pid="R", as_number=0)]
        seeds = [PeerInfo(peer_id=0, pid="L", as_number=0)]
        sim = SwarmSimulation(topo, routing, config, RandomSelection(), peers, seeds)
        result = sim.run(until=100.0)
        assert result.completion_times[1] == pytest.approx(0.08, rel=0.05)
