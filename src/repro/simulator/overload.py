"""Deterministic overload chaos scenario for the portal serving plane.

A flash crowd is an *open-loop* arrival process: peers joining a swarm do
not slow down because the portal is slow (PAPER.md Sec. 5's
``get_pdistance``-per-join traffic), so offered load past capacity turns
into unbounded queueing delay unless the server sheds explicitly.  This
module replays exactly the admission/brownout/drain state machines the
live servers mount (:mod:`repro.portal.overload` on an injected step
clock -- the same objects, not a model of them) against a seeded Poisson
arrival process, next to an *unprotected* twin fed the identical
arrivals, and checks the overload invariants:

* **bounded queue delay** -- no admitted request waited longer than
  ``max_queue_delay`` for its execution slot;
* **bounded admitted p99** -- the p99 latency of *served* requests stays
  within the structural bound (slot wait cap + service time), while the
  unprotected twin's p99 collapses (queue delay grows with the horizon);
* **goodput floor** -- served throughput before the drain stays at or
  above ``goodput_floor`` of capacity: shedding pays for itself;
* **breaker non-flapping** -- a client classifying ``busy`` frames as
  non-failures never trips its circuit breaker, no matter the shed rate;
* **monotone drain** -- once :meth:`~repro.portal.overload.
  OverloadGovernor.start_drain` fires, the backlog never grows and
  reaches zero within ``drain_timeout``.

Determinism is the point: everything runs on simulation time (the event
heap *is* the clock), every random draw comes from one seeded RNG, and
:func:`run_overload` hashes its canonical result document -- two runs
with one seed must produce identical digests bit for bit (the CI smoke
job diffs a double run).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.portal.overload import (
    AdmissionOutcome,
    OverloadConfig,
    OverloadGovernor,
)
from repro.portal.resilience import CircuitBreaker
from repro.workloads.loadgen import percentile

#: Event-kind ordering at equal timestamps: completions free slots before
#: the drain flips state before new arrivals contend -- fixed so ties on
#: the heap cannot reorder between runs.
_COMPLETION, _DRAIN, _ARRIVAL = 0, 1, 2


def default_overload_config() -> OverloadConfig:
    """The scenario's protected-server configuration: budgets small
    enough that 2x capacity visibly sheds within a few simulated
    seconds, bounds tight enough that the invariants bite."""
    return OverloadConfig(
        enabled=True,
        inflight_budget=4,
        queue_budget=16,
        max_queue_delay=0.2,
        codel_target=0.03,
        codel_interval=0.1,
        retry_after=0.25,
        brownout_enter=0.4,
        brownout_exit=0.8,
        drain_timeout=2.0,
    )


@dataclass(frozen=True)
class OverloadScenarioSpec:
    """One seeded overload scenario: everything the replay needs."""

    seed: int = 0
    #: The protected server's nominal capacity (requests/second): the
    #: inflight budget divided by the deterministic per-request service
    #: time, by construction below.
    capacity_qps: float = 200.0
    #: Offered load as a multiple of capacity (the 2x of the acceptance
    #: criteria).
    multiple: float = 2.0
    #: Seconds of scheduled arrivals.
    duration: float = 8.0
    #: Per-request deadline budget carried by every arrival (None: no
    #: deadlines): work whose slot wait already exceeds it is abandoned.
    deadline_budget: Optional[float] = 0.15
    #: Simulation time at which the graceful drain starts (None: never).
    drain_at: Optional[float] = 6.0
    #: Served-throughput floor, as a fraction of capacity.
    goodput_floor: float = 0.7
    config: OverloadConfig = field(default_factory=default_overload_config)

    def __post_init__(self) -> None:
        if self.capacity_qps <= 0:
            raise ValueError("capacity_qps must be positive")
        if self.multiple <= 0:
            raise ValueError("multiple must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 < self.goodput_floor <= 1:
            raise ValueError("goodput_floor must be in (0, 1]")
        if self.deadline_budget is not None and self.deadline_budget <= 0:
            raise ValueError("deadline_budget must be positive when set")
        if self.drain_at is not None and not 0 < self.drain_at < self.duration:
            raise ValueError("drain_at must fall inside the duration")

    @property
    def service_time(self) -> float:
        """Deterministic per-request service time: ``inflight_budget``
        concurrent slots at this service time give ``capacity_qps``."""
        return self.config.inflight_budget / self.capacity_qps


@dataclass(frozen=True)
class Violation:
    invariant: str
    detail: str


@dataclass(frozen=True)
class OverloadReport:
    """What one scenario replay measured, plus its invariant verdicts."""

    document: Dict[str, Any]
    violations: Tuple[Violation, ...]
    digest: str


def _poisson_arrivals(rng: random.Random, rate: float, horizon: float) -> List[float]:
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= horizon:
            return arrivals
        arrivals.append(t)


def _unprotected_latencies(
    arrivals: List[float], servers: int, service_time: float
) -> List[float]:
    """FIFO M/D/c with an unbounded queue: what the same arrival process
    does to a server with no admission control (every request eventually
    served, queueing delay growing with the horizon)."""
    free = [0.0] * servers
    heapq.heapify(free)
    latencies: List[float] = []
    for at in arrivals:
        start = max(at, heapq.heappop(free))
        done = start + service_time
        heapq.heappush(free, done)
        latencies.append(done - at)
    return latencies


def run_overload(spec: OverloadScenarioSpec) -> OverloadReport:
    """Replay one seeded overload scenario; see the module docstring."""
    rng = random.Random(spec.seed)
    arrivals = _poisson_arrivals(
        rng, spec.capacity_qps * spec.multiple, spec.duration
    )
    service = spec.service_time
    config = spec.config

    now = [0.0]
    governor = OverloadGovernor(config, telemetry=None, clock=lambda: now[0])
    # The client's view of the shed storm: busy frames feed the breaker
    # *neither* success nor failure (the resilience-layer contract), so
    # trip_count staying zero is the non-flapping invariant.
    breaker = CircuitBreaker(failure_threshold=5, clock=lambda: now[0])

    events: List[Tuple[float, int, int, float]] = []
    seq = 0
    for at in arrivals:
        events.append((at, _ARRIVAL, seq, at))
        seq += 1
    if spec.drain_at is not None:
        events.append((spec.drain_at, _DRAIN, seq, spec.drain_at))
        seq += 1
    heapq.heapify(events)

    waiters: Deque[float] = deque()
    outcome_counts: Dict[str, int] = {}
    served_latencies: List[float] = []
    served_completions: List[float] = []
    admitted_waits: List[float] = []
    deadline_drops = 0
    state_peaks = {governor.state()}
    drain_started: Optional[float] = None
    drain_completed: Optional[float] = None
    drain_backlog_grew = False
    backlog_at_drain = 0

    def count(outcome: AdmissionOutcome) -> None:
        outcome_counts[outcome.value] = outcome_counts.get(outcome.value, 0) + 1

    def promote() -> None:
        """Hand freed slots to FIFO waiters (shedding stale/drained ones)."""
        nonlocal deadline_drops, seq
        while waiters and (
            governor.draining
            or governor.admission.inflight < config.inflight_budget
        ):
            arrival = waiters.popleft()
            waited = now[0] - arrival
            outcome = governor.admit_after_wait(now[0], waited)
            count(outcome)
            if outcome is not AdmissionOutcome.ADMITTED:
                continue
            if spec.deadline_budget is not None and waited >= spec.deadline_budget:
                # Admitted, but the caller already gave up: the server
                # abandons the work instead of computing-then-discarding.
                governor.release()
                deadline_drops += 1
                continue
            admitted_waits.append(waited)
            heapq.heappush(
                events, (now[0] + service, _COMPLETION, seq, arrival)
            )
            seq += 1

    while events:
        at, kind, _, payload = heapq.heappop(events)
        now[0] = at
        if kind == _ARRIVAL:
            outcome = governor.admit(at, may_queue=True)
            if outcome is AdmissionOutcome.ADMITTED:
                count(outcome)
                admitted_waits.append(0.0)
                heapq.heappush(events, (at + service, _COMPLETION, seq, payload))
                seq += 1
            elif outcome is AdmissionOutcome.QUEUED:
                waiters.append(payload)
            else:
                count(outcome)
                # A busy frame: the well-behaved client backs off without
                # recording a breaker failure.
        elif kind == _COMPLETION:
            governor.release()
            served_latencies.append(at - payload)
            served_completions.append(at)
            breaker.record_success()
            promote()
        else:  # _DRAIN
            governor.start_drain()
            drain_started = at
            backlog_at_drain = governor.admission.backlog
            promote()
        state_peaks.add(governor.state())
        if drain_started is not None:
            backlog = governor.admission.backlog
            if backlog > backlog_at_drain:
                drain_backlog_grew = True
            backlog_at_drain = min(backlog_at_drain, backlog)
            if backlog == 0 and drain_completed is None:
                drain_completed = at

    unprotected = _unprotected_latencies(
        arrivals, config.inflight_budget, service
    )
    goodput_window = drain_started if drain_started is not None else spec.duration
    served_in_window = sum(1 for done in served_completions if done <= goodput_window)
    goodput = served_in_window / goodput_window
    admitted_p99 = percentile(sorted(served_latencies), 0.99)
    unprotected_p99 = percentile(sorted(unprotected), 0.99)
    max_wait = max(admitted_waits) if admitted_waits else 0.0
    latency_bound = config.max_queue_delay + service + 1e-9

    violations: List[Violation] = []

    def check(invariant: str, ok: bool, detail: str) -> None:
        if not ok:
            violations.append(Violation(invariant=invariant, detail=detail))

    check(
        "bounded-queue-delay",
        max_wait <= config.max_queue_delay + 1e-9,
        f"admitted slot wait {max_wait:.6f}s exceeds "
        f"max_queue_delay {config.max_queue_delay}s",
    )
    check(
        "bounded-admitted-p99",
        admitted_p99 <= latency_bound,
        f"admitted p99 {admitted_p99:.6f}s exceeds bound {latency_bound:.6f}s",
    )
    check(
        "goodput-floor",
        goodput >= spec.goodput_floor * spec.capacity_qps,
        f"goodput {goodput:.1f} qps below "
        f"{spec.goodput_floor:.0%} of capacity {spec.capacity_qps} qps",
    )
    check(
        "breaker-non-flapping",
        breaker.trip_count == 0,
        f"busy storm tripped the breaker {breaker.trip_count} time(s)",
    )
    check(
        "unprotected-collapse",
        unprotected_p99 > 2.0 * max(admitted_p99, service),
        f"unprotected p99 {unprotected_p99:.6f}s did not collapse vs "
        f"protected {admitted_p99:.6f}s -- the load is not past capacity",
    )
    if drain_started is not None:
        check(
            "monotone-drain",
            not drain_backlog_grew,
            "backlog grew after drain started",
        )
        check(
            "drain-completes",
            drain_completed is not None
            and drain_completed - drain_started <= config.drain_timeout + 1e-9,
            f"drain started at {drain_started:.3f}s did not empty the "
            f"backlog within {config.drain_timeout}s "
            f"(completed: {drain_completed})",
        )

    document: Dict[str, Any] = {
        "spec": {
            "seed": spec.seed,
            "capacity_qps": spec.capacity_qps,
            "multiple": spec.multiple,
            "duration": spec.duration,
            "deadline_budget": spec.deadline_budget,
            "drain_at": spec.drain_at,
            "goodput_floor": spec.goodput_floor,
            "inflight_budget": config.inflight_budget,
            "queue_budget": config.queue_budget,
            "max_queue_delay": config.max_queue_delay,
            "service_time": round(service, 9),
        },
        "arrivals": len(arrivals),
        "protected": {
            "outcomes": dict(sorted(outcome_counts.items())),
            "served": len(served_latencies),
            "deadline_drops": deadline_drops,
            "goodput_qps": round(goodput, 6),
            "admitted_wait_max": round(max_wait, 9),
            "latency_p50": round(
                percentile(sorted(served_latencies), 0.50), 9
            ),
            "latency_p99": round(admitted_p99, 9),
            "breaker_trips": breaker.trip_count,
            "states_seen": sorted(state_peaks),
            "drain": (
                None
                if drain_started is None
                else {
                    "started": round(drain_started, 9),
                    "completed": (
                        None
                        if drain_completed is None
                        else round(drain_completed, 9)
                    ),
                }
            ),
        },
        "unprotected": {
            "served": len(unprotected),
            "latency_p50": round(percentile(sorted(unprotected), 0.50), 9),
            "latency_p99": round(unprotected_p99, 9),
        },
        "violations": [
            {"invariant": v.invariant, "detail": v.detail} for v in violations
        ],
    }
    digest = hashlib.sha256(
        json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    document["digest"] = digest
    return OverloadReport(
        document=document, violations=tuple(violations), digest=digest
    )


def format_overload(report: OverloadReport) -> str:
    """Human-readable render of one :class:`OverloadReport`."""
    doc = report.document
    protected = doc["protected"]
    unprotected = doc["unprotected"]
    lines = [
        f"overload scenario seed={doc['spec']['seed']} "
        f"({doc['spec']['multiple']:g}x capacity, {doc['arrivals']} arrivals)",
        f"  protected:   served {protected['served']:>6}  "
        f"goodput {protected['goodput_qps']:8.1f} qps  "
        f"p99 {protected['latency_p99'] * 1000.0:8.3f}ms  "
        f"breaker trips {protected['breaker_trips']}",
        f"  unprotected: served {unprotected['served']:>6}  "
        f"p99 {unprotected['latency_p99'] * 1000.0:8.3f}ms",
        f"  outcomes: {protected['outcomes']}",
    ]
    if protected["drain"] is not None:
        drain = protected["drain"]
        completed = drain["completed"]
        lines.append(
            f"  drain: started {drain['started']:.3f}s, "
            + (
                "never completed"
                if completed is None
                else f"completed {completed:.3f}s"
            )
        )
    if report.violations:
        lines.append("  VIOLATIONS:")
        lines.extend(
            f"    {v.invariant}: {v.detail}" for v in report.violations
        )
    else:
        lines.append("  all overload invariants hold")
    lines.append(f"  digest {report.digest}")
    return "\n".join(lines)
