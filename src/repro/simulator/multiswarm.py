"""Parallel swarms sharing one network (the field test's real setting).

The Pando field test ran its two comparison swarms simultaneously over the
same provider network: their transfers contended for the same backbone and
interdomain links.  :class:`MultiSwarmSimulation` drives any number of
:class:`~repro.simulator.swarm.SwarmSimulation` instances over one shared
:class:`~repro.simulator.tcp.FlowNetwork` and one event clock, so
cross-swarm contention is modelled rather than approximated away.

Usage::

    net, engine = shared_substrate()
    swarm_a = SwarmSimulation(..., shared_net=net, shared_engine=engine,
                              swarm_id="native")
    swarm_b = SwarmSimulation(..., shared_net=net, shared_engine=engine,
                              swarm_id="p4p")
    results = MultiSwarmSimulation([swarm_a, swarm_b]).run(until=...)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.simulator.engine import EventEngine
from repro.simulator.swarm import SwarmResult, SwarmSimulation
from repro.simulator.tcp import FlowNetwork, make_flow_network


def shared_substrate(
    engine: Optional[str] = None, telemetry: Optional[object] = None
) -> Tuple[FlowNetwork, EventEngine]:
    """A fresh (flow network, event engine) pair for parallel swarms.

    ``engine`` selects the flow engine ("scalar" / "vectorized"; None
    consults ``$P4P_SIM_ENGINE``); contention between the swarms is
    modelled identically under either.
    """
    return make_flow_network(engine, telemetry=telemetry), EventEngine()


class MultiSwarmSimulation:
    """Coordinator stepping several swarms over one network and clock."""

    def __init__(self, swarms: Sequence[SwarmSimulation]) -> None:
        if not swarms:
            raise ValueError("need at least one swarm")
        net = swarms[0].net
        engine = swarms[0].engine
        ids = set()
        for swarm in swarms:
            if swarm.net is not net or swarm.engine is not engine:
                raise ValueError("all swarms must share one net and engine")
            if not swarm._shared:
                raise ValueError(
                    "construct swarms with shared_net/shared_engine for "
                    "multi-swarm runs"
                )
            if swarm.swarm_id in ids:
                raise ValueError(f"duplicate swarm_id {swarm.swarm_id!r}")
            ids.add(swarm.swarm_id)
        self.swarms = list(swarms)
        self.net = net
        self.engine = engine

    def run(self, until: Optional[float] = None) -> Dict[str, SwarmResult]:
        """Drive all swarms until none has work (or the horizon)."""
        for swarm in self.swarms:
            swarm.prepare()
        stall_ticks = 0
        while True:
            if not any(swarm.work_left() for swarm in self.swarms):
                break
            if until is not None and self.engine.now >= until:
                break
            if self.net.n_flows == 0 and self.engine.pending == 0:
                stall_ticks += 1
                if stall_ticks > 500:
                    break
            else:
                stall_ticks = 0

            candidates: List[float] = []
            timer_time = self.engine.peek_time()
            if timer_time is not None:
                candidates.append(timer_time)
            completions = [
                t
                for t in (swarm.next_completion_time() for swarm in self.swarms)
                if t is not None
            ]
            # All swarms see the same flow set; the per-swarm call differs
            # only in quantum, so take the earliest quantized view.
            if completions:
                candidates.append(min(completions))
            candidates.append(min(swarm.next_periodic_time() for swarm in self.swarms))
            step_to = min(candidates)
            if until is not None:
                step_to = min(step_to, until)

            self.net.advance(step_to)
            self.engine.run_timers_until(step_to)
            for flow in self.net.pop_finished():
                owner = flow.meta[0]
                owner._on_transfer_done(flow)
            for swarm in self.swarms:
                swarm.handle_ticks(step_to)
        return {swarm.swarm_id: swarm.result() for swarm in self.swarms}
