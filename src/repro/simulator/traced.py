"""The scripted traced scenario: client -> faulty proxy -> portal, with traces.

One deterministic end-to-end walk of the distributed-tracing pipeline: a
:class:`~repro.portal.resilience.ResilientPortalClient` (with a
:class:`~repro.observability.tracing.Tracer`) fetches views through a
:class:`~repro.portal.faults.FaultyPortal` that injects two mid-frame
resets and then a full outage, so the exported trace trees contain -- in
one causal structure --

* the client-side ``resilient.get_view`` / ``resilient.fetch`` /
  ``client.call`` span chain with ``reconnect``, ``retry``, ``backoff``,
  ``breaker-open``, and ``stale-serve`` events;
* the server-side ``portal.dispatch`` -> ``itracker.handle`` spans,
  parented under the client's spans via the wire-level ``trace``
  envelope.

Everything runs on step clocks (no wall time), a seeded RNG, zero backoff
delays, and no-op sleeps; the request interleaving is strictly serial, so
two runs with the same seed export **bit-identical** JSON -- which is
exactly what the CI trace-determinism step and the golden-file test
assert.  This module is also what ``p4p-repro trace`` runs by default.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.network.library import abilene
from repro.observability import Telemetry, Tracer
from repro.observability.assembler import (
    assemble_traces,
    export_document,
    export_traces,
)
from repro.portal.faults import Fault, FaultKind, FaultSchedule, FaultyPortal
from repro.portal.resilience import (
    CircuitBreaker,
    PortalUnavailable,
    ResilientPortalClient,
    RetryPolicy,
)
from repro.portal.server import PortalServer


class _StepClock:
    """A deterministic clock: each reading advances time by ``step``.

    The tiny per-call step keeps every timestamp distinct (so span sort
    keys are total) while :meth:`advance` models the passage of real
    scenario time (breaker cooldowns, staleness ages).
    """

    def __init__(self, start: float = 0.0, step: float = 0.001) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now = round(self.now + self.step, 9)
        return value

    def advance(self, seconds: float) -> None:
        self.now = round(self.now + seconds, 9)


def run_traced_scenario(seed: int = 0) -> Dict[str, Any]:
    """Run the scripted faulted fetch sequence and export its traces.

    Returns the canonical trace-export document (``format``,
    ``traces``): a list of causal trees, one per ``get_view`` call,
    merging the client-side (``apptracker`` namespace) and server-side
    (``portal`` namespace) trace buffers.
    """
    server_clock = _StepClock(start=1000.0)
    client_clock = _StepClock(start=0.0)

    # Static prices (hop count): no dynamic price-update spans, so the
    # export contains exactly the request-path causality under test.
    tracker = ITracker(
        topology=abilene(),
        config=ITrackerConfig(mode=PriceMode.HOP_COUNT),
    )
    server_telemetry = Telemetry(clock=server_clock, trace_namespace="portal")
    client_telemetry = Telemetry(clock=client_clock, trace_namespace="apptracker")
    tracer = Tracer(client_telemetry.traces, sample_rate=1.0, seed=seed)

    # Requests 0 and 1 die mid-frame: request 0 exercises PortalClient's
    # one-shot reconnect-and-resend (a ``reconnect`` event), whose resend
    # (request 1) dies too, escalating to ResilientPortalClient's retry
    # loop (``retry`` + ``backoff`` events).  Everything after passes.
    schedule = FaultSchedule(
        script={
            0: Fault(FaultKind.RESET_MID_FRAME),
            1: Fault(FaultKind.RESET_MID_FRAME),
        }
    )

    server = PortalServer(tracker, telemetry=server_telemetry)
    proxy = FaultyPortal(server.address, schedule=schedule)
    client = ResilientPortalClient(
        *proxy.address,
        retry=RetryPolicy(
            max_attempts=3, base_delay=0.0, max_delay=0.0, attempt_timeout=5.0
        ),
        breaker=CircuitBreaker(
            failure_threshold=3, cooldown=10.0, clock=client_clock
        ),
        stale_ttl=300.0,
        clock=client_clock,
        sleep=lambda _delay: None,
        rng=random.Random(seed),
        tracer=tracer,
    )
    outcomes: List[str] = []
    try:
        # 1. Faulted fetch: two resets, then success -> fresh view with
        #    reconnect/retry events inside the trace.
        snapshot = client.get_view()
        outcomes.append("stale" if snapshot.stale else "fresh")

        # 2-3. Full outage: transport failures trip the breaker (trace 2),
        #    then the open breaker rejects outright (trace 3); both serve
        #    the cached view stale.
        proxy.down = True
        for _ in range(2):
            try:
                snapshot = client.get_view()
                outcomes.append("stale" if snapshot.stale else "fresh")
            except PortalUnavailable:
                outcomes.append("unavailable")

        # 4. Recovery: proxy back, breaker cooldown elapsed -> the
        #    HALF_OPEN probe succeeds and the view is fresh again.
        proxy.down = False
        client_clock.advance(30.0)
        snapshot = client.get_view()
        outcomes.append("stale" if snapshot.stale else "fresh")
    finally:
        client.close()
        proxy.close()
        server.close()

    trees = assemble_traces(
        {
            "apptracker": client_telemetry.traces.snapshot(),
            "portal": server_telemetry.traces.snapshot(),
        }
    )
    document = export_document(export_traces(trees))
    document["outcomes"] = outcomes
    return document
