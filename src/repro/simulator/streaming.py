"""Liveswarms-style streaming swarm simulation (Fig. 9).

A source emits one block every ``block_mbit / stream_mbps`` seconds; clients
exchange blocks swarm-style within a sliding playback window.  Uploaders
push the *freshest* block each chosen neighbor still needs (live-edge
first, the scheduling that keeps a live swarm from collectively falling
behind); blocks older than the window are abandoned and count as playback
loss.

Metrics: per-client received fraction (continuity / achieved throughput)
and per-backbone-link traffic volume, the quantity Fig. 9 compares between
native and P4P Liveswarms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.apptracker.selection import PeerInfo, PeerSelector
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.simulator.engine import EventEngine
from repro.simulator.tcp import Flow, make_flow_network, resolve_engine

LinkKey = Tuple[str, str]


@dataclass
class StreamingConfig:
    """Streaming workload parameters.

    Defaults approximate the paper's Liveswarms experiments: a ~1 Mbps
    stream watched by a few dozen clients for a 20-minute run.
    """

    stream_mbps: float = 1.0
    block_mbit: float = 2.0
    duration: float = 1200.0
    window_blocks: int = 20
    neighbors: int = 10
    upload_slots: int = 4
    access_up_mbps: float = 10.0
    access_down_mbps: float = 20.0
    source_up_mbps: float = 20.0
    sample_interval: float = 10.0
    completion_quantum: float = 0.05
    tcp_window_mbit: Optional[float] = None
    rtt_base_ms: float = 4.0
    rtt_per_mile_ms: float = 0.02
    rng_seed: int = 0
    #: Flow-engine selector (see :func:`repro.simulator.tcp.make_flow_network`).
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        resolve_engine(self.engine)  # validates the name early
        if self.stream_mbps <= 0 or self.block_mbit <= 0:
            raise ValueError("stream rate and block size must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.window_blocks < 1:
            raise ValueError("window must hold at least one block")
        if self.tcp_window_mbit is not None and self.tcp_window_mbit <= 0:
            raise ValueError("tcp_window_mbit must be positive")

    @property
    def block_interval(self) -> float:
        """Seconds between consecutive source blocks."""
        return self.block_mbit / self.stream_mbps

    @property
    def total_blocks(self) -> int:
        return int(self.duration / self.block_interval)


@dataclass
class _StreamPeer:
    info: PeerInfo
    is_source: bool
    up_link: int
    down_link: int
    blocks: Set[int] = field(default_factory=set)
    neighbors: Set[int] = field(default_factory=set)
    in_progress: Set[int] = field(default_factory=set)
    active_uploads: Set[int] = field(default_factory=set)

    @property
    def peer_id(self) -> int:
        return self.info.peer_id


@dataclass
class StreamingResult:
    """Outcome of one streaming run."""

    received_blocks: Dict[int, int]
    total_blocks: int
    link_traffic_mbit: Dict[LinkKey, float]
    duration: float

    def continuity(self, peer_id: int) -> float:
        """Fraction of the stream a client received in time."""
        if self.total_blocks == 0:
            return 0.0
        return self.received_blocks.get(peer_id, 0) / self.total_blocks

    def mean_continuity(self) -> float:
        if not self.received_blocks:
            return 0.0
        return sum(
            self.continuity(peer_id) for peer_id in self.received_blocks
        ) / len(self.received_blocks)

    def mean_backbone_volume_mbit(self) -> float:
        """Average per-backbone-link traffic volume (Fig. 9's y-axis)."""
        if not self.link_traffic_mbit:
            return 0.0
        return sum(self.link_traffic_mbit.values()) / len(self.link_traffic_mbit)


class StreamingSimulation:
    """One streaming swarm over one provider topology."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingTable,
        config: StreamingConfig,
        selector: PeerSelector,
        clients: Sequence[PeerInfo],
        source: PeerInfo,
    ) -> None:
        if not clients:
            raise ValueError("streaming swarm needs clients")
        self.topology = topology
        self.routing = routing
        self.config = config
        self.selector = selector
        self.rng = random.Random(config.rng_seed)
        self.engine = EventEngine()
        self.net = make_flow_network(config.engine)
        self._backbone_index: Dict[LinkKey, int] = {}
        for key, link in topology.links.items():
            if link.headroom > 0:
                self._backbone_index[key] = self.net.add_link(("bb", key), link.headroom)
        self._route_cache: Dict[Tuple[str, str], Tuple[int, ...]] = {}
        self._cap_cache: Dict[Tuple[str, str], float] = {}

        self.peers: Dict[int, _StreamPeer] = {}
        self._register(source, is_source=True)
        for info in clients:
            self._register(info, is_source=False)
        self._latest_block = -1
        self._received_counter: Dict[int, int] = {
            info.peer_id: 0 for info in clients
        }

        # Static neighborhood, selected up front (clients join together).
        members = [source] + list(clients)
        for info in clients:
            peer = self.peers[info.peer_id]
            candidates = [other for other in members if other.peer_id != info.peer_id]
            for chosen in self.selector.select(
                info, candidates, config.neighbors, self.rng
            ):
                peer.neighbors.add(chosen.peer_id)
                self.peers[chosen.peer_id].neighbors.add(info.peer_id)

    def _register(self, info: PeerInfo, is_source: bool) -> None:
        if info.pid not in self.topology.nodes:
            raise KeyError(f"unknown PID {info.pid!r}")
        up = self.net.add_link(
            ("up", info.peer_id),
            self.config.source_up_mbps if is_source else self.config.access_up_mbps,
        )
        down = self.net.add_link(("down", info.peer_id), self.config.access_down_mbps)
        self.peers[info.peer_id] = _StreamPeer(
            info=info, is_source=is_source, up_link=up, down_link=down
        )

    def _route_links(self, src_pid: str, dst_pid: str) -> Tuple[int, ...]:
        pair = (src_pid, dst_pid)
        cached = self._route_cache.get(pair)
        if cached is None:
            cached = tuple(
                self._backbone_index[key]
                for key in self.routing.route(src_pid, dst_pid)
                if key in self._backbone_index
            )
            self._route_cache[pair] = cached
        return cached

    def _rate_cap(self, src_pid: str, dst_pid: str) -> Optional[float]:
        """TCP window/RTT throughput ceiling (same model as the swarm)."""
        window = self.config.tcp_window_mbit
        if window is None:
            return None
        pair = (src_pid, dst_pid)
        cached = self._cap_cache.get(pair)
        if cached is None:
            miles = self.routing.distance(src_pid, dst_pid)
            rtt_seconds = (
                self.config.rtt_base_ms + self.config.rtt_per_mile_ms * miles
            ) / 1000.0
            cached = window / rtt_seconds
            self._cap_cache[pair] = cached
        return cached

    # -- streaming protocol ----------------------------------------------------

    def _window_start(self) -> int:
        return max(0, self._latest_block - self.config.window_blocks + 1)

    def _emit_block(self) -> None:
        self._latest_block += 1
        source = next(p for p in self.peers.values() if p.is_source)
        source.blocks.add(self._latest_block)
        expired = self._window_start()
        for peer in self.peers.values():
            # Abandon expired blocks (playback moved past them).
            peer.in_progress = {b for b in peer.in_progress if b >= expired}
        self._fill_slots(source)

    def _wanted(self, uploader: _StreamPeer, downloader: _StreamPeer) -> Set[int]:
        window_start = self._window_start()
        candidate = uploader.blocks - downloader.blocks - downloader.in_progress
        return {block for block in candidate if block >= window_start}

    def _fill_slots(self, uploader: _StreamPeer) -> None:
        while len(uploader.active_uploads) < self.config.upload_slots:
            candidates: List[Tuple[int, _StreamPeer]] = []
            for peer_id in uploader.neighbors:
                if peer_id in uploader.active_uploads:
                    continue
                other = self.peers[peer_id]
                if other.is_source:
                    continue
                wanted = self._wanted(uploader, other)
                if not wanted:
                    continue
                # Push the *freshest* useful block: live streaming must keep
                # the swarm at the live edge -- chasing the oldest deadline
                # first lets the edge expire for everyone downstream.
                candidates.append((max(wanted), other))
            if not candidates:
                return
            block, downloader = self.rng.choice(candidates)
            links = (
                (uploader.up_link,)
                + self._route_links(uploader.info.pid, downloader.info.pid)
                + (downloader.down_link,)
            )
            self.net.start_flow(
                links,
                self.config.block_mbit,
                meta=(uploader.peer_id, downloader.peer_id, block),
                rate_cap=self._rate_cap(uploader.info.pid, downloader.info.pid),
            )
            uploader.active_uploads.add(downloader.peer_id)
            downloader.in_progress.add(block)

    def _on_transfer_done(self, flow: Flow) -> None:
        uploader_id, downloader_id, block = flow.meta
        uploader = self.peers[uploader_id]
        downloader = self.peers[downloader_id]
        uploader.active_uploads.discard(downloader_id)
        downloader.in_progress.discard(block)
        if block >= self._window_start():
            downloader.blocks.add(block)
            self._received_counter[downloader_id] = (
                self._received_counter.get(downloader_id, 0) + 1
            )
        self._fill_slots(uploader)
        self._fill_slots(downloader)

    # -- main loop ------------------------------------------------------------

    def run(self) -> StreamingResult:
        import math

        engine = self.engine
        interval = self.config.block_interval
        for index in range(self.config.total_blocks):
            engine.schedule(index * interval, self._emit_block)

        quantum = self.config.completion_quantum
        while True:
            timer_time = engine.peek_time()
            completion = self.net.next_completion()
            if completion is not None and quantum > 0:
                completion = quantum * math.ceil(completion / quantum - 1e-9)
            candidates = [t for t in (timer_time, completion) if t is not None]
            if not candidates:
                break
            step_to = min(min(candidates), self.config.duration)
            self.net.advance(step_to)
            engine.run_timers_until(step_to)
            for flow in self.net.pop_finished():
                self._on_transfer_done(flow)
            if step_to >= self.config.duration:
                break
        link_traffic = {
            key: float(self.net.link_mbit[index])
            for key, index in self._backbone_index.items()
        }
        return StreamingResult(
            received_blocks=dict(self._received_counter),
            total_blocks=self.config.total_blocks,
            link_traffic_mbit=link_traffic,
            duration=self.engine.now,
        )
