"""Session-level BitTorrent swarm simulation (Sec. 7.1 methodology).

The simulator follows the paper's described methodology: the native
BitTorrent protocol (rarest-first piece selection, tit-for-tat unchoking
with an optimistic slot) simulated at the TCP *session* level -- each block
transfer is a fluid flow whose throughput is its max-min fair share of the
access and backbone links it crosses, recomputed on flow arrivals and
departures.

Peers are placed at PoP (PID) nodes and attach through dedicated access
links; the appTracker assigns neighbors at join time using a pluggable
:class:`~repro.apptracker.selection.PeerSelector` (native random,
delay-localized, or P4P).  An optional *tracker hook* fires periodically so
a dynamic iTracker can observe link loads and adjust p-distances mid-swarm,
as in the paper's PlanetLab experiments.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.apptracker.selection import PeerInfo, PeerSelector
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.simulator.engine import EventEngine
from repro.simulator.tcp import Flow, FlowNetwork, make_flow_network, resolve_engine

LinkKey = Tuple[str, str]


@dataclass
class SwarmConfig:
    """Workload and protocol parameters of one swarm simulation.

    Defaults follow the paper: 12 MB file in 256 KB blocks, 100 Mbps access
    links, 4 upload slots with a 25% optimistic-unchoke chance, 10 s rechoke
    accounting interval, peers joining within a 5-minute window.
    """

    file_mbit: float = 96.0
    block_mbit: float = 2.0
    neighbors: int = 20
    upload_slots: int = 4
    optimistic_probability: float = 0.25
    rechoke_interval: float = 10.0
    access_up_mbps: float = 100.0
    access_down_mbps: float = 100.0
    seed_up_mbps: float = 1000.0
    join_window: float = 300.0
    sample_interval: float = 10.0
    tracker_update_interval: float = 30.0
    completion_quantum: float = 0.0
    reannounce_interval: Optional[float] = None
    tcp_window_mbit: Optional[float] = None
    rtt_base_ms: float = 4.0
    rtt_per_mile_ms: float = 0.02
    rng_seed: int = 0
    #: Flow-engine selector: "scalar" (reference), "vectorized"
    #: (incremental), or None to consult $P4P_SIM_ENGINE (default scalar).
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        resolve_engine(self.engine)  # validates the name early
        if self.file_mbit <= 0 or self.block_mbit <= 0:
            raise ValueError("file and block sizes must be positive")
        if self.block_mbit > self.file_mbit:
            raise ValueError("block larger than file")
        if self.neighbors < 1:
            raise ValueError("need at least one neighbor")
        if self.upload_slots < 1:
            raise ValueError("need at least one upload slot")
        if not 0 <= self.optimistic_probability <= 1:
            raise ValueError("optimistic_probability must be in [0, 1]")
        if self.completion_quantum < 0:
            raise ValueError("completion_quantum must be >= 0")
        if self.tcp_window_mbit is not None and self.tcp_window_mbit <= 0:
            raise ValueError("tcp_window_mbit must be positive")

    @property
    def n_blocks(self) -> int:
        return max(1, round(self.file_mbit / self.block_mbit))


@dataclass
class _SimPeer:
    """Internal per-peer protocol state."""

    info: PeerInfo
    is_seed: bool
    up_link: int
    down_link: int
    blocks: Set[int] = field(default_factory=set)
    neighbors: Set[int] = field(default_factory=set)
    in_progress: Set[int] = field(default_factory=set)
    active_uploads: Set[int] = field(default_factory=set)  # peer ids served
    received_from: Dict[int, float] = field(default_factory=dict)
    joined_at: float = 0.0
    completed_at: Optional[float] = None
    departed: bool = False

    @property
    def peer_id(self) -> int:
        return self.info.peer_id

    def has_all(self, n_blocks: int) -> bool:
        return len(self.blocks) >= n_blocks


@dataclass
class UtilizationSample:
    """One periodic snapshot of backbone link usage and swarm membership."""

    time: float
    max_utilization: float
    link_utilization: Dict[LinkKey, float]
    swarm_size: int = 0
    link_cumulative_mbit: Dict[LinkKey, float] = field(default_factory=dict)


@dataclass
class SwarmResult:
    """Outcome of one swarm run."""

    completion_times: Dict[int, float]  # join -> finish duration per peer
    finish_at: Dict[int, float]  # absolute completion timestamps
    link_traffic_mbit: Dict[LinkKey, float]
    samples: List[UtilizationSample]
    total_payload_mbit: float
    duration: float
    peer_pids: Dict[int, str]
    tracker_hook_failures: int = 0

    def mean_completion(self) -> float:
        if not self.completion_times:
            return 0.0
        return sum(self.completion_times.values()) / len(self.completion_times)

    def completion_cdf(self) -> List[Tuple[float, float]]:
        """Sorted (completion time, cumulative fraction) points."""
        times = sorted(self.completion_times.values())
        n = len(times)
        return [(t, (i + 1) / n) for i, t in enumerate(times)]


#: Hook type: (now, per-backbone-link cumulative Mbit, per-link rate Mbps).
TrackerHook = Callable[[float, Dict[LinkKey, float], Dict[LinkKey, float]], None]


class SwarmSimulation:
    """One BitTorrent swarm over one provider topology."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingTable,
        config: SwarmConfig,
        selector: PeerSelector,
        peers: Sequence[PeerInfo],
        seeds: Sequence[PeerInfo],
        tracker_hook: Optional[TrackerHook] = None,
        join_times: Optional[Dict[int, float]] = None,
        linger_time: Optional[float] = None,
        access_overrides: Optional[Dict[int, Tuple[float, float]]] = None,
        transfer_listener: Optional[Callable[[PeerInfo, PeerInfo, float], None]] = None,
        shared_net: Optional[FlowNetwork] = None,
        shared_engine: Optional[EventEngine] = None,
        swarm_id: str = "swarm",
        telemetry: Optional[object] = None,
    ) -> None:
        if not peers:
            raise ValueError("swarm needs at least one downloading peer")
        if not seeds:
            raise ValueError("swarm needs at least one seed")
        if (shared_net is None) != (shared_engine is None):
            raise ValueError("shared_net and shared_engine come together")
        self.topology = topology
        self.routing = routing
        self.config = config
        self.selector = selector
        self.tracker_hook = tracker_hook
        self.join_times = dict(join_times) if join_times else None
        self.linger_time = linger_time
        self.access_overrides = dict(access_overrides) if access_overrides else {}
        self.transfer_listener = transfer_listener
        self.swarm_id = swarm_id
        #: Optional :class:`repro.observability.Telemetry`.  Give it the sim
        #: clock (``Telemetry(clock=lambda: engine.now)``) so every periodic
        #: sample lands in the ``p4p_sim_*`` gauges as simulated time-series.
        self.telemetry = telemetry
        self.rng = random.Random(config.rng_seed)
        self.engine = shared_engine or EventEngine()
        self.net = shared_net or make_flow_network(config.engine, telemetry=telemetry)
        self._shared = shared_net is not None
        self._attributed_mbit: Dict[LinkKey, float] = {}
        self._backbone_index: Dict[LinkKey, int] = {}
        for key, link in topology.links.items():
            headroom = link.headroom
            if headroom <= 0:
                continue  # fully consumed by background traffic
            try:
                # Parallel swarms over one network share the backbone links.
                self._backbone_index[key] = self.net.link_id(("bb", key))
            except KeyError:
                self._backbone_index[key] = self.net.add_link(("bb", key), headroom)
        self._route_cache: Dict[Tuple[str, str], Tuple[int, ...]] = {}
        self._cap_cache: Dict[Tuple[str, str], float] = {}

        self.peers: Dict[int, _SimPeer] = {}
        self._pending: List[_SimPeer] = []
        self._members: List[PeerInfo] = []
        self._n_blocks = config.n_blocks
        self._active_downloaders = 0
        self.samples: List[UtilizationSample] = []
        self._last_sample_mbit: Dict[LinkKey, float] = {
            key: 0.0 for key in self._backbone_index
        }
        self._last_hook_mbit: Dict[LinkKey, float] = dict(self._last_sample_mbit)
        self._hook_failures = 0

        for info in seeds:
            self._register(info, is_seed=True)
        for info in peers:
            self._register(info, is_seed=False)

    # -- setup ------------------------------------------------------------

    def _register(self, info: PeerInfo, is_seed: bool) -> None:
        if info.peer_id in self.peers:
            raise ValueError(f"duplicate peer id {info.peer_id}")
        if info.pid not in self.topology.nodes:
            raise KeyError(f"peer {info.peer_id} placed at unknown PID {info.pid!r}")
        override = self.access_overrides.get(info.peer_id)
        if override is not None:
            up_mbps, down_mbps = override
        else:
            up_mbps = (
                self.config.seed_up_mbps if is_seed else self.config.access_up_mbps
            )
            down_mbps = self.config.access_down_mbps
        up = self.net.add_link(("up", self.swarm_id, info.peer_id), up_mbps)
        down = self.net.add_link(("down", self.swarm_id, info.peer_id), down_mbps)
        peer = _SimPeer(info=info, is_seed=is_seed, up_link=up, down_link=down)
        if is_seed:
            peer.blocks = set(range(self._n_blocks))
            peer.completed_at = 0.0
        self.peers[info.peer_id] = peer
        self._pending.append(peer)

    def _rate_cap(self, src_pid: str, dst_pid: str) -> Optional[float]:
        """TCP window/RTT throughput ceiling for one transfer.

        This is the mechanism that makes low-latency (local) peerings more
        efficient at the transport layer (Sec. 4's observation) -- without
        it, session-level max-min sharing is distance-blind.
        """
        window = self.config.tcp_window_mbit
        if window is None:
            return None
        pair = (src_pid, dst_pid)
        cached = self._cap_cache.get(pair)
        if cached is None:
            miles = self.routing.distance(src_pid, dst_pid)
            rtt_seconds = (
                self.config.rtt_base_ms + self.config.rtt_per_mile_ms * miles
            ) / 1000.0
            cached = window / rtt_seconds
            self._cap_cache[pair] = cached
        return cached

    def _route_links(self, src_pid: str, dst_pid: str) -> Tuple[int, ...]:
        pair = (src_pid, dst_pid)
        cached = self._route_cache.get(pair)
        if cached is None:
            cached = tuple(
                self._backbone_index[key]
                for key in self.routing.route(src_pid, dst_pid)
                if key in self._backbone_index
            )
            self._route_cache[pair] = cached
        return cached

    # -- membership ---------------------------------------------------------

    def _join(self, peer: _SimPeer) -> None:
        peer.joined_at = self.engine.now
        candidates = [info for info in self._members if info.peer_id != peer.peer_id]
        chosen = self.selector.select(
            peer.info, candidates, self.config.neighbors, self.rng
        )
        for other_info in chosen:
            other = self.peers[other_info.peer_id]
            peer.neighbors.add(other.peer_id)
            other.neighbors.add(peer.peer_id)
        self._members.append(peer.info)
        if not peer.is_seed:
            self._active_downloaders += 1
        # The newcomer can immediately serve or be served.
        refill = {peer.peer_id} | peer.neighbors
        for peer_id in refill:
            self._fill_slots(self.peers[peer_id])

    # -- protocol -------------------------------------------------------------

    def _interested_neighbors(self, uploader: _SimPeer) -> List[_SimPeer]:
        """Neighbors that want a block the uploader has and aren't served."""
        interested = []
        for peer_id in uploader.neighbors:
            if peer_id in uploader.active_uploads:
                continue
            other = self.peers[peer_id]
            if other.departed or other.is_seed or other.completed_at is not None:
                continue
            if other.joined_at > self.engine.now:
                continue
            wanted = uploader.blocks - other.blocks - other.in_progress
            if wanted:
                interested.append(other)
        return interested

    def _choose_recipient(
        self, uploader: _SimPeer, interested: List[_SimPeer]
    ) -> _SimPeer:
        """Tit-for-tat with optimistic unchoke; seeds pick randomly."""
        if uploader.is_seed or self.rng.random() < self.config.optimistic_probability:
            return self.rng.choice(interested)
        return max(
            interested,
            key=lambda peer: (
                uploader.received_from.get(peer.peer_id, 0.0),
                self.rng.random(),
            ),
        )

    def _choose_block(self, uploader: _SimPeer, downloader: _SimPeer) -> Optional[int]:
        """Rarest-first among the blocks the uploader can offer."""
        wanted = uploader.blocks - downloader.blocks - downloader.in_progress
        if not wanted:
            return None
        counts: Dict[int, int] = {}
        for block in wanted:
            counts[block] = 0
        for peer_id in downloader.neighbors:
            other_blocks = self.peers[peer_id].blocks
            for block in wanted:
                if block in other_blocks:
                    counts[block] += 1
        rarest = min(counts.values())
        pool = [block for block, count in counts.items() if count == rarest]
        return self.rng.choice(pool)

    def _fill_slots(self, uploader: _SimPeer) -> None:
        if uploader.departed or uploader.joined_at > self.engine.now:
            return
        while len(uploader.active_uploads) < self.config.upload_slots:
            interested = self._interested_neighbors(uploader)
            if not interested:
                return
            downloader = self._choose_recipient(uploader, interested)
            block = self._choose_block(uploader, downloader)
            if block is None:
                return
            links = (
                (uploader.up_link,)
                + self._route_links(uploader.info.pid, downloader.info.pid)
                + (downloader.down_link,)
            )
            self.net.start_flow(
                links,
                self.config.block_mbit,
                meta=(self, uploader.peer_id, downloader.peer_id, block),
                rate_cap=self._rate_cap(uploader.info.pid, downloader.info.pid),
            )
            uploader.active_uploads.add(downloader.peer_id)
            downloader.in_progress.add(block)

    def _on_transfer_done(self, flow: Flow) -> None:
        owner, uploader_id, downloader_id, block = flow.meta
        assert owner is self
        uploader = self.peers[uploader_id]
        downloader = self.peers[downloader_id]
        uploader.active_uploads.discard(downloader_id)
        downloader.in_progress.discard(block)
        for key in self.routing.route(uploader.info.pid, downloader.info.pid):
            if key in self._backbone_index:
                self._attributed_mbit[key] = (
                    self._attributed_mbit.get(key, 0.0) + self.config.block_mbit
                )
        if not downloader.departed:
            downloader.blocks.add(block)
            downloader.received_from[uploader_id] = (
                downloader.received_from.get(uploader_id, 0.0) + self.config.block_mbit
            )
            if self.transfer_listener is not None:
                self.transfer_listener(
                    uploader.info, downloader.info, self.config.block_mbit
                )
            if downloader.completed_at is None and downloader.has_all(self._n_blocks):
                downloader.completed_at = self.engine.now
                self._active_downloaders -= 1
                if self.linger_time is not None:
                    peer_id = downloader.peer_id
                    self.engine.schedule(
                        self.linger_time, lambda p=peer_id: self.depart(p)
                    )
        self._fill_slots(uploader)
        self._fill_slots(downloader)

    def depart(self, peer_id: int) -> None:
        """Remove a peer mid-download (field-test churn)."""
        peer = self.peers[peer_id]
        if peer.departed:
            return
        peer.departed = True
        if peer.completed_at is None and not peer.is_seed:
            self._active_downloaders -= 1
        for flow in list(self.net.flows()):
            owner, src, dst, block = flow.meta
            if owner is not self:
                continue
            if src == peer_id or dst == peer_id:
                self.net.abort_flow(flow.flow_id)
                self.peers[src].active_uploads.discard(dst)
                self.peers[dst].in_progress.discard(block)
        for other_id in peer.neighbors:
            self.peers[other_id].neighbors.discard(peer_id)
        self._members = [info for info in self._members if info.peer_id != peer_id]

    # -- periodic bookkeeping --------------------------------------------------

    def _take_sample(self) -> None:
        link_util = {}
        link_cum = {}
        max_util = 0.0
        for key, index in self._backbone_index.items():
            util = self.net.utilization(index)
            link_util[key] = util
            link_cum[key] = float(self.net.link_mbit[index])
            max_util = max(max_util, util)
        self.samples.append(
            UtilizationSample(
                time=self.engine.now,
                max_utilization=max_util,
                link_utilization=link_util,
                swarm_size=sum(
                    1
                    for info in self._members
                    if not self.peers[info.peer_id].is_seed
                ),
                link_cumulative_mbit=link_cum,
            )
        )
        if self.telemetry is not None:
            self._export_sample(self.samples[-1])

    def _export_sample(self, sample: UtilizationSample) -> None:
        """Mirror the latest periodic sample into the ``p4p_sim_*`` gauges."""
        registry = self.telemetry.registry
        labels = {"swarm": self.swarm_id}
        registry.gauge(
            "p4p_sim_max_link_utilization",
            "Max backbone utilization at the last sample, per swarm.",
            ("swarm",),
        ).labels(**labels).set(sample.max_utilization)
        registry.gauge(
            "p4p_sim_swarm_size",
            "Downloading peers currently joined, per swarm.",
            ("swarm",),
        ).labels(**labels).set(sample.swarm_size)
        completed = sum(
            1
            for peer in self.peers.values()
            if not peer.is_seed and peer.completed_at is not None
        )
        registry.gauge(
            "p4p_sim_completed_peers",
            "Peers that finished the download, per swarm.",
            ("swarm",),
        ).labels(**labels).set(completed)
        downloaders = sum(1 for peer in self.peers.values() if not peer.is_seed)
        registry.gauge(
            "p4p_sim_completion_fraction",
            "Completed share of all downloaders, per swarm.",
            ("swarm",),
        ).labels(**labels).set(completed / downloaders if downloaders else 0.0)

    def _run_tracker_hook(self) -> None:
        if self.tracker_hook is None:
            return
        traffic = {
            key: float(self.net.link_mbit[index])
            for key, index in self._backbone_index.items()
        }
        dt = self.config.tracker_update_interval
        rates = {
            key: max(0.0, (traffic[key] - self._last_hook_mbit[key]) / dt)
            for key in traffic
        }
        self._last_hook_mbit = traffic
        try:
            self.tracker_hook(self.engine.now, traffic, rates)
        except Exception:
            # iTrackers are not on the critical path (Sec. 8): a failing
            # portal update must never take the swarm down; peers continue
            # on the last known p-distances.
            self._hook_failures += 1

    def _reannounce(self) -> None:
        """Periodic tracker re-announce: under-connected downloaders ask for
        more neighbors (how late-arriving local peers become reachable)."""
        member_ids = {info.peer_id for info in self._members}
        for info in list(self._members):
            peer = self.peers[info.peer_id]
            if peer.departed or peer.is_seed or peer.completed_at is not None:
                continue
            deficit = self.config.neighbors - len(peer.neighbors)
            if deficit <= 0:
                continue
            candidates = [
                other
                for other in self._members
                if other.peer_id != peer.peer_id
                and other.peer_id not in peer.neighbors
            ]
            if not candidates:
                continue
            for chosen in self.selector.select(info, candidates, deficit, self.rng):
                if chosen.peer_id not in member_ids:
                    continue
                peer.neighbors.add(chosen.peer_id)
                self.peers[chosen.peer_id].neighbors.add(peer.peer_id)
            self._fill_slots(peer)

    def _reset_tit_for_tat(self) -> None:
        for peer in self.peers.values():
            peer.received_from.clear()
        # Periodic retry also covers any refill opportunity the event-driven
        # triggers missed (e.g. after optimistic choices starved a slot).
        for peer in self.peers.values():
            if not peer.departed:
                self._fill_slots(peer)

    # -- main loop ----------------------------------------------------------------

    def prepare(self) -> None:
        """Schedule joins and initialize periodic-tick state.

        Called once before the first step; :meth:`run` does it implicitly,
        the multi-swarm coordinator calls it for every swarm up front.
        """
        for peer in self._pending:
            if peer.is_seed:
                delay = 0.0
            elif self.join_times is not None:
                delay = self.join_times.get(peer.peer_id, 0.0)
            else:
                delay = self.rng.uniform(0.0, self.config.join_window)
            self.engine.schedule(delay, lambda p=peer: self._join(p))
        self._pending = []
        reannounce = self.config.reannounce_interval
        self._next_ticks = {
            "sample": self.config.sample_interval,
            "rechoke": self.config.rechoke_interval,
            "hook": self.config.tracker_update_interval,
            "reannounce": reannounce if reannounce else float("inf"),
        }

    def next_periodic_time(self) -> float:
        """Earliest pending periodic tick (sample/rechoke/hook/reannounce)."""
        return min(self._next_ticks.values())

    def next_completion_time(self) -> Optional[float]:
        """Next flow completion, rounded up to the batching quantum."""
        completion = self.net.next_completion()
        quantum = self.config.completion_quantum
        if completion is not None and quantum > 0:
            completion = quantum * math.ceil(completion / quantum - 1e-9)
        return completion

    def handle_ticks(self, step_to: float) -> None:
        """Fire every periodic tick due at ``step_to``."""
        ticks = self._next_ticks
        if step_to >= ticks["sample"] - 1e-9:
            self._take_sample()
            ticks["sample"] += self.config.sample_interval
        if step_to >= ticks["rechoke"] - 1e-9:
            self._reset_tit_for_tat()
            ticks["rechoke"] += self.config.rechoke_interval
        if step_to >= ticks["hook"] - 1e-9:
            self._run_tracker_hook()
            ticks["hook"] += self.config.tracker_update_interval
        if step_to >= ticks["reannounce"] - 1e-9:
            self._reannounce()
            ticks["reannounce"] += self.config.reannounce_interval

    def work_left(self) -> bool:
        return not self._no_work_left()

    def run(self, until: Optional[float] = None) -> SwarmResult:
        """Run to completion (all downloaders finished) or ``until``.

        Returns the swarm outcome; peers still downloading at the horizon
        are simply absent from ``completion_times``.
        """
        if self._shared:
            raise RuntimeError(
                "shared-network swarms are driven by MultiSwarmSimulation"
            )
        engine = self.engine
        self.prepare()
        stall_ticks = 0

        while True:
            if self._no_work_left():
                break
            if until is not None and engine.now >= until:
                break
            # Stall guard: downloaders remain but nothing can progress (e.g.
            # a disconnected neighborhood); avoid spinning on periodic ticks.
            if self.net.n_flows == 0 and engine.pending == 0:
                stall_ticks += 1
                if stall_ticks > 500:
                    break
            else:
                stall_ticks = 0
            timer_time = engine.peek_time()
            completion = self.next_completion_time()
            periodic = self.next_periodic_time()
            step_candidates = [
                t for t in (timer_time, completion, periodic) if t is not None
            ]
            if not step_candidates:
                break
            step_to = min(step_candidates)
            if until is not None:
                step_to = min(step_to, until)
            self.net.advance(step_to)
            engine.run_timers_until(step_to)
            for flow in self.net.pop_finished():
                self._on_transfer_done(flow)
            self.handle_ticks(step_to)
        return self._result()

    def result(self) -> SwarmResult:
        """The outcome so far (the coordinator calls this after driving)."""
        return self._result()

    def _no_work_left(self) -> bool:
        return (
            self._active_downloaders <= 0
            and self.engine.pending == 0
            and self.net.n_flows == 0
        )

    def _result(self) -> SwarmResult:
        completion = {}
        finish_at = {}
        for peer in self.peers.values():
            if peer.is_seed or peer.completed_at is None:
                continue
            completion[peer.peer_id] = peer.completed_at - peer.joined_at
            finish_at[peer.peer_id] = peer.completed_at
        if self._shared:
            # Shared-network mode: the net's counters mix all swarms; use
            # the per-transfer attribution instead (completed blocks only).
            link_traffic = {
                key: self._attributed_mbit.get(key, 0.0)
                for key in self._backbone_index
            }
        else:
            link_traffic = {
                key: float(self.net.link_mbit[index])
                for key, index in self._backbone_index.items()
            }
        total_payload = self.config.file_mbit * len(completion)
        return SwarmResult(
            tracker_hook_failures=self._hook_failures,
            completion_times=completion,
            finish_at=finish_at,
            link_traffic_mbit=link_traffic,
            samples=self.samples,
            total_payload_mbit=total_payload,
            duration=self.engine.now,
            peer_pids={
                peer_id: peer.info.pid for peer_id, peer in self.peers.items()
            },
        )
