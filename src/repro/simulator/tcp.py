"""Session-level TCP model: flows share links max-min fairly (Sec. 7.1).

Following the paper (which follows Bharambe et al. and Bindal et al.), TCP
is modelled at the session level: the throughput of each active transfer is
its max-min fair share of the links it crosses, recomputed whenever a
transfer starts or finishes.  Per-link byte counters are maintained so the
evaluation metrics (bottleneck traffic, utilization timelines, unit BDP)
can be derived.

Implementation note: between rate recomputations the per-flow remaining
sizes live in a numpy array (the *canonical* state) so advancing the clock
is a vectorized operation; the per-flow objects are flushed from the array
whenever the flow set changes.  This keeps simulations with thousands of
concurrent transfers cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.optimization.maxmin import _build_entries, _progressive_fill

LinkKey = Tuple[str, str]

_DONE_EPS = 1e-6


@dataclass
class Flow:
    """One in-flight transfer."""

    flow_id: int
    link_indices: Tuple[int, ...]
    remaining_mbit: float
    meta: object = None
    rate: float = 0.0
    rate_cap: float = float("inf")

    @property
    def finished(self) -> bool:
        return self.remaining_mbit <= _DONE_EPS


class FlowNetwork:
    """Active transfers over a capacitated link set.

    Usage: register links up front (``add_link``), then ``start_flow`` /
    ``advance`` / ``pop_finished`` under an external clock.  Rates are
    recomputed lazily -- flow churn marks the network dirty and the next
    query recomputes -- so one recompute covers a whole batch of same-time
    events.
    """

    def __init__(self) -> None:
        self._capacities: List[float] = []
        self._link_names: List[object] = []
        self._link_index: Dict[object, int] = {}
        self._flows: Dict[int, Flow] = {}
        self._next_flow_id = 0
        self._dirty = True
        self._clock = 0.0
        # Canonical between recomputes (aligned with _flow_list):
        self._flow_list: List[Flow] = []
        self._remaining = np.zeros(0)
        self._rates = np.zeros(0)
        self._link_rates = np.zeros(0)
        self.link_mbit = np.zeros(0)

    # -- links ------------------------------------------------------------

    def add_link(self, name: object, capacity: float) -> int:
        """Register a link; returns its index.  Duplicate names rejected."""
        if capacity <= 0:
            raise ValueError(f"link {name!r} needs positive capacity")
        if name in self._link_index:
            raise ValueError(f"duplicate link {name!r}")
        index = len(self._capacities)
        self._link_index[name] = index
        self._link_names.append(name)
        self._capacities.append(capacity)
        self.link_mbit = np.append(self.link_mbit, 0.0)
        self._link_rates = np.append(self._link_rates, 0.0)
        return index

    def link_id(self, name: object) -> int:
        return self._link_index[name]

    @property
    def n_links(self) -> int:
        return len(self._capacities)

    def link_name(self, index: int) -> object:
        return self._link_names[index]

    def capacity(self, index: int) -> float:
        return self._capacities[index]

    # -- flows -------------------------------------------------------------

    def start_flow(
        self,
        link_indices: Sequence[int],
        size_mbit: float,
        meta: object = None,
        rate_cap: Optional[float] = None,
    ) -> Flow:
        """Begin a transfer of ``size_mbit`` over the given links.

        ``rate_cap`` bounds the flow's throughput regardless of fair share
        (the TCP window/RTT ceiling of the session-level model).
        """
        if size_mbit <= 0:
            raise ValueError("flow size must be positive")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError("rate_cap must be positive")
        for index in link_indices:
            if not 0 <= index < self.n_links:
                raise IndexError(f"unknown link index {index}")
        flow = Flow(
            flow_id=self._next_flow_id,
            link_indices=tuple(sorted(set(link_indices))),
            remaining_mbit=size_mbit,
            meta=meta,
            rate_cap=float("inf") if rate_cap is None else float(rate_cap),
        )
        self._next_flow_id += 1
        self._flows[flow.flow_id] = flow
        self._dirty = True
        return flow

    def abort_flow(self, flow_id: int) -> Optional[Flow]:
        """Remove a flow without completing it (peer departure)."""
        self._flush()
        flow = self._flows.pop(flow_id, None)
        if flow is not None:
            self._dirty = True
        return flow

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    def flows(self) -> Iterable[Flow]:
        return list(self._flows.values())

    # -- internal state management -----------------------------------------

    def _flush(self) -> None:
        """Write array state back into the flow objects."""
        for position, flow in enumerate(self._flow_list):
            flow.remaining_mbit = float(self._remaining[position])
            flow.rate = float(self._rates[position])

    def _recompute(self) -> None:
        self._flush()
        self._flow_list = list(self._flows.values())
        if self._flow_list:
            n_links = self.n_links
            link_of, flow_of = _build_entries(
                [flow.link_indices for flow in self._flow_list], n_links
            )
            caps = np.array([flow.rate_cap for flow in self._flow_list])
            rates = _progressive_fill(
                link_of,
                flow_of,
                np.asarray(self._capacities),
                len(self._flow_list),
                caps,
            )
            self._rates = rates
            self._remaining = np.array(
                [flow.remaining_mbit for flow in self._flow_list]
            )
            finite = np.where(np.isfinite(rates), rates, 0.0)
            self._link_rates = np.bincount(
                link_of, weights=finite[flow_of], minlength=n_links
            )
        else:
            self._flow_list = []
            self._rates = np.zeros(0)
            self._remaining = np.zeros(0)
            self._link_rates = np.zeros(self.n_links)
        self._dirty = False

    # -- time ---------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Progress all flows to ``now`` at current rates."""
        if now < self._clock - 1e-9:
            raise ValueError("clock cannot move backwards")
        if self._dirty:
            self._recompute()
        dt = now - self._clock
        if dt > 0 and self._remaining.size:
            finite = np.isfinite(self._rates)
            self._remaining[finite] -= self._rates[finite] * dt
            self._remaining[~finite] = 0.0
            self.link_mbit += self._link_rates * dt
        elif dt > 0:
            self.link_mbit += self._link_rates * dt
        self._clock = now

    def next_completion(self) -> Optional[float]:
        """Absolute time the earliest active flow finishes; None if idle."""
        if self._dirty:
            self._recompute()
        if not self._remaining.size:
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            eta = np.where(
                np.isinf(self._rates),
                0.0,
                np.maximum(self._remaining, 0.0) / np.maximum(self._rates, 1e-30),
            )
        eta[self._rates <= 0] = np.inf
        eta[np.isinf(self._rates)] = 0.0
        best = float(eta.min())
        if not np.isfinite(best):
            return None
        return self._clock + best

    def pop_finished(self) -> List[Flow]:
        """Remove and return flows whose transfer completed by the clock."""
        if self._dirty:
            self._recompute()
        done_positions = np.nonzero(self._remaining <= _DONE_EPS)[0]
        if not done_positions.size:
            return []
        self._flush()
        done = [self._flow_list[position] for position in done_positions]
        for flow in done:
            del self._flows[flow.flow_id]
        self._dirty = True
        return done

    # -- accounting ----------------------------------------------------------

    def link_traffic(self) -> Dict[object, float]:
        """Cumulative Mbit carried per link (by registered name)."""
        return {
            name: float(self.link_mbit[index])
            for name, index in self._link_index.items()
        }

    def utilization(self, index: int) -> float:
        """Instantaneous utilization of a link at current rates."""
        if self._dirty:
            self._recompute()
        return float(self._link_rates[index]) / self._capacities[index]
