"""Session-level TCP model: flows share links max-min fairly (Sec. 7.1).

Following the paper (which follows Bharambe et al. and Bindal et al.), TCP
is modelled at the session level: the throughput of each active transfer is
its max-min fair share of the links it crosses, recomputed whenever a
transfer starts or finishes.  Per-link byte counters are maintained so the
evaluation metrics (bottleneck traffic, utilization timelines, unit BDP)
can be derived.

Two engines implement the same contract (selected via
:func:`make_flow_network` or the ``P4P_SIM_ENGINE`` environment variable):

* :class:`FlowNetwork` -- the reference ("scalar") engine.  Between rate
  recomputations the per-flow remaining sizes live in a numpy array so
  advancing the clock is vectorized, but every flow arrival or completion
  rebuilds the whole flow->link incidence from the Python flow objects and
  re-solves the entire network.
* :class:`VectorizedFlowNetwork` -- the incremental engine.  The incidence
  lives permanently in flat numpy entry arrays (a COO sparse flow x link
  matrix with lazy deletion and periodic compaction), flow state lives in
  reusable array slots, and each arrival/completion only re-solves the
  links transitively affected (the dirty component), falling back to a
  single whole-network vector solve when the dirty set grows past a
  threshold.  Allocations agree with the scalar engine to ~1e-9 (bit-exact
  on the full-solve path); see ``tests/test_engine_differential.py``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.optimization.maxmin import (
    _build_entries,
    _progressive_fill,
    _progressive_fill_fast,
)

LinkKey = Tuple[str, str]

_DONE_EPS = 1e-6


@dataclass
class Flow:
    """One in-flight transfer."""

    flow_id: int
    link_indices: Tuple[int, ...]
    remaining_mbit: float
    meta: object = None
    rate: float = 0.0
    rate_cap: float = float("inf")

    @property
    def finished(self) -> bool:
        return self.remaining_mbit <= _DONE_EPS


class FlowNetwork:
    """Active transfers over a capacitated link set.

    Usage: register links up front (``add_link``), then ``start_flow`` /
    ``advance`` / ``pop_finished`` under an external clock.  Rates are
    recomputed lazily -- flow churn marks the network dirty and the next
    query recomputes -- so one recompute covers a whole batch of same-time
    events.
    """

    def __init__(self) -> None:
        self._capacities: List[float] = []
        self._link_names: List[object] = []
        self._link_index: Dict[object, int] = {}
        self._flows: Dict[int, Flow] = {}
        self._next_flow_id = 0
        self._dirty = True
        self._clock = 0.0
        # Canonical between recomputes (aligned with _flow_list):
        self._flow_list: List[Flow] = []
        self._remaining = np.zeros(0)
        self._rates = np.zeros(0)
        self._link_rates = np.zeros(0)
        self.link_mbit = np.zeros(0)

    # -- links ------------------------------------------------------------

    def add_link(self, name: object, capacity: float) -> int:
        """Register a link; returns its index.  Duplicate names rejected."""
        if capacity <= 0:
            raise ValueError(f"link {name!r} needs positive capacity")
        if name in self._link_index:
            raise ValueError(f"duplicate link {name!r}")
        index = len(self._capacities)
        self._link_index[name] = index
        self._link_names.append(name)
        self._capacities.append(capacity)
        self.link_mbit = np.append(self.link_mbit, 0.0)
        self._link_rates = np.append(self._link_rates, 0.0)
        return index

    def link_id(self, name: object) -> int:
        return self._link_index[name]

    @property
    def n_links(self) -> int:
        return len(self._capacities)

    def link_name(self, index: int) -> object:
        return self._link_names[index]

    def capacity(self, index: int) -> float:
        return self._capacities[index]

    # -- flows -------------------------------------------------------------

    def start_flow(
        self,
        link_indices: Sequence[int],
        size_mbit: float,
        meta: object = None,
        rate_cap: Optional[float] = None,
    ) -> Flow:
        """Begin a transfer of ``size_mbit`` over the given links.

        ``rate_cap`` bounds the flow's throughput regardless of fair share
        (the TCP window/RTT ceiling of the session-level model).
        """
        if size_mbit <= 0:
            raise ValueError("flow size must be positive")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError("rate_cap must be positive")
        for index in link_indices:
            if not 0 <= index < self.n_links:
                raise IndexError(f"unknown link index {index}")
        flow = Flow(
            flow_id=self._next_flow_id,
            link_indices=tuple(sorted(set(link_indices))),
            remaining_mbit=size_mbit,
            meta=meta,
            rate_cap=float("inf") if rate_cap is None else float(rate_cap),
        )
        self._next_flow_id += 1
        self._flows[flow.flow_id] = flow
        self._dirty = True
        return flow

    def abort_flow(self, flow_id: int) -> Optional[Flow]:
        """Remove a flow without completing it (peer departure)."""
        self._flush()
        flow = self._flows.pop(flow_id, None)
        if flow is not None:
            self._dirty = True
        return flow

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    def flows(self) -> Iterable[Flow]:
        return list(self._flows.values())

    # -- internal state management -----------------------------------------

    def _flush(self) -> None:
        """Write array state back into the flow objects."""
        for position, flow in enumerate(self._flow_list):
            flow.remaining_mbit = float(self._remaining[position])
            flow.rate = float(self._rates[position])

    def _recompute(self) -> None:
        self._flush()
        self._flow_list = list(self._flows.values())
        if self._flow_list:
            n_links = self.n_links
            link_of, flow_of = _build_entries(
                [flow.link_indices for flow in self._flow_list], n_links
            )
            caps = np.array([flow.rate_cap for flow in self._flow_list])
            rates = _progressive_fill(
                link_of,
                flow_of,
                np.asarray(self._capacities),
                len(self._flow_list),
                caps,
            )
            self._rates = rates
            self._remaining = np.array(
                [flow.remaining_mbit for flow in self._flow_list]
            )
            finite = np.where(np.isfinite(rates), rates, 0.0)
            # bincount of an *empty* entry set returns int64 even with
            # weights; keep the rates array float so later writes into it
            # (and dt-scaled accounting) never truncate.
            self._link_rates = np.bincount(
                link_of, weights=finite[flow_of], minlength=n_links
            ).astype(float, copy=False)
        else:
            self._flow_list = []
            self._rates = np.zeros(0)
            self._remaining = np.zeros(0)
            self._link_rates = np.zeros(self.n_links)
        self._dirty = False

    # -- time ---------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Progress all flows to ``now`` at current rates."""
        if now < self._clock - 1e-9:
            raise ValueError("clock cannot move backwards")
        if self._dirty:
            self._recompute()
        dt = now - self._clock
        if dt > 0 and self._remaining.size:
            finite = np.isfinite(self._rates)
            self._remaining[finite] -= self._rates[finite] * dt
            self._remaining[~finite] = 0.0
            self.link_mbit += self._link_rates * dt
        elif dt > 0:
            self.link_mbit += self._link_rates * dt
        self._clock = now

    def next_completion(self) -> Optional[float]:
        """Absolute time the earliest active flow finishes; None if idle."""
        if self._dirty:
            self._recompute()
        if not self._remaining.size:
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            eta = np.where(
                np.isinf(self._rates),
                0.0,
                np.maximum(self._remaining, 0.0) / np.maximum(self._rates, 1e-30),
            )
        eta[self._rates <= 0] = np.inf
        eta[np.isinf(self._rates)] = 0.0
        best = float(eta.min())
        if not np.isfinite(best):
            return None
        return self._clock + best

    def pop_finished(self) -> List[Flow]:
        """Remove and return flows whose transfer completed by the clock."""
        if self._dirty:
            self._recompute()
        # Unconstrained (infinite-rate) flows complete instantly: they must
        # pop even when the clock has not moved, else next_completion keeps
        # reporting "now" and the driving loop spins forever.
        instant = np.isinf(self._rates)
        if instant.any():
            self._remaining[instant] = 0.0
        done_positions = np.nonzero(self._remaining <= _DONE_EPS)[0]
        if not done_positions.size:
            return []
        self._flush()
        done = [self._flow_list[position] for position in done_positions]
        for flow in done:
            del self._flows[flow.flow_id]
        self._dirty = True
        return done

    # -- accounting ----------------------------------------------------------

    def link_traffic(self) -> Dict[object, float]:
        """Cumulative Mbit carried per link (by registered name)."""
        return {
            name: float(self.link_mbit[index])
            for name, index in self._link_index.items()
        }

    def utilization(self, index: int) -> float:
        """Instantaneous utilization of a link at current rates."""
        if self._dirty:
            self._recompute()
        return float(self._link_rates[index]) / self._capacities[index]


@dataclass
class EngineStats:
    """Recompute accounting of a :class:`VectorizedFlowNetwork`.

    Mirrored into the observability registry when the network is built with
    a telemetry bundle; kept as plain ints so tests and benchmarks can read
    them without a registry.
    """

    full_solves: int = 0
    incremental_solves: int = 0
    dirty_flows_last: int = 0
    dirty_flows_peak: int = 0
    compactions: int = 0

    @property
    def solves(self) -> int:
        return self.full_solves + self.incremental_solves


#: Histogram buckets for dirty-component sizes (flows per incremental solve).
_DIRTY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)


class VectorizedFlowNetwork(FlowNetwork):
    """Incrementally-updated max-min engine over a persistent incidence.

    State layout (the "slot" representation):

    * Every active flow owns a slot in flat numpy arrays (remaining size,
      rate, rate cap, active mask, flow id); slots are recycled through a
      free list, so per-event work never rebuilds per-flow arrays.
    * The flow x link incidence is a COO entry store: parallel arrays
      ``entry_link`` / ``entry_slot``.  A flow's entries are written once
      at ``start_flow``; freeing a slot tombstones its entries
      (``entry_slot = -1``), and the store compacts when less than half
      the cells are live.
    * Each link knows the set of slots crossing it, giving the adjacency
      needed to expand a dirty link set into its closed component.

    Invalidation rule: an arrival or departure marks exactly the flow's
    links dirty.  At the next query the dirty links are expanded to
    transitive closure (links of flows on dirty links, and so on); because
    the closure shares no link with the rest of the network, re-solving it
    in isolation with full link capacities reproduces the global max-min
    allocation.  When the closure exceeds ``dirty_flow_floor`` +
    ``dirty_flow_fraction`` x active flows, expansion is abandoned and one
    whole-network vector solve (no Python per-flow work) runs instead --
    that path is bit-identical to the scalar engine's allocation.
    """

    def __init__(
        self,
        telemetry: Optional[object] = None,
        dirty_flow_floor: int = 64,
        dirty_flow_fraction: float = 0.125,
        perf_clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        super().__init__()
        # Solve-latency measurement is telemetry-only, but even that read
        # must be injectable (DET001): a replayed scenario with a fake
        # clock reproduces its exported histograms exactly.
        self._perf_clock = perf_clock
        if dirty_flow_floor < 1:
            raise ValueError("dirty_flow_floor must be >= 1")
        if not 0.0 <= dirty_flow_fraction <= 1.0:
            raise ValueError("dirty_flow_fraction must be in [0, 1]")
        self._dirty_floor = dirty_flow_floor
        self._dirty_fraction = dirty_flow_fraction
        self.stats = EngineStats()
        # Slot arrays (capacity doubles on demand).
        size = 64
        self._s_remaining = np.zeros(size)
        self._s_rate = np.zeros(size)
        self._s_cap = np.full(size, np.inf)
        self._s_active = np.zeros(size, dtype=bool)
        self._s_flow_id = np.full(size, -1, dtype=np.int64)
        self._slot_flow: List[Optional[Flow]] = []
        self._free_slots: List[int] = []
        self._slot_of_flow: Dict[int, int] = {}
        # COO entry store.
        self._e_link = np.zeros(size * 4, dtype=np.intp)
        self._e_slot = np.full(size * 4, -1, dtype=np.intp)
        self._e_count = 0  # high-water mark of written cells
        self._e_live = 0  # cells not tombstoned
        self._entry_span: List[Tuple[int, int]] = []  # per-slot (start, len)
        # Per-link adjacency for dirty-set expansion.
        self._link_flows: List[Set[int]] = []
        # Dirty state: link ids touched since the last solve.
        self._dirty_links: Set[int] = set()
        self._full_dirty = False
        # Consecutive solves that fell back to a full recompute.  Once the
        # streak shows the network is effectively one component, the BFS is
        # doomed and skipped; an occasional probe re-detects partitioning.
        self._full_streak = 0
        self._caps_np = np.zeros(0)
        self._caps_stale = True
        self._act_cache: Optional[np.ndarray] = None
        self._dirty = False  # the base-class flag stays unused
        self.telemetry = telemetry
        if telemetry is not None:
            registry = telemetry.registry
            labels = {"engine": "vectorized"}
            self._m_solves = registry.counter(
                "p4p_engine_recomputes_total",
                "Max-min re-solves by engine and mode (full vs incremental).",
                ("engine", "mode"),
            )
            self._m_dirty = registry.histogram(
                "p4p_engine_dirty_flows",
                "Flows re-rated per solve (dirty-component size).",
                ("engine",),
                buckets=_DIRTY_BUCKETS,
            ).labels(**labels)
            self._m_latency = registry.histogram(
                "p4p_engine_solve_seconds",
                "Wall-clock latency of one max-min solve.",
                ("engine",),
            ).labels(**labels)
        else:
            self._m_solves = None
            self._m_dirty = None
            self._m_latency = None

    # -- links ------------------------------------------------------------

    def add_link(self, name: object, capacity: float) -> int:
        index = super().add_link(name, capacity)
        self._link_flows.append(set())
        self._caps_stale = True
        return index

    def _caps(self) -> np.ndarray:
        if self._caps_stale:
            self._caps_np = np.asarray(self._capacities, dtype=float)
            self._caps_stale = False
        return self._caps_np

    # -- slot / entry store ------------------------------------------------

    def _grow_slots(self, needed: int) -> None:
        size = self._s_remaining.size
        if needed <= size:
            return
        while size < needed:
            size *= 2
        for name in ("_s_remaining", "_s_rate", "_s_cap", "_s_active", "_s_flow_id"):
            old = getattr(self, name)
            fresh = np.zeros(size, dtype=old.dtype)
            if name == "_s_cap":
                fresh[:] = np.inf
            elif name == "_s_flow_id":
                fresh[:] = -1
            fresh[: old.size] = old
            setattr(self, name, fresh)

    def _append_entries(self, slot: int, links: Tuple[int, ...]) -> Tuple[int, int]:
        count = len(links)
        need = self._e_count + count
        size = self._e_link.size
        if need > size:
            while size < need:
                size *= 2
            for name in ("_e_link", "_e_slot"):
                old = getattr(self, name)
                fresh = np.full(size, -1, dtype=np.intp)
                fresh[: old.size] = old
                setattr(self, name, fresh)
        start = self._e_count
        if count:
            self._e_link[start:need] = links
            self._e_slot[start:need] = slot
        self._e_count = need
        self._e_live += count
        return (start, count)

    def _compact_entries(self) -> None:
        mark = self._e_count
        valid = self._e_slot[:mark] >= 0
        live = int(valid.sum())
        self._e_link[:live] = self._e_link[:mark][valid]
        self._e_slot[:live] = self._e_slot[:mark][valid]
        self._e_slot[live : self._e_count] = -1
        self._e_count = live
        self._e_live = live
        slots = self._e_slot[:live]
        if live:
            starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(slots)) + 1)
            )
            lens = np.diff(np.concatenate((starts, [live])))
            for slot, start, length in zip(slots[starts], starts, lens):
                self._entry_span[slot] = (int(start), int(length))
        self.stats.compactions += 1

    def _free_slot(self, slot: int) -> None:
        flow = self._slot_flow[slot]
        start, count = self._entry_span[slot]
        if count:
            self._e_slot[start : start + count] = -1
            self._e_live -= count
        for link in flow.link_indices:
            self._link_flows[link].discard(slot)
        self._s_active[slot] = False
        self._s_flow_id[slot] = -1
        del self._slot_of_flow[flow.flow_id]
        self._slot_flow[slot] = None
        self._free_slots.append(slot)
        self._act_cache = None
        # Compact here (not only on full solves) so a workload that stays
        # on the incremental path cannot grow the entry store unboundedly.
        if self._e_live < self._e_count // 2 and self._e_count > 256:
            self._compact_entries()

    def _act(self) -> np.ndarray:
        if self._act_cache is None:
            self._act_cache = np.flatnonzero(self._s_active[: len(self._slot_flow)])
        return self._act_cache

    # -- flows -------------------------------------------------------------

    def start_flow(
        self,
        link_indices: Sequence[int],
        size_mbit: float,
        meta: object = None,
        rate_cap: Optional[float] = None,
    ) -> Flow:
        if size_mbit <= 0:
            raise ValueError("flow size must be positive")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError("rate_cap must be positive")
        links = tuple(sorted(set(link_indices)))
        if links and not (0 <= links[0] and links[-1] < self.n_links):
            bad = links[0] if links[0] < 0 else links[-1]
            raise IndexError(f"unknown link index {bad}")
        flow = Flow(
            flow_id=self._next_flow_id,
            link_indices=links,
            remaining_mbit=size_mbit,
            meta=meta,
            rate_cap=float("inf") if rate_cap is None else float(rate_cap),
        )
        self._next_flow_id += 1
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = len(self._slot_flow)
            self._slot_flow.append(None)
            self._entry_span.append((0, 0))
            self._grow_slots(slot + 1)
        self._slot_flow[slot] = flow
        self._slot_of_flow[flow.flow_id] = slot
        self._s_remaining[slot] = size_mbit
        self._s_cap[slot] = flow.rate_cap
        self._s_flow_id[slot] = flow.flow_id
        self._s_active[slot] = True
        self._entry_span[slot] = self._append_entries(slot, links)
        for link in links:
            self._link_flows[link].add(slot)
        if links:
            self._dirty_links.update(links)
        else:
            # A flow crossing no link is unconstrained: its rate is its cap
            # (or infinite) and nobody else's allocation changes.
            self._s_rate[slot] = flow.rate_cap
        self._act_cache = None
        return flow

    def abort_flow(self, flow_id: int) -> Optional[Flow]:
        slot = self._slot_of_flow.get(flow_id)
        if slot is None:
            return None
        flow = self._slot_flow[slot]
        flow.remaining_mbit = float(self._s_remaining[slot])
        flow.rate = float(self._s_rate[slot])
        self._free_slot(slot)
        self._dirty_links.update(flow.link_indices)
        return flow

    @property
    def n_flows(self) -> int:
        return len(self._slot_of_flow)

    def flows(self) -> Iterable[Flow]:
        # flow ids are monotonic, so dict order is ascending flow id --
        # the same iteration order the scalar engine produces.
        return [self._slot_flow[slot] for slot in self._slot_of_flow.values()]

    def _flush(self) -> None:
        """Write slot-array state back into the live flow objects."""
        for slot in self._slot_of_flow.values():
            flow = self._slot_flow[slot]
            flow.remaining_mbit = float(self._s_remaining[slot])
            flow.rate = float(self._s_rate[slot])

    # -- solving -----------------------------------------------------------

    def _ensure_rates(self) -> None:
        if not self._full_dirty and not self._dirty_links:
            return
        started = self._perf_clock()
        component = None
        if not self._full_dirty and (
            self._full_streak < 8 or self.stats.solves % 32 == 0
        ):
            component = self._collect_component()
        if component is None:
            self._solve_full()
            self._full_streak += 1
            mode = "full"
            dirty = self.n_flows
        else:
            self._full_streak = 0
            links, slots = component
            self._solve_component(links, slots)
            mode = "incremental"
            dirty = len(slots)
        self._dirty_links.clear()
        self._full_dirty = False
        stats = self.stats
        if mode == "full":
            stats.full_solves += 1
        else:
            stats.incremental_solves += 1
        stats.dirty_flows_last = dirty
        stats.dirty_flows_peak = max(stats.dirty_flows_peak, dirty)
        if self._m_solves is not None:
            self._m_solves.labels(engine="vectorized", mode=mode).inc()
            self._m_dirty.observe(dirty)
            self._m_latency.observe(self._perf_clock() - started)

    def _collect_component(self) -> Optional[Tuple[Set[int], Set[int]]]:
        """Expand dirty links to their closed component, or None if too big."""
        limit = self._dirty_floor + int(self._dirty_fraction * self.n_flows)
        seen_links = set(self._dirty_links)
        stack = list(seen_links)
        seen_slots: Set[int] = set()
        link_flows = self._link_flows
        slot_flow = self._slot_flow
        while stack:
            link = stack.pop()
            for slot in link_flows[link]:
                if slot in seen_slots:
                    continue
                seen_slots.add(slot)
                if len(seen_slots) > limit:
                    return None
                for other in slot_flow[slot].link_indices:
                    if other not in seen_links:
                        seen_links.add(other)
                        stack.append(other)
        return seen_links, seen_slots

    def _solve_component(self, links: Set[int], slots: Set[int]) -> None:
        link_list = sorted(links)
        if not slots:
            # The dirty links went idle (last crossing flow left).
            self._link_rates[link_list] = 0.0
            return
        slot_list = sorted(slots)
        link_pos = {link: local for local, link in enumerate(link_list)}
        slot_flow = self._slot_flow
        lengths = []
        flat: List[int] = []
        for slot in slot_list:
            indices = slot_flow[slot].link_indices
            lengths.append(len(indices))
            for link in indices:
                flat.append(link_pos[link])
        n = len(slot_list)
        link_of = np.asarray(flat, dtype=np.intp)
        flow_of = np.repeat(np.arange(n, dtype=np.intp), lengths)
        caps = self._s_cap[slot_list]
        # Components are small (bounded by the dirty limit): the plain
        # bincount fill beats the CSR fill's fixed setup cost here.
        rates = _progressive_fill(
            link_of, flow_of, self._caps()[link_list], n, caps
        )
        self._s_rate[slot_list] = rates
        finite = np.where(np.isfinite(rates), rates, 0.0)
        self._link_rates[link_list] = np.bincount(
            link_of, weights=finite[flow_of], minlength=len(link_list)
        )

    def _solve_full(self) -> None:
        if self._e_live < self._e_count // 2 and self._e_count > 256:
            self._compact_entries()
        mark = self._e_count
        entry_slots = self._e_slot[:mark]
        valid = entry_slots >= 0
        link_of = self._e_link[:mark][valid]
        slot_of = entry_slots[valid]
        act = self._act()
        n_links = self.n_links
        if not act.size:
            self._link_rates = np.zeros(n_links)
            return
        inverse = np.full(len(self._slot_flow), -1, dtype=np.intp)
        inverse[act] = np.arange(act.size)
        flow_of = inverse[slot_of]
        rates = _progressive_fill_fast(
            link_of, flow_of, self._caps(), act.size, self._s_cap[act]
        )
        self._s_rate[act] = rates
        finite = np.where(np.isfinite(rates), rates, 0.0)
        # astype guards the empty-entry case: bincount of a zero-length
        # array comes back int64, and _solve_component later writes floats
        # into this array in place.
        self._link_rates = np.bincount(
            link_of, weights=finite[flow_of], minlength=n_links
        ).astype(float, copy=False)

    # -- time ---------------------------------------------------------------

    def advance(self, now: float) -> None:
        if now < self._clock - 1e-9:
            raise ValueError("clock cannot move backwards")
        self._ensure_rates()
        dt = now - self._clock
        if dt > 0:
            act = self._act()
            if act.size:
                rates = self._s_rate[act]
                finite = np.isfinite(rates)
                remaining = self._s_remaining[act]
                self._s_remaining[act] = np.where(
                    finite, remaining - rates * dt, 0.0
                )
            self.link_mbit += self._link_rates * dt
        self._clock = now

    def next_completion(self) -> Optional[float]:
        self._ensure_rates()
        act = self._act()
        if not act.size:
            return None
        rates = self._s_rate[act]
        remaining = self._s_remaining[act]
        with np.errstate(divide="ignore", invalid="ignore"):
            eta = np.where(
                np.isinf(rates),
                0.0,
                np.maximum(remaining, 0.0) / np.maximum(rates, 1e-30),
            )
        eta[rates <= 0] = np.inf
        eta[np.isinf(rates)] = 0.0
        best = float(eta.min())
        if not np.isfinite(best):
            return None
        return self._clock + best

    def pop_finished(self) -> List[Flow]:
        self._ensure_rates()
        act = self._act()
        if not act.size:
            return []
        rates = self._s_rate[act]
        done_mask = (self._s_remaining[act] <= _DONE_EPS) | np.isinf(rates)
        done_slots = act[done_mask]
        if not done_slots.size:
            return []
        order = np.argsort(self._s_flow_id[done_slots], kind="stable")
        done: List[Flow] = []
        for slot in done_slots[order]:
            slot = int(slot)
            flow = self._slot_flow[slot]
            rate = float(self._s_rate[slot])
            flow.remaining_mbit = 0.0 if np.isinf(rate) else float(
                self._s_remaining[slot]
            )
            flow.rate = rate
            done.append(flow)
            self._free_slot(slot)
            self._dirty_links.update(flow.link_indices)
        return done

    # -- accounting ----------------------------------------------------------

    def utilization(self, index: int) -> float:
        self._ensure_rates()
        return float(self._link_rates[index]) / self._capacities[index]


#: Engine registry for :func:`make_flow_network`.
ENGINES = ("scalar", "vectorized")

#: Environment variable consulted when no explicit engine is requested.
ENGINE_ENV_VAR = "P4P_SIM_ENGINE"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Normalize an engine choice: explicit > $P4P_SIM_ENGINE > scalar."""
    name = engine or os.environ.get(ENGINE_ENV_VAR) or "scalar"
    if name not in ENGINES:
        raise ValueError(
            f"unknown flow engine {name!r}; choices: {', '.join(ENGINES)}"
        )
    return name


def make_flow_network(
    engine: Optional[str] = None, telemetry: Optional[object] = None
) -> FlowNetwork:
    """Build the selected flow engine.

    ``engine`` may be ``"scalar"`` (reference oracle), ``"vectorized"``
    (incremental engine), or None to consult ``$P4P_SIM_ENGINE`` and
    default to the scalar reference.  ``telemetry`` is only consumed by the
    vectorized engine (solve counters / latency histograms).
    """
    name = resolve_engine(engine)
    if name == "vectorized":
        return VectorizedFlowNetwork(telemetry=telemetry)
    return FlowNetwork()
