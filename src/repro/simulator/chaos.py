"""Deterministic chaos harness: crash, restart, partition, corrupt -- and prove recovery.

:mod:`repro.simulator.outage` scripts one fault (a portal going dark) and
shows the client-side degradation ladder.  This module generalizes it into
a *chaos schedule*: a seeded sequence of server-side events driven off
simulation time --

* ``CRASH`` -- the primary portal process dies (server closed, proxy
  refuses); its :class:`~repro.core.statestore.StateStore` survives;
* ``RESTART`` -- a new iTracker restores from snapshot + WAL and resumes
  the projected super-gradient from its last iterate, with a strictly
  higher ``(epoch, version)``;
* ``RESTART_CLEAN`` -- the disk is lost too (store cleared): the restart
  forgets everything, exactly the amnesia the state store exists to
  prevent -- run it to watch the invariants trip;
* ``PARTITION_START`` / ``PARTITION_END`` -- the client-facing network
  path to the primary drops (via the :class:`~repro.portal.faults.
  FaultyPortal` proxy) while the portal itself stays up;
* ``CORRUPT_WAL`` -- garbage appended to the WAL tail (a torn write),
  which recovery must truncate, not trip over.

Throughout, a :class:`~repro.portal.replication.StandbyReplica` tails the
primary's WAL and a :class:`~repro.portal.replication.
FailoverPortalClient` serves the swarm's guidance from whichever replica
answers, so the scenario exercises the full survivability story: WAL
durability, epoch-monotone versions, health-ranked failover, bounded
staleness, and MLU re-convergence after recovery.

**Invariants** are checked after every tracker tick and every event:

* *version monotonicity* -- the ``(epoch, version)`` pair observed by the
  selection plane never decreases (a clean restart violates this; a
  store-backed restart cannot);
* *bounded staleness* -- stale views are never older than the TTL, and a
  standby's advertised staleness never exceeds the sync interval plus the
  current outage length;
* *no price reset* -- the price vector after a ``RESTART`` equals the
  last persisted pre-crash iterate;
* *re-convergence* -- the faulted run's mean active MLU lands within
  ``epsilon`` of a fault-free twin run (same seeds, no events).

Determinism: every clock is the simulation clock, every RNG is seeded,
and backoff sleeps are no-ops -- two runs with the same seed produce
identical event timelines, observations, and violations.
"""

from __future__ import annotations

import enum
import math
import random
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apptracker.selection import P4PSelection
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.objectives import effective_capacity
from repro.core.pdistance import PDistanceMap
from repro.core.statestore import StateStore
from repro.network.library import abilene
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.observability import (
    RegistryResilienceCounters,
    Telemetry,
    Tracer,
    assemble_traces,
    export_traces,
)
from repro.portal.client import Integrator
from repro.portal.faults import FaultSchedule, FaultyPortal
from repro.portal.replication import FailoverPortalClient, StandbyReplica
from repro.portal.resilience import CircuitBreaker, RetryPolicy
from repro.portal.server import PortalServer
from repro.simulator.outage import _default_config, _run_one
from repro.simulator.swarm import SwarmResult


class ChaosEventKind(enum.Enum):
    """What happens to the primary portal at one scheduled instant."""

    CRASH = "crash"
    RESTART = "restart"
    RESTART_CLEAN = "restart-clean"
    PARTITION_START = "partition-start"
    PARTITION_END = "partition-end"
    CORRUPT_WAL = "corrupt-wal"


@dataclass(frozen=True)
class ChaosEvent:
    time: float
    kind: ChaosEventKind

    def __post_init__(self) -> None:
        if not isinstance(self.time, (int, float)) or not math.isfinite(self.time):
            raise ValueError(f"event time must be a finite number, got {self.time!r}")
        if self.time < 0:
            raise ValueError("event time must be >= 0")

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe document; round-trips through :meth:`from_json`."""
        return {"time": float(self.time), "kind": self.kind.value}

    @classmethod
    def from_json(cls, document: Dict[str, Any]) -> "ChaosEvent":
        """Parse and validate one event; raises ``ValueError`` on garbage.

        Minimized failing fuzz seeds are checked in as JSON fixtures, so
        a hand-edited or corrupted fixture must fail loudly here rather
        than as a mid-scenario surprise.
        """
        if not isinstance(document, dict):
            raise ValueError(f"chaos event must be an object, got {document!r}")
        unknown = set(document) - {"time", "kind"}
        if unknown:
            raise ValueError(f"chaos event has unknown keys {sorted(unknown)}")
        try:
            kind = ChaosEventKind(document["kind"])
        except KeyError:
            raise ValueError("chaos event missing 'kind'") from None
        except ValueError:
            valid = ", ".join(k.value for k in ChaosEventKind)
            raise ValueError(
                f"unknown chaos event kind {document.get('kind')!r}; one of: {valid}"
            ) from None
        if "time" not in document:
            raise ValueError("chaos event missing 'time'")
        time_value = document["time"]
        if isinstance(time_value, bool) or not isinstance(time_value, (int, float)):
            raise ValueError(f"chaos event time must be a number, got {time_value!r}")
        return cls(time=float(time_value), kind=kind)


class ChaosSchedule:
    """A time-ordered event list; :meth:`seeded` generates a plausible one."""

    def __init__(self, events: Sequence[ChaosEvent]) -> None:
        self.events: List[ChaosEvent] = sorted(events, key=lambda e: e.time)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChaosSchedule):
            return NotImplemented
        return self.events == other.events

    @property
    def amnesiac(self) -> bool:
        """True when the schedule restarts a primary without its state."""
        return any(e.kind is ChaosEventKind.RESTART_CLEAN for e in self.events)

    def to_json(self) -> List[Dict[str, Any]]:
        return [event.to_json() for event in self.events]

    @classmethod
    def from_json(cls, document: Any) -> "ChaosSchedule":
        if not isinstance(document, list):
            raise ValueError(f"chaos schedule must be a list, got {document!r}")
        if len(document) > 256:
            raise ValueError("chaos schedule too long (max 256 events)")
        return cls([ChaosEvent.from_json(entry) for entry in document])

    @classmethod
    def seeded(
        cls,
        seed: int,
        horizon: float = 100.0,
        with_state: bool = True,
        corrupt_wal: bool = True,
    ) -> "ChaosSchedule":
        """One crash/restart cycle, one partition window, optionally one
        torn WAL write -- placed deterministically inside ``horizon``.

        The crash lands in the first third (mid-convergence), the restart
        one breaker-cooldown later, and the partition in the middle third,
        so every event hits while transfers are still active.
        """
        rng = random.Random(seed)
        crash_at = rng.uniform(0.15, 0.30) * horizon
        restart_at = crash_at + rng.uniform(0.10, 0.15) * horizon
        part_start = rng.uniform(0.55, 0.65) * horizon
        part_end = part_start + rng.uniform(0.08, 0.15) * horizon
        events = [
            ChaosEvent(crash_at, ChaosEventKind.CRASH),
            ChaosEvent(
                restart_at,
                ChaosEventKind.RESTART if with_state else ChaosEventKind.RESTART_CLEAN,
            ),
            ChaosEvent(part_start, ChaosEventKind.PARTITION_START),
            ChaosEvent(part_end, ChaosEventKind.PARTITION_END),
        ]
        if corrupt_wal:
            # Tear the WAL shortly before the crash: recovery must truncate it.
            events.append(
                ChaosEvent(crash_at * rng.uniform(0.5, 0.9), ChaosEventKind.CORRUPT_WAL)
            )
        return cls(events)


@dataclass(frozen=True)
class InvariantViolation:
    time: float
    invariant: str
    detail: str


@dataclass(frozen=True)
class ChaosObservation:
    """One tracker-tick's view of the guidance plane, as the swarm saw it."""

    time: float
    status: str  # ok | stale | unavailable
    epoch: Optional[int]
    version: Optional[int]
    stale: bool
    stale_age: float
    origin_staleness: Optional[float]
    mlu: float
    active_endpoint: Optional[int]
    #: The primary's own identity (None while crashed) -- distinct from the
    #: served identity above: a standby's regression guard can keep readers
    #: monotone even when the primary itself restarted amnesiac.
    primary_epoch: Optional[int] = None
    primary_version: Optional[int] = None


@dataclass
class ChaosResult:
    baseline: SwarmResult
    chaotic: SwarmResult
    events: List[ChaosEvent]
    observations: List[ChaosObservation]
    baseline_mlu: List[Tuple[float, float]]
    violations: List[InvariantViolation] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    selector_exceptions: int = 0
    native_fallbacks: int = 0
    #: max |restored - pre-crash| over link prices at the last RESTART
    #: (None when the schedule has no restart-with-state).
    restored_price_gap: Optional[float] = None
    telemetry: Optional[Telemetry] = None
    #: Causal trace trees of the first invariant-violating ticks (at most
    #: three): the ``chaos.tick`` root with the failover/replica/portal
    #: spans underneath -- what fuzz fixtures attach as the failure's
    #: self-contained causal explanation.  Empty when no invariant tripped
    #: (head sampling is off in the chaos harness; only error traces
    #: survive export).
    violation_traces: List[Dict[str, Any]] = field(default_factory=list)

    def statuses(self) -> List[str]:
        """Distinct health states in observation order (dedup of repeats)."""
        seen: List[str] = []
        for obs in self.observations:
            if not seen or seen[-1] != obs.status:
                seen.append(obs.status)
        return seen

    @staticmethod
    def _mean_active(trace: Sequence[Tuple[float, float]]) -> float:
        active = [value for _, value in trace if value > 0]
        return sum(active) / len(active) if active else 0.0

    def mean_active_mlu(self, which: str = "chaotic") -> float:
        """Mean MLU over ticks with live P4P traffic (the convergence
        figure of merit; both swarms drain to MLU 0 eventually, so the
        all-time mean would compare mostly idle air)."""
        if which == "baseline":
            return self._mean_active(self.baseline_mlu)
        return self._mean_active([(obs.time, obs.mlu) for obs in self.observations])

    def reconverged(self, epsilon: float = 0.15) -> bool:
        """Did the faulted run's mean active MLU land within ``epsilon``
        (relative) of the fault-free twin, with everyone finishing?"""
        base = self.mean_active_mlu("baseline")
        chaotic = self.mean_active_mlu("chaotic")
        if len(self.chaotic.completion_times) < len(self.baseline.completion_times):
            return False
        if base <= 0:
            return chaotic <= epsilon
        return abs(chaotic - base) <= epsilon * base


class _Cluster:
    """The server side of the scenario: primary + store + proxy + standby."""

    def __init__(
        self,
        topology: Topology,
        itracker_config: ITrackerConfig,
        store: StateStore,
        telemetry: Telemetry,
        fault_schedule: Optional[FaultSchedule] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.topology = topology
        self.itracker_config = itracker_config
        self.store = store
        self.telemetry = telemetry
        self.fault_schedule = fault_schedule
        self.tracer = tracer
        self.tracker: Optional[ITracker] = None
        self.server: Optional[PortalServer] = None
        self.proxy: Optional[FaultyPortal] = None
        self.standby: Optional[StandbyReplica] = None
        self.standby_server: Optional[PortalServer] = None
        self.last_primary_prices: Optional[Dict[Tuple[str, str], float]] = None

    def start(self, clock) -> None:
        self.tracker = ITracker(
            topology=self.topology,
            config=self.itracker_config,
            state_store=self.store,
        )
        self.server = PortalServer(self.tracker, telemetry=self.telemetry)
        self.proxy = FaultyPortal(self.server.address, schedule=self.fault_schedule)
        follower = ITracker(topology=self.topology, config=self.itracker_config)
        self.standby = StandbyReplica(
            follower, self.server.address, clock=clock, telemetry=self.telemetry,
            tracer=self.tracer,
        )
        self.standby_server = self.standby.serve(telemetry=self.telemetry)

    @property
    def alive(self) -> bool:
        return self.tracker is not None

    def crash(self) -> None:
        if self.server is not None:
            self.server.close()
        self.tracker = None
        self.server = None
        assert self.proxy is not None
        self.proxy.down = True

    def restart(self, keep_state: bool) -> Optional[float]:
        """Bring the primary back; returns the restored-price gap (max
        abs difference vs the last pre-crash vector) for a stateful
        restart, None for a clean one."""
        if not keep_state:
            self.store.clear()
        tracker = ITracker(
            topology=self.topology,
            config=self.itracker_config,
            state_store=self.store,
        )
        gap: Optional[float] = None
        if keep_state and tracker.restore() and self.last_primary_prices is not None:
            restored = tracker.link_prices
            gap = max(
                abs(restored.get(key, 0.0) - value)
                for key, value in self.last_primary_prices.items()
            )
        self.tracker = tracker
        self.server = PortalServer(tracker, telemetry=self.telemetry)
        assert self.proxy is not None and self.standby is not None
        self.proxy.upstream = self.server.address
        self.proxy.down = False
        self.standby.primary = self.server.address
        self.standby.close()  # drop the dead connection; next sync redials
        return gap

    def corrupt_wal(self) -> None:
        with open(self.store.wal_path, "ab") as handle:
            handle.write(b'{"record": {"version": 10')  # torn mid-write

    def close(self) -> None:
        for closable in (
            self.standby,
            self.standby_server,
            self.server,
            self.proxy,
        ):
            if closable is not None:
                closable.close()


def run_chaos(
    topology: Optional[Topology] = None,
    n_peers: int = 12,
    schedule: Optional[ChaosSchedule] = None,
    seed: int = 11,
    with_state: bool = True,
    stale_ttl: float = 30.0,
    breaker_cooldown: float = 10.0,
    tracker_interval: float = 5.0,
    until: float = 5000.0,
    placement_seed: int = 3,
    state_dir: Optional[str] = None,
    fault_schedule_factory: Optional[Callable[[], FaultSchedule]] = None,
    **config_overrides: Any,
) -> ChaosResult:
    """Run the chaos scenario plus its fault-free twin and report.

    The twin (baseline) run uses identical seeds, the same dynamic
    iTracker feedback loop, and the same portal machinery -- just an
    empty schedule -- so the MLU comparison isolates the *faults*, not
    the plumbing.  ``state_dir`` defaults to a fresh temporary directory.

    ``fault_schedule_factory`` builds a per-request
    :class:`~repro.portal.faults.FaultSchedule` for the chaotic run's
    proxy (e.g. a byzantine default that mutates every served
    p-distance view); the baseline twin always runs fault-free.
    """
    topo = topology or abilene()
    routing = RoutingTable.build(topo)
    config = _default_config(
        tracker_update_interval=tracker_interval, **config_overrides
    )
    itracker_config = ITrackerConfig(
        mode=PriceMode.DYNAMIC, update_period=tracker_interval
    )
    plan = schedule if schedule is not None else ChaosSchedule.seeded(
        seed, with_state=with_state
    )
    as_number = topo.node(topo.aggregation_pids[0]).as_number
    capacities = {
        key: effective_capacity(link) for key, link in topo.links.items()
    }

    def mlu_of(rates: Dict[Tuple[str, str], float]) -> float:
        return max(
            (rates.get(key, 0.0) / cap for key, cap in capacities.items() if cap > 0),
            default=0.0,
        )

    def run_once(
        events: List[ChaosEvent],
        directory: str,
        fault_schedule: Optional[FaultSchedule] = None,
    ) -> Tuple[SwarmResult, List[ChaosObservation], List[InvariantViolation], Dict[str, Any]]:
        pending = sorted(events, key=lambda e: e.time)
        store = StateStore(directory)
        views: Dict[int, PDistanceMap] = {}
        health: Dict[int, str] = {}
        selector = P4PSelection(pdistances=views, portal_health=health)
        sim = _run_one(
            topo, routing, config, selector, n_peers, placement_seed, until
        )
        engine = sim.engine
        clock = lambda: engine.now
        # One big ring for the whole cluster (client + replicas + servers
        # share the bundle): a long chaotic run must not evict the early
        # ticks where the violations usually happen.
        telemetry = Telemetry(
            clock=clock, trace_capacity=16384, trace_namespace="chaos"
        )
        sim.telemetry = telemetry
        counters = RegistryResilienceCounters(telemetry.registry)
        # Head sampling off: only ticks that trip an invariant (tagged
        # ``error`` below) survive the export policy, so the attached
        # failure traces stay small no matter how long the run is.
        tracer = Tracer(telemetry.traces, sample_rate=0.0)
        cluster = _Cluster(
            topo, itracker_config, store, telemetry, fault_schedule=fault_schedule,
            tracer=tracer,
        )
        cluster.start(clock)
        observations: List[ChaosObservation] = []
        violations: List[InvariantViolation] = []
        extras: Dict[str, Any] = {
            "selector_exceptions": 0,
            "restored_price_gap": None,
            "telemetry": telemetry,
            "counters": counters,
            "selector": selector,
        }
        last_identity: Optional[Tuple[int, int]] = None
        last_primary_identity: Optional[Tuple[int, int]] = None
        checkpoint_every = 4
        ticks = 0

        assert cluster.proxy is not None and cluster.standby_server is not None
        client = FailoverPortalClient(
            [cluster.proxy.address, cluster.standby_server.address],
            telemetry=telemetry,
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.0, max_delay=0.0, attempt_timeout=2.0
            ),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=3, cooldown=breaker_cooldown, clock=clock
            ),
            stale_ttl=stale_ttl,
            clock=clock,
            sleep=lambda _delay: None,
            rng=random.Random(config.rng_seed),
            counters=counters,
            tracer=tracer,
        )
        integrator = Integrator(telemetry=telemetry)
        integrator.add(as_number, client)

        # The integrator keeps only view + status; the invariants also need
        # the served snapshot's (epoch, version, staleness) provenance, so
        # record what get_view actually returned each tick.
        served: List[Optional[Any]] = [None]
        inner_get_view = client.get_view

        def recording_get_view(pids=None):
            snapshot = inner_get_view(pids=pids)
            served[0] = snapshot
            return snapshot

        client.get_view = recording_get_view  # type: ignore[method-assign]

        def apply_events(now: float) -> None:
            while pending and pending[0].time <= now:
                event = pending.pop(0)
                if event.kind is ChaosEventKind.CRASH:
                    cluster.crash()
                elif event.kind is ChaosEventKind.RESTART:
                    gap = cluster.restart(keep_state=True)
                    extras["restored_price_gap"] = gap
                    if gap is not None and gap > 1e-9:
                        violations.append(
                            InvariantViolation(
                                now, "price-reset",
                                f"restored prices deviate by {gap:.3g} from the "
                                "last persisted iterate",
                            )
                        )
                elif event.kind is ChaosEventKind.RESTART_CLEAN:
                    cluster.restart(keep_state=False)
                elif event.kind is ChaosEventKind.PARTITION_START:
                    assert cluster.proxy is not None
                    cluster.proxy.down = True
                elif event.kind is ChaosEventKind.PARTITION_END:
                    assert cluster.proxy is not None
                    if cluster.alive:
                        cluster.proxy.down = False
                elif event.kind is ChaosEventKind.CORRUPT_WAL:
                    cluster.corrupt_wal()

        def refresh(now: float, rates: Dict[Tuple[str, str], float]) -> None:
            # Each tick roots one distributed trace: every replica sync,
            # failover fetch, retry, and portal dispatch underneath ends up
            # in the same causal tree.  A tick that trips an invariant is
            # error-tagged so the export policy keeps (only) those trees.
            before = len(violations)
            with tracer.trace("chaos.tick", tick_time=now) as span:
                _refresh_inner(now, rates)
            if len(violations) > before:
                kinds = sorted({v.invariant for v in violations[before:]})
                span.set(error="invariant-violation", invariants=",".join(kinds))

        def _refresh_inner(now: float, rates: Dict[Tuple[str, str], float]) -> None:
            nonlocal last_identity, last_primary_identity, ticks
            apply_events(now)
            primary_identity: Optional[Tuple[int, int]] = None
            if cluster.alive:
                assert cluster.tracker is not None
                cluster.tracker.observe_loads(rates, now=now)
                cluster.last_primary_prices = dict(cluster.tracker.link_prices)
                primary_identity = (cluster.tracker.epoch, cluster.tracker.version)
                ticks += 1
                if ticks % checkpoint_every == 0:
                    cluster.tracker.checkpoint()
            assert cluster.standby is not None
            cluster.standby.sync()
            served[0] = None
            try:
                fetched = integrator.views()
            except Exception as exc:  # the selection plane must never see this
                extras["selector_exceptions"] += 1
                violations.append(
                    InvariantViolation(now, "selector-exception", repr(exc))
                )
                fetched = {}
            views.clear()
            views.update(fetched)
            health.clear()
            health.update(integrator.status_map())
            status = health.get(as_number, "unavailable")
            snapshot = served[0]
            stale = bool(snapshot.stale) if snapshot is not None else False
            stale_age = snapshot.age if snapshot is not None and snapshot.stale else 0.0
            epoch = version = None
            origin_staleness = None
            if snapshot is not None:
                epoch, version = snapshot.epoch, snapshot.version
                origin_staleness = snapshot.origin_staleness
            observations.append(
                ChaosObservation(
                    time=now,
                    status=status,
                    epoch=epoch,
                    version=version,
                    stale=stale,
                    stale_age=stale_age,
                    origin_staleness=origin_staleness,
                    mlu=mlu_of(rates),
                    active_endpoint=(
                        None if status == "unavailable"
                        else list(client.endpoints).index(client.active_endpoint)
                    ),
                    primary_epoch=(
                        primary_identity[0] if primary_identity is not None else None
                    ),
                    primary_version=(
                        primary_identity[1] if primary_identity is not None else None
                    ),
                )
            )
            # Invariant: the primary's own (epoch, version) never regresses
            # across restarts.  A store-backed restart bumps both; a clean
            # one resets to (0, ...) -- the amnesia the state store exists
            # to prevent, recorded here even when the standby's regression
            # guard keeps *readers* monotone.
            if primary_identity is not None:
                if (
                    last_primary_identity is not None
                    and primary_identity < last_primary_identity
                ):
                    violations.append(
                        InvariantViolation(
                            now, "primary-version-regression",
                            f"primary restarted at {primary_identity} after "
                            f"{last_primary_identity} (amnesiac restart)",
                        )
                    )
                last_primary_identity = primary_identity
            # Invariant: stale views stay within the TTL.
            if stale and stale_age > stale_ttl + 1e-9:
                violations.append(
                    InvariantViolation(
                        now, "stale-age",
                        f"served a view {stale_age:.1f}s old (ttl {stale_ttl:g}s)",
                    )
                )
            # Invariant: (epoch, version) never regresses for fresh serves.
            if status == "ok" and epoch is not None and version is not None:
                identity = (epoch, version)
                if last_identity is not None and identity < last_identity:
                    violations.append(
                        InvariantViolation(
                            now, "version-regression",
                            f"observed {identity} after {last_identity} "
                            "(amnesiac restart)",
                        )
                    )
                last_identity = identity

        try:
            refresh(0.0, {})
            sim.tracker_hook = lambda now, traffic, rates: refresh(now, rates)
            result = sim.run(until=until)
        finally:
            integrator.close()
            client.close()
            cluster.close()
        extras["native_fallbacks"] = selector.native_fallbacks
        return result, observations, violations, extras

    baseline_dir = state_dir or tempfile.mkdtemp(prefix="p4p-chaos-")
    base_result, base_obs, base_violations, _base_extras = run_once(
        [], baseline_dir + "/baseline"
    )
    chaos_result, chaos_obs, chaos_violations, extras = run_once(
        list(plan),
        baseline_dir + "/chaotic",
        fault_schedule=(
            fault_schedule_factory() if fault_schedule_factory is not None else None
        ),
    )
    counters: RegistryResilienceCounters = extras["counters"]
    counters.native_fallbacks = extras["native_fallbacks"]
    chaos_telemetry: Telemetry = extras["telemetry"]
    # Transport errors during crash/partition windows are *expected* and
    # also survive the always-sample-on-error export; a violation trace is
    # specifically a tick whose root was tagged by the invariant checks.
    violation_traces = [
        tree
        for tree in export_traces(
            assemble_traces({"chaos": chaos_telemetry.traces.snapshot()})
        )
        if tree["attributes"].get("error") == "invariant-violation"
    ][:3]
    return ChaosResult(
        baseline=base_result,
        chaotic=chaos_result,
        events=list(plan),
        observations=chaos_obs,
        baseline_mlu=[(obs.time, obs.mlu) for obs in base_obs],
        violations=chaos_violations,
        counters=counters.snapshot(),
        selector_exceptions=extras["selector_exceptions"],
        native_fallbacks=extras["native_fallbacks"],
        restored_price_gap=extras["restored_price_gap"],
        telemetry=extras["telemetry"],
        violation_traces=violation_traces,
    )


def format_chaos(result: ChaosResult, epsilon: float = 0.15) -> str:
    """Human-readable scenario report for the ``p4p-repro chaos`` CLI."""
    lines: List[str] = []
    lines.append("chaos schedule:")
    for event in result.events:
        lines.append(f"  t={event.time:8.1f}s  {event.kind.value}")
    lines.append(
        f"completions: baseline {len(result.baseline.completion_times)}, "
        f"chaotic {len(result.chaotic.completion_times)}"
    )
    lines.append(
        f"mean active MLU: baseline {result.mean_active_mlu('baseline'):.4f}, "
        f"chaotic {result.mean_active_mlu('chaotic'):.4f} "
        f"(reconverged within eps={epsilon:g}: {result.reconverged(epsilon)})"
    )
    if result.restored_price_gap is not None:
        lines.append(
            f"restored price gap vs pre-crash iterate: {result.restored_price_gap:.3g}"
        )
    lines.append(f"health ladder: {' -> '.join(result.statuses())}")
    lines.append(
        "counters: "
        + ", ".join(f"{key}={value}" for key, value in sorted(result.counters.items()))
    )
    if result.violations:
        lines.append(f"INVARIANT VIOLATIONS ({len(result.violations)}):")
        for violation in result.violations:
            lines.append(
                f"  t={violation.time:8.1f}s  {violation.invariant}: {violation.detail}"
            )
    else:
        lines.append("invariants: all held (version monotone, staleness bounded, "
                     "no price reset)")
    return "\n".join(lines)
