"""Pando field-test simulation (Sec. 7.4: Fig. 11/12, Tables 2/3).

The paper's field test ran two parallel swarms sharing a popular ~20 MB
video clip from Feb 21 to Mar 2, 2008: clients were randomly assigned to
either the native Pando swarm or the P4P-integrated swarm.  We reproduce
that design at laptop scale:

* **Population**: a mix of ISP-B clients (placed on the 52-PoP synthetic
  ISP-B topology, split into FTTP and DSL access classes per PoP) and
  external-Internet clients attached to an ``EXTERNAL`` aggregation node
  reachable over interdomain links.
* **Churn**: arrivals follow a flash-crowd profile (high rate the first
  days, lower afterwards, as in Fig. 11); a client downloads the clip,
  seeds briefly, then departs.
* **Comparison**: the arrival trace is split randomly into two halves; one
  drives a native-Pando swarm (random selection), the other a P4P swarm
  whose weights come from the appTracker Optimization Service
  (bandwidth-matching LP over the ISP-B iTracker's p-distances).

A compressed timeline (one "day" is ``day_seconds`` of simulated time) and
a few hundred clients stand in for 10 real days and ~30k clients; the
statistics of Tables 2/3 and Fig. 12 are ratios and shapes, which survive
the scaling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.apptracker.selection import (
    PeerInfo,
    PeerSelector,
    PerAsSelector,
    RandomSelection,
)
from repro.apptracker.pando import (
    ClientBandwidth,
    OptimizationService,
    PandoTracker,
)
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.objectives import BandwidthDistanceProduct
from repro.metrics.localization import TrafficLedger
from repro.network.generators import access_classes, isp_b, isp_c
from repro.network.routing import RoutingTable
from repro.network.topology import Link, Node, NodeKind, Topology
from repro.simulator.multiswarm import MultiSwarmSimulation, shared_substrate
from repro.simulator.swarm import SwarmConfig, SwarmResult, SwarmSimulation
from repro.workloads.placement import place_peers


@dataclass
class _LedgerState:
    """Per-swarm accounting handles captured by the transfer listener."""

    ledger: TrafficLedger
    bdp: Dict[str, float]
    peers: List[PeerInfo]

LinkKey = Tuple[str, str]

#: AS number of the aggregate external Internet.
EXTERNAL_AS = 65000
EXTERNAL_PID = "EXTERNAL"


@dataclass
class FieldTestConfig:
    """Scaled-down field-test parameters."""

    n_clients: int = 1000
    isp_fraction: float = 0.5
    fttp_fraction: float = 0.3
    days: int = 10
    day_seconds: float = 400.0
    flash_days: int = 3
    flash_multiplier: float = 4.0
    file_mbit: float = 160.0
    block_mbit: float = 4.0
    neighbors: int = 8
    linger_seconds: float = 120.0
    fttp_mbps: Tuple[float, float] = (25.0, 25.0)
    dsl_mbps: Tuple[float, float] = (1.0, 8.0)
    external_mbps: Tuple[float, float] = (3.0, 10.0)
    isp_c_mbps: Tuple[float, float] = (2.0, 8.0)
    interdomain_capacity_mbps: float = 12.0
    completion_quantum: float = 0.25
    beta: float = 0.9
    include_isp_c: bool = False
    isp_c_fraction: float = 0.15
    shared_network: bool = True
    rng_seed: int = 11

    def __post_init__(self) -> None:
        if not 0 <= self.isp_fraction <= 1:
            raise ValueError("isp_fraction must be in [0, 1]")
        if not 0 <= self.isp_c_fraction <= 1 - self.isp_fraction:
            raise ValueError(
                "isp_c_fraction must fit beside isp_fraction within [0, 1]"
            )
        if self.n_clients < 2:
            raise ValueError("need at least two clients")
        if self.days < 1 or self.day_seconds <= 0:
            raise ValueError("invalid timeline")

    @property
    def horizon(self) -> float:
        return self.days * self.day_seconds


def build_field_topology(
    config: FieldTestConfig, seed: int = 2
) -> Tuple[Topology, Dict[str, str]]:
    """ISP-B (optionally plus ISP-C) plus an aggregate external-Internet PID.

    Returns the combined topology and the PID -> access-class map for
    ISP-B's PoPs.  The EXTERNAL node attaches to three ISP-B hub PoPs over
    interdomain links (multihoming), so external peering traffic crosses
    charged links.  With ``include_isp_c`` the international ISP-C topology
    is merged in (PIDs prefixed ``C:``), peered with both ISP-B and the
    external cloud -- the paper ran iTrackers for both providers, though it
    reports ISP-B numbers only.
    """
    topo = isp_b(seed=seed)
    classes = access_classes(topo, fttp_fraction=config.fttp_fraction, seed=seed)
    topo.add_node(
        Node(
            pid=EXTERNAL_PID,
            kind=NodeKind.AGGREGATION,
            as_number=EXTERNAL_AS,
            metro="external",
        )
    )
    hubs = topo.aggregation_pids[:3]
    # The charged links' headroom is what a provider provisions for its
    # population; scale it with the simulated client count so full-scale
    # runs see the same per-client contention as the default scale.
    capacity = config.interdomain_capacity_mbps * max(1.0, config.n_clients / 1000.0)
    for hub in hubs:
        forward, reverse = topo.add_edge(
            hub, EXTERNAL_PID, capacity=capacity
        )
        forward.interdomain = True
        reverse.interdomain = True
        forward.distance = 500.0
        reverse.distance = 500.0
    if config.include_isp_c:
        _merge_isp_c(topo, config, seed)
    topo.validate()
    return topo, classes


def _merge_isp_c(topo: Topology, config: FieldTestConfig, seed: int) -> None:
    """Graft a prefixed copy of ISP-C onto the field topology."""
    isp_c_topo = isp_c(seed=seed + 1)

    def prefixed(pid: str) -> str:
        return f"C:{pid}"

    for node in isp_c_topo.nodes.values():
        topo.add_node(
            Node(
                pid=prefixed(node.pid),
                kind=node.kind,
                as_number=node.as_number,
                metro=f"C:{node.metro}",
                location=node.location,
            )
        )
    for link in isp_c_topo.links.values():
        topo.add_link(
            Link(
                src=prefixed(link.src),
                dst=prefixed(link.dst),
                capacity=link.capacity,
                background=link.background,
                distance=link.distance,
                ospf_weight=link.ospf_weight,
            )
        )
    # Peer ISP-C with ISP-B (two trunks) and with the external cloud (one).
    isp_b_hubs = [pid for pid in topo.aggregation_pids if not pid.startswith("C:")][:2]
    isp_c_hubs = [prefixed(pid) for pid in isp_c_topo.aggregation_pids[:2]]
    capacity = config.interdomain_capacity_mbps * max(1.0, config.n_clients / 1000.0)
    for b_hub, c_hub in zip(isp_b_hubs, isp_c_hubs):
        forward, reverse = topo.add_edge(
            b_hub, c_hub, capacity=capacity
        )
        forward.interdomain = True
        reverse.interdomain = True
        forward.distance = 2000.0
        reverse.distance = 2000.0
    forward, reverse = topo.add_edge(
        isp_c_hubs[0], EXTERNAL_PID, capacity=capacity
    )
    forward.interdomain = True
    reverse.interdomain = True
    forward.distance = 1000.0
    reverse.distance = 1000.0


def flash_crowd_arrivals(
    config: FieldTestConfig, count: int, rng: random.Random
) -> List[float]:
    """Arrival times over the test: flash-crowd first days, then a tail."""
    day_weights = [
        config.flash_multiplier if day < config.flash_days else 1.0
        for day in range(config.days)
    ]
    total_weight = sum(day_weights)
    times: List[float] = []
    for _ in range(count):
        pick = rng.random() * total_weight
        acc = 0.0
        day = config.days - 1
        for index, weight in enumerate(day_weights):
            acc += weight
            if pick <= acc:
                day = index
                break
        times.append((day + rng.random()) * config.day_seconds)
    times.sort()
    return times


@dataclass
class SwarmOutcome:
    """Per-swarm field-test results."""

    result: SwarmResult
    ledger: TrafficLedger
    intra_isp_backbone_mbit: float
    intra_isp_payload_mbit: float
    completion_by_class: Dict[str, Dict[int, float]]
    swarm_size_timeline: List[Tuple[float, int]]

    @property
    def unit_bdp(self) -> float:
        """Backbone hops per Mbit delivered between ISP-B clients."""
        if self.intra_isp_payload_mbit <= 0:
            return 0.0
        return self.intra_isp_backbone_mbit / self.intra_isp_payload_mbit


@dataclass
class FieldTestReport:
    """The two parallel swarms, ready for Tables 2/3 and Fig. 11/12."""

    native: SwarmOutcome
    p4p: SwarmOutcome
    topology: Topology
    classes: Dict[str, str]


class FieldTest:
    """Build population, split into two swarms, run both, compare."""

    def __init__(self, config: Optional[FieldTestConfig] = None) -> None:
        self.config = config or FieldTestConfig()
        self.rng = random.Random(self.config.rng_seed)
        self.topology, self.classes = build_field_topology(self.config)
        self.routing = RoutingTable.build(self.topology)

    # -- population -----------------------------------------------------------

    def _make_population(self) -> Tuple[List[PeerInfo], Dict[int, Tuple[float, float]]]:
        config = self.config
        n_isp = round(config.n_clients * config.isp_fraction)
        n_isp_c = (
            round(config.n_clients * config.isp_c_fraction)
            if config.include_isp_c
            else 0
        )
        n_ext = config.n_clients - n_isp - n_isp_c
        isp_pids = [
            pid
            for pid in self.topology.aggregation_pids
            if pid != EXTERNAL_PID and not pid.startswith("C:")
        ]
        # Metro populations are heavily skewed (a few metros hold most
        # clients); a Zipf-like weight per metro keeps intra-metro peering
        # statistically possible at laptop-scale populations.
        metro_rank: Dict[str, int] = {}
        for pid in isp_pids:
            metro = self.topology.metro_of(pid)
            if metro not in metro_rank:
                metro_rank[metro] = len(metro_rank) + 1
        weights = {
            pid: 1.0 / metro_rank[self.topology.metro_of(pid)] for pid in isp_pids
        }
        peers = place_peers(
            self.topology, n_isp, self.rng, pids=isp_pids, weights=weights, first_id=1
        )
        next_id = 1 + n_isp
        if n_isp_c:
            isp_c_pids = [
                pid for pid in self.topology.aggregation_pids if pid.startswith("C:")
            ]
            peers += place_peers(
                self.topology, n_isp_c, self.rng, pids=isp_c_pids, first_id=next_id
            )
            next_id += n_isp_c
        peers += [
            PeerInfo(peer_id=next_id + k, pid=EXTERNAL_PID, as_number=EXTERNAL_AS)
            for k in range(n_ext)
        ]
        access: Dict[int, Tuple[float, float]] = {}
        for peer in peers:
            if peer.pid == EXTERNAL_PID:
                up, down = config.external_mbps
            elif peer.pid.startswith("C:"):
                up, down = config.isp_c_mbps
            elif self.classes.get(peer.pid) == "fttp":
                up, down = config.fttp_mbps
            else:
                up, down = config.dsl_mbps
            access[peer.peer_id] = (up, down)
        return peers, access

    def class_of(self, peer: PeerInfo) -> str:
        if peer.pid == EXTERNAL_PID:
            return "external"
        if peer.pid.startswith("C:"):
            return "isp-c"
        return self.classes.get(peer.pid, "dsl")

    # -- P4P weights -----------------------------------------------------------

    def _p4p_selector(
        self, peers: Sequence[PeerInfo], access: Mapping[int, Tuple[float, float]]
    ) -> PeerSelector:
        by_as: Dict[int, PeerSelector] = {}
        groups: List[Tuple[int, Callable[[PeerInfo], bool]]] = [
            (
                self._isp_as(),
                lambda peer: peer.pid != EXTERNAL_PID
                and not peer.pid.startswith("C:"),
            )
        ]
        if self.config.include_isp_c:
            groups.append(
                (self._isp_c_as(), lambda peer: peer.pid.startswith("C:"))
            )
        for as_number, member in groups:
            itracker = ITracker(
                topology=self.topology,
                config=ITrackerConfig(mode=PriceMode.HOP_COUNT),
                objective=BandwidthDistanceProduct(),
            )
            service = OptimizationService(itracker=itracker, beta=self.config.beta)
            tracker = PandoTracker(service=service)
            estimates = [
                ClientBandwidth(
                    peer_id=peer.peer_id,
                    pid=peer.pid,
                    upload_mbps=access[peer.peer_id][0],
                    download_mbps=access[peer.peer_id][1],
                )
                for peer in peers
                if member(peer)
            ]
            if estimates:
                tracker.refresh(estimates)
            by_as[as_number] = tracker.selector
        return PerAsSelector(by_as=by_as, default=RandomSelection())

    def _isp_as(self) -> int:
        return next(
            node.as_number
            for node in self.topology.nodes.values()
            if node.pid != EXTERNAL_PID and not node.pid.startswith("C:")
        )

    def _isp_c_as(self) -> int:
        return next(
            node.as_number
            for node in self.topology.nodes.values()
            if node.pid.startswith("C:")
        )

    # -- running -----------------------------------------------------------------

    def _build_swarm(
        self,
        peers: List[PeerInfo],
        access: Mapping[int, Tuple[float, float]],
        arrivals: Mapping[int, float],
        selector: PeerSelector,
        seed_pid: str,
        rng_seed: int,
        swarm_id: str,
        shared=None,
    ) -> Tuple[SwarmSimulation, "_LedgerState"]:
        config = self.config
        ledger = TrafficLedger(
            isp_as=self._isp_as(),
            metro_of={
                pid: self.topology.metro_of(pid)
                for pid in self.topology.aggregation_pids
            },
        )
        bdp_state = {"mbit": 0.0, "payload": 0.0}
        isp_as = self._isp_as()

        def listener(uploader: PeerInfo, downloader: PeerInfo, mbit: float) -> None:
            ledger.record(
                uploader.pid, uploader.as_number, downloader.pid, downloader.as_number, mbit
            )
            if uploader.as_number == isp_as and downloader.as_number == isp_as:
                bdp_state["payload"] += mbit
                bdp_state["mbit"] += mbit * self.routing.hop_count(
                    uploader.pid, downloader.pid
                )

        swarm_config = SwarmConfig(
            file_mbit=config.file_mbit,
            block_mbit=config.block_mbit,
            neighbors=config.neighbors,
            seed_up_mbps=50.0,
            access_up_mbps=config.dsl_mbps[0],
            access_down_mbps=config.dsl_mbps[1],
            join_window=config.horizon,
            sample_interval=config.day_seconds / 8.0,
            completion_quantum=config.completion_quantum,
            reannounce_interval=config.day_seconds / 8.0,
            rng_seed=rng_seed,
        )
        # The two parallel swarms seed from distinct nodes (the paper's
        # seed servers were co-located in one PoP but on different hosts).
        seed_peer = PeerInfo(
            peer_id=-1 if swarm_id == "native" else -2,
            pid=seed_pid,
            as_number=self.topology.node(seed_pid).as_number,
        )
        extra = {}
        if shared is not None:
            extra = dict(
                shared_net=shared[0], shared_engine=shared[1], swarm_id=swarm_id
            )
        sim = SwarmSimulation(
            self.topology,
            self.routing,
            swarm_config,
            selector,
            peers,
            [seed_peer],
            join_times=dict(arrivals),
            linger_time=config.linger_seconds,
            access_overrides=dict(access),
            transfer_listener=listener,
            **extra,
        )
        return sim, _LedgerState(ledger=ledger, bdp=bdp_state, peers=list(peers))

    def _outcome(self, result, state: "_LedgerState") -> SwarmOutcome:
        completion_by_class: Dict[str, Dict[int, float]] = {}
        by_id = {peer.peer_id: peer for peer in state.peers}
        for peer_id, duration in result.completion_times.items():
            label = self.class_of(by_id[peer_id])
            completion_by_class.setdefault(label, {})[peer_id] = duration
        timeline = [(sample.time, sample.swarm_size) for sample in result.samples]
        return SwarmOutcome(
            result=result,
            ledger=state.ledger,
            intra_isp_backbone_mbit=state.bdp["mbit"],
            intra_isp_payload_mbit=state.bdp["payload"],
            completion_by_class=completion_by_class,
            swarm_size_timeline=timeline,
        )

    def run(self) -> FieldTestReport:
        """Run the two parallel swarms and assemble the report."""
        config = self.config
        peers, access = self._make_population()
        times = flash_crowd_arrivals(config, len(peers), self.rng)
        # The trace is sorted; pair times with peers randomly so arrival
        # order is independent of the ISP/external population layout.
        self.rng.shuffle(times)
        arrival_of = {
            peer.peer_id: time for peer, time in zip(peers, times)
        }
        # Random 50/50 assignment to the two parallel swarms (Fig. 11 shows
        # the two populations tracking each other).
        shuffled = list(peers)
        self.rng.shuffle(shuffled)
        half = len(shuffled) // 2
        native_peers = shuffled[:half]
        p4p_peers = shuffled[half:]

        seed_pid = self.topology.aggregation_pids[0]
        shared = shared_substrate() if config.shared_network else None
        native_sim, native_state = self._build_swarm(
            native_peers,
            access,
            {p.peer_id: arrival_of[p.peer_id] for p in native_peers},
            RandomSelection(),
            seed_pid,
            rng_seed=config.rng_seed + 1,
            swarm_id="native",
            shared=shared,
        )
        p4p_sim, p4p_state = self._build_swarm(
            p4p_peers,
            access,
            {p.peer_id: arrival_of[p.peer_id] for p in p4p_peers},
            self._p4p_selector(p4p_peers, access),
            seed_pid,
            rng_seed=config.rng_seed + 2,
            swarm_id="p4p",
            shared=shared,
        )
        horizon = config.horizon * 2.0
        if shared is not None:
            results = MultiSwarmSimulation([native_sim, p4p_sim]).run(until=horizon)
            native_result = results["native"]
            p4p_result = results["p4p"]
        else:
            native_result = native_sim.run(until=horizon)
            p4p_result = p4p_sim.run(until=horizon)
        return FieldTestReport(
            native=self._outcome(native_result, native_state),
            p4p=self._outcome(p4p_result, p4p_state),
            topology=self.topology,
            classes=self.classes,
        )
