"""Lockstep differential oracle: scalar vs vectorized flow engines.

The reference :class:`~repro.simulator.tcp.FlowNetwork` and the
incremental :class:`~repro.simulator.tcp.VectorizedFlowNetwork` must be
observably indistinguishable -- same rates, same completion order, same
utilization -- or every figure derived from a vectorized run is suspect.
This module is the single implementation of that oracle, shared by the
unit tests (``tests/test_engine_differential.py``) and the scenario
fuzzer (:mod:`repro.fuzz`).

A differential workload is an **explicit event schedule**: a list of link
capacities plus a list of plain-dict ops --

* ``{"op": "arrive", "links": [...], "size": s, "cap": c | None}`` --
  start a flow over a link subset (possibly empty: a linkless flow),
  optionally rate-capped;
* ``{"op": "abort", "flow": id}`` -- abort a flow mid-flight (a missing
  id must be a no-op in *both* engines);
* ``{"op": "advance", "idle": d | None}`` -- advance to the next
  completion (``idle`` ``None``) or by an idle step of ``d`` seconds,
  then pop finished flows and compare the pop order.

Explicit schedules (rather than "replay this RNG seed") are what make
delta-debugging possible: the fuzzer's minimizer can drop single ops
while the remainder still means the same thing.  :func:`random_schedule`
generates the schedules the tests sweep; both engines execute every op
and the full observable state is compared after each one, raising
:class:`DivergenceError` at the first mismatch.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.simulator.tcp import FlowNetwork, VectorizedFlowNetwork

#: Constructor kwargs forcing each vectorized solve regime: the default
#: adaptive policy, every solve through the full vector path, and every
#: solve through the incremental component path.
ENGINE_REGIMES: Dict[str, Dict[str, Any]] = {
    "adaptive": {},
    "full-only": {"dirty_flow_floor": 1, "dirty_flow_fraction": 0.0},
    "incremental-only": {"dirty_flow_floor": 10**9},
}

_REL_TOL = 1e-9
_ABS_TOL = 1e-12

#: Factory for the vectorized side; the fuzzer's planted-regression hooks
#: substitute a wrapped network here to prove the oracle still catches
#: known-bad behaviour.
VectorFactory = Callable[..., VectorizedFlowNetwork]


class DivergenceError(AssertionError):
    """The two engines disagreed on observable state."""

    def __init__(self, context: str, detail: str) -> None:
        super().__init__(f"{context}: {detail}")
        self.context = context
        self.detail = detail


@dataclass
class LockstepReport:
    """What a completed lockstep run observed (coverage inputs)."""

    steps: int = 0
    arrivals: int = 0
    aborts: int = 0
    advances: int = 0
    pops: int = 0
    capped_flows: int = 0
    linkless_flows: int = 0
    vector: Optional[VectorizedFlowNetwork] = None
    op_kinds: List[str] = field(default_factory=list)

    @property
    def stats(self):
        assert self.vector is not None
        return self.vector.stats


def _close(a: float, b: float, rel: float = _REL_TOL, abs_tol: float = _ABS_TOL) -> bool:
    if math.isinf(a) or math.isinf(b):
        return math.isinf(a) and math.isinf(b) and (a > 0) == (b > 0)
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


def _compare(scalar: FlowNetwork, vector: VectorizedFlowNetwork, context: str) -> None:
    """Full observable-state comparison after one op (forces a solve)."""
    s_next = scalar.next_completion()
    v_next = vector.next_completion()
    scalar._flush()
    vector._flush()
    if (s_next is None) != (v_next is None):
        raise DivergenceError(context, f"next_completion {s_next!r} vs {v_next!r}")
    if s_next is not None and not _close(s_next, v_next, abs_tol=1e-9):
        raise DivergenceError(context, f"next_completion {s_next!r} vs {v_next!r}")
    if scalar.n_flows != vector.n_flows:
        raise DivergenceError(
            context, f"n_flows {scalar.n_flows} vs {vector.n_flows}"
        )
    s_flows = {flow.flow_id: flow for flow in scalar.flows()}
    v_flows = {flow.flow_id: flow for flow in vector.flows()}
    if s_flows.keys() != v_flows.keys():
        raise DivergenceError(
            context,
            f"flow ids {sorted(s_flows)} vs {sorted(v_flows)}",
        )
    s_order = [flow.flow_id for flow in scalar.flows()]
    v_order = [flow.flow_id for flow in vector.flows()]
    if s_order != v_order:
        raise DivergenceError(context, f"iteration order {s_order} vs {v_order}")
    for flow_id, s_flow in s_flows.items():
        v_flow = v_flows[flow_id]
        if not _close(s_flow.rate_cap, v_flow.rate_cap):
            raise DivergenceError(
                context,
                f"flow {flow_id} rate_cap {s_flow.rate_cap!r} vs {v_flow.rate_cap!r}",
            )
        if not _close(s_flow.rate, v_flow.rate, abs_tol=1e-12):
            raise DivergenceError(
                context,
                f"flow {flow_id} rate {s_flow.rate!r} vs {v_flow.rate!r}",
            )
    for index in range(scalar.n_links):
        s_util = scalar.utilization(index)
        v_util = vector.utilization(index)
        if not _close(s_util, v_util, abs_tol=1e-12):
            raise DivergenceError(
                context, f"link {index} utilization {s_util!r} vs {v_util!r}"
            )


def validate_schedule(capacities: Sequence[float], ops: Sequence[Dict[str, Any]]) -> None:
    """Raise ``ValueError`` unless the schedule is well-formed."""
    if not capacities:
        raise ValueError("differential schedule needs at least one link")
    if len(capacities) > 64:
        raise ValueError("too many links (max 64)")
    for capacity in capacities:
        if not isinstance(capacity, (int, float)) or not math.isfinite(capacity):
            raise ValueError(f"non-finite link capacity {capacity!r}")
        if capacity <= 0:
            raise ValueError(f"non-positive link capacity {capacity!r}")
    if len(ops) > 2048:
        raise ValueError("too many ops (max 2048)")
    for index, op in enumerate(ops):
        if not isinstance(op, dict) or "op" not in op:
            raise ValueError(f"op {index}: not a dict with an 'op' key")
        kind = op["op"]
        if kind == "arrive":
            links = op.get("links")
            if not isinstance(links, (list, tuple)):
                raise ValueError(f"op {index}: arrive needs a links list")
            for link in links:
                if not isinstance(link, int) or not 0 <= link < len(capacities):
                    raise ValueError(f"op {index}: bad link index {link!r}")
            size = op.get("size")
            if not isinstance(size, (int, float)) or not size > 0:
                raise ValueError(f"op {index}: bad flow size {size!r}")
            cap = op.get("cap")
            if cap is not None and (not isinstance(cap, (int, float)) or not cap > 0):
                raise ValueError(f"op {index}: bad rate cap {cap!r}")
        elif kind == "abort":
            flow = op.get("flow")
            if not isinstance(flow, int) or flow < 0:
                raise ValueError(f"op {index}: bad abort target {flow!r}")
        elif kind == "advance":
            idle = op.get("idle")
            if idle is not None and (
                not isinstance(idle, (int, float)) or idle < 0 or not math.isfinite(idle)
            ):
                raise ValueError(f"op {index}: bad idle step {idle!r}")
        else:
            raise ValueError(f"op {index}: unknown op kind {kind!r}")


def run_schedule(
    capacities: Sequence[float],
    ops: Sequence[Dict[str, Any]],
    regime: str = "adaptive",
    vector_factory: Optional[VectorFactory] = None,
    label: str = "",
) -> LockstepReport:
    """Execute the schedule on both engines in lockstep.

    Raises :class:`DivergenceError` at the first observable mismatch and
    ``ValueError`` for a malformed schedule; returns a
    :class:`LockstepReport` otherwise.
    """
    validate_schedule(capacities, ops)
    if regime not in ENGINE_REGIMES:
        raise ValueError(
            f"unknown regime {regime!r}; choices: {', '.join(sorted(ENGINE_REGIMES))}"
        )
    factory = vector_factory or VectorizedFlowNetwork
    scalar = FlowNetwork()
    vector = factory(**ENGINE_REGIMES[regime])
    for index, capacity in enumerate(capacities):
        s_index = scalar.add_link(("l", index), float(capacity))
        v_index = vector.add_link(("l", index), float(capacity))
        if s_index != index or v_index != index:
            raise DivergenceError(
                f"{label} link={index}", f"link ids {s_index} vs {v_index}"
            )
    report = LockstepReport(vector=vector)
    now = 0.0
    for step, op in enumerate(ops):
        context = f"{label} step={step} op={op['op']} t={now:.6f}"
        kind = op["op"]
        if kind == "arrive":
            links = list(op["links"])
            cap = op.get("cap")
            s_flow = scalar.start_flow(
                links, op["size"], meta=("m", step), rate_cap=cap
            )
            v_flow = vector.start_flow(
                links, op["size"], meta=("m", step), rate_cap=cap
            )
            if s_flow.flow_id != v_flow.flow_id:
                raise DivergenceError(
                    context, f"flow ids {s_flow.flow_id} vs {v_flow.flow_id}"
                )
            report.arrivals += 1
            if cap is not None:
                report.capped_flows += 1
            if not links:
                report.linkless_flows += 1
        elif kind == "abort":
            victim = op["flow"]
            s_gone = scalar.abort_flow(victim)
            v_gone = vector.abort_flow(victim)
            if (s_gone is None) != (v_gone is None):
                raise DivergenceError(
                    context, f"abort returned {s_gone!r} vs {v_gone!r}"
                )
            if s_gone is not None:
                if s_gone.flow_id != v_gone.flow_id:
                    raise DivergenceError(
                        context,
                        f"aborted ids {s_gone.flow_id} vs {v_gone.flow_id}",
                    )
                if not _close(s_gone.remaining_mbit, v_gone.remaining_mbit, abs_tol=1e-9):
                    raise DivergenceError(
                        context,
                        "aborted remaining "
                        f"{s_gone.remaining_mbit!r} vs {v_gone.remaining_mbit!r}",
                    )
            report.aborts += 1
        else:  # advance
            idle = op.get("idle")
            target = scalar.next_completion()
            if idle is not None or target is None:
                target = now + (idle if idle is not None else 0.0)
            target = max(target, now)
            scalar.advance(target)
            vector.advance(target)
            now = target
            s_done = scalar.pop_finished()
            v_done = vector.pop_finished()
            if [flow.flow_id for flow in s_done] != [flow.flow_id for flow in v_done]:
                raise DivergenceError(
                    context,
                    "pop order "
                    f"{[f.flow_id for f in s_done]} vs {[f.flow_id for f in v_done]}",
                )
            report.advances += 1
            report.pops += len(s_done)
        _compare(scalar, vector, context)
        report.steps += 1
        report.op_kinds.append(kind)
    return report


def random_schedule(
    seed: int,
    n_events: int = 80,
    n_links: Optional[int] = None,
) -> Tuple[List[float], List[Dict[str, Any]]]:
    """Generate the randomized schedule the differential tests sweep.

    Mirrors the historical in-test generator: ~55% arrivals over random
    link subsets (occasionally linkless, half rate-capped), ~15% aborts
    of a live flow, the rest advance-and-pop steps (20% of which take a
    random idle step instead of jumping to the next completion).
    """
    rng = random.Random(seed)
    links = n_links if n_links is not None else rng.randint(3, 12)
    capacities = [rng.uniform(1.0, 50.0) for _ in range(links)]
    ops: List[Dict[str, Any]] = []
    live: List[int] = []
    next_flow_id = 0
    for _ in range(n_events):
        action = rng.random()
        if action < 0.55 or not live:
            k = rng.randint(0, min(4, links))
            subset = rng.sample(range(links), k)
            size = rng.uniform(0.5, 8.0)
            cap = rng.uniform(0.5, 30.0) if rng.random() < 0.5 else None
            ops.append({"op": "arrive", "links": subset, "size": size, "cap": cap})
            live.append(next_flow_id)
            next_flow_id += 1
        elif action < 0.70:
            victim = rng.choice(live)
            ops.append({"op": "abort", "flow": victim})
            live.remove(victim)
        else:
            idle = rng.uniform(0.0, 1.0) if rng.random() < 0.2 else None
            ops.append({"op": "advance", "idle": idle})
            # The generator cannot know which flows complete at this
            # advance; aborts of already-popped flows are harmless no-ops
            # in both engines, so the live list is only pruned on aborts.
    return capacities, ops
