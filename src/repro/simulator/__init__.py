"""Discrete-event P2P simulator following the paper's Sec. 7.1 methodology:
session-level TCP over max-min shared fluid flows, BitTorrent swarms,
Liveswarms streaming, parallel swarms over one shared network, and the
scaled Pando field test.

Two interchangeable flow engines implement the max-min substrate: the
scalar reference (`FlowNetwork`) and the incremental vectorized engine
(`VectorizedFlowNetwork`); select per simulation via the config
``engine=`` field or globally with ``$P4P_SIM_ENGINE``."""

from repro.simulator.tcp import (
    ENGINE_ENV_VAR,
    ENGINES,
    Flow,
    FlowNetwork,
    VectorizedFlowNetwork,
    make_flow_network,
    resolve_engine,
)

__all__ = [
    "ENGINE_ENV_VAR",
    "ENGINES",
    "Flow",
    "FlowNetwork",
    "VectorizedFlowNetwork",
    "make_flow_network",
    "resolve_engine",
]
