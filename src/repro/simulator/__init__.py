"""Discrete-event P2P simulator following the paper's Sec. 7.1 methodology:
session-level TCP over max-min shared fluid flows, BitTorrent swarms,
Liveswarms streaming, parallel swarms over one shared network, and the
scaled Pando field test."""
