"""Discrete-event simulation core.

A minimal, deterministic event engine: timers are (time, sequence) ordered,
so same-time events fire in scheduling order.  Flow completions are *not*
scheduled as timers (their times move whenever rates change); the simulation
driver interleaves them -- see :class:`repro.simulator.tcp.FlowNetwork`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

EventCallback = Callable[[], None]


@dataclass(order=True)
class _Timer:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventEngine:
    """Clock plus a cancelable timer heap."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[_Timer] = []
        self._sequence = itertools.count()
        #: Callbacks executed so far -- the timer half of an "events/sec"
        #: throughput figure (flow completions are counted by the driver).
        self.fired = 0

    def schedule(self, delay: float, callback: EventCallback) -> _Timer:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        timer = _Timer(self.now + delay, next(self._sequence), callback)
        heapq.heappush(self._heap, timer)
        return timer

    def schedule_at(self, time: float, callback: EventCallback) -> _Timer:
        """Schedule ``callback`` at an absolute time (>= now)."""
        return self.schedule(time - self.now, callback)

    def cancel(self, timer: _Timer) -> None:
        timer.cancelled = True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending timer, skipping cancelled ones."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pop_due(self, until: float) -> List[_Timer]:
        """Pop (without running) all timers due at or before ``until``."""
        due: List[_Timer] = []
        while self._heap:
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            if not self._heap or self._heap[0].time > until + 1e-12:
                break
            due.append(heapq.heappop(self._heap))
        return due

    def advance_to(self, time: float) -> None:
        if time < self.now - 1e-9:
            raise ValueError("time cannot move backwards")
        self.now = max(self.now, time)

    def run_timers_until(self, until: float) -> int:
        """Advance the clock, firing every timer due by ``until``.

        Returns the number of callbacks executed.  Callbacks may schedule
        further timers, which fire in the same call when due.
        """
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > until + 1e-12:
                break
            for timer in self.pop_due(next_time):
                self.advance_to(timer.time)
                timer.callback()
                fired += 1
        self.advance_to(until)
        self.fired += fired
        return fired

    @property
    def pending(self) -> int:
        return sum(1 for timer in self._heap if not timer.cancelled)
