"""Scripted portal-outage scenario: the Sec. 5.3 degradation story, end to end.

Runs one swarm three ways over the same topology and seeds:

* **healthy** -- P4P selection with a live portal throughout;
* **degraded** -- P4P selection fed by a :class:`~repro.portal.resilience.
  ResilientPortalClient` talking through a :class:`~repro.portal.faults.
  FaultyPortal` proxy that goes dark for a scripted window of *simulation*
  time.  While the portal is down the integrator serves the stale view up
  to its TTL, then marks the AS unavailable so
  :class:`~repro.apptracker.selection.P4PSelection` degrades those
  sessions to native selection; when the window ends the breaker's
  HALF_OPEN probe recovers fresh guidance;
* **native** -- uniform random selection (the floor the paper says the
  system degrades *toward* when iTrackers vanish).

Determinism: the resilient client's clock is the simulation clock, its
backoff sleeps are no-ops (retries resolve within one tracker tick), and
all RNGs are seeded -- reruns are bit-identical, wall-clock free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apptracker.selection import (
    P4PSelection,
    PeerInfo,
    PeerSelector,
    RandomSelection,
)
from repro.core.itracker import ITracker, ITrackerConfig, PriceMode
from repro.core.pdistance import PDistanceMap
from repro.network.library import abilene
from repro.observability import RegistryResilienceCounters, Telemetry
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.portal.client import Integrator
from repro.portal.faults import FaultyPortal
from repro.portal.resilience import (
    CircuitBreaker,
    ResilientPortalClient,
    RetryPolicy,
)
from repro.portal.server import PortalServer
from repro.simulator.swarm import SwarmConfig, SwarmResult, SwarmSimulation
from repro.workloads.placement import place_peers


@dataclass(frozen=True)
class OutageWindow:
    """Half-open interval of simulation time during which the portal is dark."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError("need 0 <= start < end")

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass
class OutageScenarioResult:
    """The three runs plus the degraded run's health record."""

    healthy: SwarmResult
    degraded: SwarmResult
    native: SwarmResult
    health_timeline: List[Tuple[float, str]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    native_fallbacks: int = 0
    #: The degraded run's sim-clock telemetry bundle (resilience gauges,
    #: stale-age histogram, ``p4p_sim_*`` sampling gauges).
    telemetry: Optional[Telemetry] = None

    @staticmethod
    def backbone_mbit(result: SwarmResult) -> float:
        """Total backbone traffic -- the localization proxy P4P minimizes."""
        return sum(result.link_traffic_mbit.values())

    def statuses(self) -> List[str]:
        """Distinct health states in timeline order (dedup of repeats)."""
        seen: List[str] = []
        for _, status in self.health_timeline:
            if not seen or seen[-1] != status:
                seen.append(status)
        return seen


def _default_config(**overrides) -> SwarmConfig:
    defaults = dict(
        file_mbit=16.0,
        block_mbit=2.0,
        neighbors=6,
        join_window=100.0,
        access_up_mbps=2.0,
        access_down_mbps=4.0,
        seed_up_mbps=10.0,
        completion_quantum=0.05,
        tracker_update_interval=5.0,
        reannounce_interval=10.0,
        rng_seed=5,
    )
    defaults.update(overrides)
    return SwarmConfig(**defaults)


def _run_one(
    topology: Topology,
    routing: RoutingTable,
    config: SwarmConfig,
    selector: PeerSelector,
    n_peers: int,
    placement_seed: int,
    until: float,
    tracker_hook=None,
) -> SwarmSimulation:
    peers = place_peers(topology, n_peers, random.Random(placement_seed), first_id=1)
    seed_pid = topology.aggregation_pids[0]
    seed = PeerInfo(
        peer_id=0, pid=seed_pid, as_number=topology.node(seed_pid).as_number
    )
    sim = SwarmSimulation(topology, routing, config, selector, peers, [seed])
    sim.tracker_hook = tracker_hook
    return sim


def run_portal_outage(
    topology: Optional[Topology] = None,
    n_peers: int = 12,
    outage: OutageWindow = OutageWindow(20.0, 90.0),
    stale_ttl: float = 20.0,
    breaker_cooldown: float = 15.0,
    until: float = 5000.0,
    placement_seed: int = 3,
    **config_overrides,
) -> OutageScenarioResult:
    """Run the scripted-outage experiment and return all three runs.

    The degraded swarm starts with fresh guidance, loses the portal at
    ``outage.start``, rides the stale view until ``stale_ttl`` expires,
    runs native until ``outage.end`` plus the breaker cooldown, and
    recovers fresh guidance for the remainder.
    """
    topo = topology or abilene()
    routing = RoutingTable.build(topo)
    config = _default_config(**config_overrides)
    as_number = topo.node(topo.aggregation_pids[0]).as_number

    def live_view() -> PDistanceMap:
        return ITracker(
            topology=topo, config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
        ).get_pdistances()

    # Reference runs: always-healthy P4P and pure native.
    healthy_selector = P4PSelection(pdistances={as_number: live_view()})
    healthy = _run_one(
        topo, routing, config, healthy_selector, n_peers, placement_seed, until
    ).run(until=until)
    native = _run_one(
        topo, routing, config, RandomSelection(), n_peers, placement_seed, until
    ).run(until=until)

    # The degraded run: real server, fault proxy, resilient client whose
    # clock is the simulation clock.
    itracker = ITracker(
        topology=topo, config=ITrackerConfig(mode=PriceMode.HOP_COUNT)
    )
    timeline: List[Tuple[float, str]] = []
    views: Dict[int, PDistanceMap] = {}
    health: Dict[int, str] = {}
    selector = P4PSelection(pdistances=views, portal_health=health)
    sim = _run_one(
        topo, routing, config, selector, n_peers, placement_seed, until
    )
    engine = sim.engine
    # Sim-clock telemetry: histograms and gauges measure *simulated*
    # seconds, so the stale-age distribution is deterministic across runs.
    telemetry = Telemetry(clock=lambda: engine.now)
    sim.telemetry = telemetry
    counters = RegistryResilienceCounters(telemetry.registry)
    stale_age_hist = telemetry.registry.histogram(
        "p4p_sim_stale_age_seconds",
        "Age of stale views served during the outage (simulated seconds).",
        buckets=(1.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0),
    )
    health_gauge = telemetry.registry.gauge(
        "p4p_sim_portal_health",
        "Portal health at the last refresh (0 ok, 1 stale, 2 unavailable).",
    )
    _HEALTH_LEVELS = {"ok": 0, "stale": 1, "unavailable": 2}

    with PortalServer(itracker) as server, FaultyPortal(server.address) as proxy:
        client = ResilientPortalClient(
            *proxy.address,
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.0, max_delay=0.0, attempt_timeout=2.0
            ),
            breaker=CircuitBreaker(
                failure_threshold=3,
                cooldown=breaker_cooldown,
                clock=lambda: engine.now,
            ),
            stale_ttl=stale_ttl,
            clock=lambda: engine.now,
            sleep=lambda _delay: None,
            rng=random.Random(config.rng_seed),
            counters=counters,
        )
        integrator = Integrator(telemetry=telemetry)
        integrator.add(as_number, client)

        def refresh(now: float) -> None:
            proxy.down = outage.covers(now)
            fetched = integrator.views()
            views.clear()
            views.update(fetched)
            health.clear()
            health.update(integrator.status_map())
            status = health.get(as_number, "unavailable")
            timeline.append((now, status))
            health_gauge.set(_HEALTH_LEVELS.get(status, 2))
            record = integrator.health.get(as_number)
            if status == "stale" and record is not None and record.stale_age:
                stale_age_hist.observe(record.stale_age)

        refresh(0.0)
        sim.tracker_hook = lambda now, traffic, rates: refresh(now)
        degraded = sim.run(until=until)
        # The appTracker keeps polling after the swarm drains; if the run
        # ended before the breaker's recovery probe fired, record the
        # post-outage recovery so the timeline shows the full ladder.
        if timeline and timeline[-1][1] != "ok" and engine.now >= outage.end:
            engine.advance_to(engine.now + breaker_cooldown + 1.0)
            refresh(engine.now)
        integrator.close()

    counters.native_fallbacks = selector.native_fallbacks
    return OutageScenarioResult(
        healthy=healthy,
        degraded=degraded,
        native=native,
        health_timeline=timeline,
        counters=counters.snapshot(),
        native_fallbacks=selector.native_fallbacks,
        telemetry=telemetry,
    )
