"""BGP-preference-derived p-distances (Sec. 4 ISP use case).

"An ISP can assign p-distances in a wide variety of ways: it derives
p-distances from OSPF weights and BGP preferences."  Intradomain links get
their OSPF weight; interdomain links are priced by the business
relationship behind them -- customer links are revenue, peering is settled,
transit costs money, and backup transit is the expensive last resort the
motivating example (Sec. 2) warns locality-based peering blunders into.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.network.topology import Topology

LinkKey = Tuple[str, str]


class BgpRelationship(enum.Enum):
    """Commercial relationship of an interdomain link, best first."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"
    BACKUP = "backup"


#: Default price multipliers per relationship, mirroring valley-free
#: economics: send to customers for free (they pay), peers cheaply,
#: providers at cost, backup providers only when desperate.
DEFAULT_MULTIPLIERS: Mapping[BgpRelationship, float] = {
    BgpRelationship.CUSTOMER: 0.0,
    BgpRelationship.PEER: 1.0,
    BgpRelationship.PROVIDER: 5.0,
    BgpRelationship.BACKUP: 25.0,
}


@dataclass
class BgpPolicy:
    """Per-interdomain-link relationships plus pricing knobs.

    Attributes:
        relationships: Directed interdomain link -> relationship.
        multipliers: Relationship -> price multiplier (applied to
            ``unit_price``).
        unit_price: The price of one "peer-grade" interdomain traversal,
            in the same units as the OSPF weights it will sit beside.
    """

    relationships: Dict[LinkKey, BgpRelationship] = field(default_factory=dict)
    multipliers: Mapping[BgpRelationship, float] = field(
        default_factory=lambda: dict(DEFAULT_MULTIPLIERS)
    )
    unit_price: float = 1.0

    def __post_init__(self) -> None:
        if self.unit_price <= 0:
            raise ValueError("unit_price must be positive")
        for relationship, multiplier in self.multipliers.items():
            if multiplier < 0:
                raise ValueError(f"negative multiplier for {relationship}")

    def classify(self, key: LinkKey, relationship: BgpRelationship) -> None:
        self.relationships[key] = relationship

    def price(self, key: LinkKey) -> Optional[float]:
        """The BGP-derived price for a classified link; None if unknown."""
        relationship = self.relationships.get(key)
        if relationship is None:
            return None
        return self.unit_price * self.multipliers[relationship]


def derive_prices(
    topology: Topology,
    policy: BgpPolicy,
    default_interdomain: Optional[BgpRelationship] = BgpRelationship.PROVIDER,
) -> Dict[LinkKey, float]:
    """Sec. 4's "OSPF weights and BGP preferences" price assignment.

    Intradomain links price at their OSPF weight; interdomain links at the
    BGP relationship price.  Unclassified interdomain links fall back to
    ``default_interdomain`` (None makes them an error instead).

    The result plugs straight into ``PriceMode.EXPLICIT``.
    """
    prices: Dict[LinkKey, float] = {}
    for key, link in topology.links.items():
        if not link.interdomain:
            prices[key] = link.ospf_weight
            continue
        bgp_price = policy.price(key)
        if bgp_price is None:
            if default_interdomain is None:
                raise KeyError(f"interdomain link {key} has no BGP relationship")
            bgp_price = policy.unit_price * policy.multipliers[default_interdomain]
        prices[key] = bgp_price
    return prices
