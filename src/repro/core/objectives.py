"""Provider traffic-engineering objectives and their decomposition hooks.

Each objective supplies, per Sec. 5:

* ``effective_capacity`` -- the capacity used in the price simplex
  ``{p : sum c_e p_e = 1}`` and in constraints; interdomain links use their
  virtual capacity ``v_e`` (constraint 16) when set, so the multihoming cost
  objective composes with either intradomain objective;
* ``cost_offsets`` -- per-link additive costs exposed to applications on top
  of the dual prices (``d_e`` for the bandwidth-distance product, eq. 15);
* ``supergradient`` -- the super-gradient ``xi`` of the dual function at the
  current prices, from Proposition 1 and its BDP analogue;
* ``evaluate`` -- the primal objective value of a given load assignment;
* ``centralized_optimum`` -- the full-information LP benchmark the
  distributed loop is compared against.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.session import (
    SessionDemand,
    TrafficPattern,
    _add_capacity_constraints,
    _add_robustness_constraints,
    max_matching_throughput,
)
from repro.network.routing import RoutingTable
from repro.network.topology import Link, Topology
from repro.optimization.linprog import LinearProgram

LinkKey = Tuple[str, str]


def effective_capacity(link: Link) -> float:
    """``c_e``, or the virtual capacity ``v_e`` on a charged link."""
    if link.interdomain and link.virtual_capacity is not None:
        return max(link.virtual_capacity, 1e-9)
    return link.capacity


class ProviderObjective(abc.ABC):
    """Interface every ISP objective implements for the decomposition loop."""

    name: str = "objective"

    @abc.abstractmethod
    def cost_offsets(self, topology: Topology) -> Dict[LinkKey, float]:
        """Per-link additive costs shown to applications (may be empty)."""

    @abc.abstractmethod
    def supergradient(
        self,
        topology: Topology,
        link_order: Sequence[LinkKey],
        loads: Mapping[LinkKey, float],
    ) -> np.ndarray:
        """Super-gradient of the dual at the measured P4P ``loads``."""

    @abc.abstractmethod
    def evaluate(self, topology: Topology, loads: Mapping[LinkKey, float]) -> float:
        """Primal objective value for per-link P4P loads."""

    def centralized_optimum(
        self,
        topology: Topology,
        routing: RoutingTable,
        sessions: Sequence[SessionDemand],
        beta: float = 0.8,
    ) -> Tuple[float, List[TrafficPattern]]:
        """Full-information LP benchmark (infeasible to deploy; Sec. 5).

        Solves the joint problem over all sessions with each session held to
        at least ``beta`` of its standalone matching optimum.
        """
        lp, pair_vars = _session_lp_base(sessions, beta)
        self._add_objective(lp, topology, routing, sessions, pair_vars)
        solution = lp.solve()
        patterns = [
            TrafficPattern(
                flows={
                    pair: max(0.0, solution[var])
                    for pair, var in pair_vars[index].items()
                }
            )
            for index in range(len(sessions))
        ]
        return solution.objective, patterns

    @abc.abstractmethod
    def _add_objective(
        self,
        lp: LinearProgram,
        topology: Topology,
        routing: RoutingTable,
        sessions: Sequence[SessionDemand],
        pair_vars: List[Dict[Tuple[str, str], str]],
    ) -> None:
        """Install objective + link constraints into the centralized LP."""


def _session_lp_base(
    sessions: Sequence[SessionDemand], beta: float
) -> Tuple[LinearProgram, List[Dict[Tuple[str, str], str]]]:
    """Variables + per-session acceptable-set constraints (2)-(4), (6), (7)."""
    lp = LinearProgram(name="centralized")
    pair_vars: List[Dict[Tuple[str, str], str]] = []
    for index, session in enumerate(sessions):
        variables: Dict[Tuple[str, str], str] = {}
        for src, dst in session.pairs():
            variables[(src, dst)] = lp.add_var(f"t{index}_{src}_{dst}")
        pair_vars.append(variables)
        # Reuse the session constraint builders on a namespaced facade.
        facade = _NamespacedLp(lp, prefix=f"t{index}_", inner_prefix="t_")
        _add_capacity_constraints(facade, session)
        _add_robustness_constraints(facade, session)
        opt, _ = max_matching_throughput(session)
        if opt > 0 and variables:
            lp.add_ge({var: 1.0 for var in variables.values()}, beta * opt)
    return lp, pair_vars


class _NamespacedLp:
    """Adapter renaming ``t_i_j`` to ``t{k}_i_j`` for shared constraint code."""

    def __init__(self, lp: LinearProgram, prefix: str, inner_prefix: str) -> None:
        self._lp = lp
        self._prefix = prefix
        self._inner = inner_prefix

    def _rename(self, coeffs: Mapping[str, float]) -> Dict[str, float]:
        renamed = {}
        for name, value in coeffs.items():
            if not name.startswith(self._inner):
                raise KeyError(f"unexpected variable {name!r}")
            renamed[self._prefix + name[len(self._inner):]] = value
        return renamed

    def add_le(self, coeffs: Mapping[str, float], rhs: float) -> None:
        self._lp.add_le(self._rename(coeffs), rhs)

    def add_ge(self, coeffs: Mapping[str, float], rhs: float) -> None:
        self._lp.add_ge(self._rename(coeffs), rhs)


def _link_load_terms(
    topology: Topology,
    routing: RoutingTable,
    sessions: Sequence[SessionDemand],
    pair_vars: List[Dict[Tuple[str, str], str]],
) -> Dict[LinkKey, Dict[str, float]]:
    """For each link, the LP terms ``sum_k sum_ij I_e(i,j) t^k_ij``."""
    terms: Dict[LinkKey, Dict[str, float]] = {key: {} for key in topology.links}
    for variables in pair_vars:
        for (src, dst), var in variables.items():
            for key in routing.route(src, dst):
                terms[key][var] = terms[key].get(var, 0.0) + 1.0
    return terms


def _interdomain_constraints(
    lp: LinearProgram,
    topology: Topology,
    load_terms: Dict[LinkKey, Dict[str, float]],
) -> None:
    """Constraint (16): P4P load on a charged link bounded by ``v_e``."""
    for link in topology.interdomain_links:
        if link.virtual_capacity is None:
            continue
        terms = load_terms[link.key]
        if terms:
            lp.add_le(dict(terms), link.virtual_capacity)


@dataclass
class MinMaxUtilization(ProviderObjective):
    """Minimize the maximum link utilization (Fig. 4).

    Super-gradient (Proposition 1): ``xi_e = b_e + t_e - alpha * c_e`` with
    ``alpha`` the achieved MLU at the measured loads.
    """

    name: str = "mlu"

    def cost_offsets(self, topology: Topology) -> Dict[LinkKey, float]:
        return {}

    def evaluate(self, topology: Topology, loads: Mapping[LinkKey, float]) -> float:
        return max(
            (link.background + loads.get(key, 0.0)) / effective_capacity(link)
            for key, link in topology.links.items()
        )

    def supergradient(
        self,
        topology: Topology,
        link_order: Sequence[LinkKey],
        loads: Mapping[LinkKey, float],
    ) -> np.ndarray:
        alpha = self.evaluate(topology, loads)
        xi = np.zeros(len(link_order))
        for index, key in enumerate(link_order):
            link = topology.links[key]
            total = link.background + loads.get(key, 0.0)
            xi[index] = total - alpha * effective_capacity(link)
        return xi

    def _add_objective(self, lp, topology, routing, sessions, pair_vars) -> None:
        load_terms = _link_load_terms(topology, routing, sessions, pair_vars)
        lp.add_var("alpha")
        for key, link in topology.links.items():
            coeffs = dict(load_terms[key])
            coeffs["alpha"] = -effective_capacity(link)
            lp.add_le(coeffs, -link.background)
        _interdomain_constraints(lp, topology, load_terms)
        lp.set_objective({"alpha": 1.0})


@dataclass
class BandwidthDistanceProduct(ProviderObjective):
    """Minimize the bandwidth-distance product ``sum_e d_e t_e`` (Sec. 5).

    Applications see ``p_e + d_e`` per link (eq. 15); the super-gradient is
    ``xi_e = b_e + t_e - c_e``.
    """

    name: str = "bdp"

    def cost_offsets(self, topology: Topology) -> Dict[LinkKey, float]:
        return {key: link.distance for key, link in topology.links.items()}

    def evaluate(self, topology: Topology, loads: Mapping[LinkKey, float]) -> float:
        return sum(
            topology.links[key].distance * value for key, value in loads.items()
        )

    def supergradient(
        self,
        topology: Topology,
        link_order: Sequence[LinkKey],
        loads: Mapping[LinkKey, float],
    ) -> np.ndarray:
        xi = np.zeros(len(link_order))
        for index, key in enumerate(link_order):
            link = topology.links[key]
            xi[index] = link.background + loads.get(key, 0.0) - effective_capacity(link)
        return xi

    def _add_objective(self, lp, topology, routing, sessions, pair_vars) -> None:
        load_terms = _link_load_terms(topology, routing, sessions, pair_vars)
        objective: Dict[str, float] = {}
        for key, link in topology.links.items():
            for var, coefficient in load_terms[key].items():
                objective[var] = objective.get(var, 0.0) + coefficient * link.distance
            terms = dict(load_terms[key])
            if terms:
                lp.add_le(terms, effective_capacity(link) - link.background)
        _interdomain_constraints(lp, topology, load_terms)
        lp.set_objective(objective)


def apply_peak_background(
    topology: Topology, peak_background: Mapping[LinkKey, float]
) -> Topology:
    """The 'peak bandwidth' objective variant (Sec. 5).

    Returns a copy of the topology whose per-link background traffic is set
    to its peak-time value, so either intradomain objective optimizes for
    the peak; nothing else changes.
    """
    peaked = topology.copy()
    for key, value in peak_background.items():
        if key not in peaked.links:
            raise KeyError(f"unknown link {key}")
        if value < 0:
            raise ValueError(f"negative peak background on {key}")
        peaked.links[key].background = value
    return peaked
