"""Application sessions and their acceptable traffic patterns ``T^k``.

An application session ``k`` (one P2P swarm) aggregates its per-PID upload
(supply) and download (demand) capacities.  The set of acceptable inter-PID
traffic patterns ``T^k`` is defined by the paper's constraints (2)-(4),
optionally tightened by the robustness lower bounds (7) and an efficiency
floor (6).

This module provides the session data model, the *traffic pattern* value
type, and the two LPs from the application use cases of Sec. 4:

* ``max_matching_throughput`` -- maximize matched upload/download bandwidth,
  objective (1) under (2)-(4), yielding ``OPT``;
* ``min_cost_traffic`` -- minimize ``sum p_ij * t_ij``, objective (5), under
  (2)-(4), the efficiency floor (6) with factor ``beta``, and the robustness
  constraints (7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.pdistance import PDistanceMap
from repro.optimization.linprog import LinearProgram

PidPair = Tuple[str, str]


@dataclass(frozen=True)
class TrafficPattern:
    """An inter-PID traffic assignment ``t_ij`` (Mbps), ``i != j``."""

    flows: Mapping[PidPair, float]

    def __post_init__(self) -> None:
        for (src, dst), value in self.flows.items():
            if src == dst:
                raise ValueError(f"intra-PID flow ({src}, {dst}) not allowed")
            if value < -1e-9:
                raise ValueError(f"negative flow on ({src}, {dst})")

    def total(self) -> float:
        return sum(self.flows.values())

    def flow(self, src: str, dst: str) -> float:
        return self.flows.get((src, dst), 0.0)

    def outgoing(self, pid: str) -> float:
        return sum(v for (src, _), v in self.flows.items() if src == pid)

    def incoming(self, pid: str) -> float:
        return sum(v for (_, dst), v in self.flows.items() if dst == pid)

    def cost(self, pdistance: PDistanceMap) -> float:
        """``sum p_ij * t_ij`` under a p-distance map."""
        return sum(
            pdistance.distance(src, dst) * value
            for (src, dst), value in self.flows.items()
        )

    def link_loads(self, routing) -> Dict[Tuple[str, str], float]:
        """Per-link load when the pattern is routed over a topology."""
        loads: Dict[Tuple[str, str], float] = {}
        for (src, dst), value in self.flows.items():
            if value <= 0:
                continue
            for key in routing.route(src, dst):
                loads[key] = loads.get(key, 0.0) + value
        return loads

    def blend(self, target: "TrafficPattern", theta: float) -> "TrafficPattern":
        """Damped move toward ``target``: ``t + theta * (target - t)``.

        This is the practical application response of Sec. 5 -- a session
        cannot rewire all its connections instantly.
        """
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must be in [0, 1]")
        pairs = set(self.flows) | set(target.flows)
        blended = {
            pair: (1 - theta) * self.flows.get(pair, 0.0)
            + theta * target.flows.get(pair, 0.0)
            for pair in pairs
        }
        return TrafficPattern(flows=blended)

    @classmethod
    def zero(cls) -> "TrafficPattern":
        return cls(flows={})


@dataclass
class SessionDemand:
    """Aggregated per-PID capacities of one application session.

    Attributes:
        name: Session label.
        uploads: ``u_i^k`` -- total upload capacity of PID-i peers (Mbps).
        downloads: ``d_i^k`` -- total download capacity of PID-i peers.
        rho: Robustness lower bounds ``rho_ij`` -- minimum fraction of
            PID-i's total outgoing traffic that must go to PID-j (eq. 7).
    """

    name: str
    uploads: Dict[str, float]
    downloads: Dict[str, float]
    rho: Dict[PidPair, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if set(self.uploads) != set(self.downloads):
            raise ValueError("uploads and downloads must cover the same PIDs")
        for pid, value in self.uploads.items():
            if value < 0 or self.downloads[pid] < 0:
                raise ValueError(f"negative capacity at PID {pid!r}")
        by_src: Dict[str, float] = {}
        for (src, dst), bound in self.rho.items():
            if src == dst:
                raise ValueError("rho is defined for distinct PIDs only")
            if not 0.0 <= bound <= 1.0:
                raise ValueError("rho bounds must be in [0, 1]")
            by_src[src] = by_src.get(src, 0.0) + bound
        for src, total in by_src.items():
            if total >= 1.0:
                raise ValueError(f"rho bounds from {src!r} sum to >= 1")

    @property
    def pids(self) -> List[str]:
        return list(self.uploads)

    def pairs(self) -> List[PidPair]:
        """All ordered PID pairs the session can send traffic over."""
        pids = self.pids
        return [(i, j) for i in pids for j in pids if i != j]


def _add_capacity_constraints(lp: LinearProgram, session: SessionDemand) -> None:
    """Constraints (2)-(4): per-PID aggregate upload and download caps."""
    for pid in session.pids:
        out_terms = {f"t_{pid}_{dst}": 1.0 for dst in session.pids if dst != pid}
        in_terms = {f"t_{src}_{pid}": 1.0 for src in session.pids if src != pid}
        if out_terms:
            lp.add_le(out_terms, session.uploads[pid])
        if in_terms:
            lp.add_le(in_terms, session.downloads[pid])


def _add_robustness_constraints(lp: LinearProgram, session: SessionDemand) -> None:
    """Constraints (7): ``t_ij >= rho_ij * sum_j' t_ij'``."""
    for (src, dst), bound in session.rho.items():
        if bound <= 0:
            continue
        coeffs = {
            f"t_{src}_{other}": -bound for other in session.pids if other != src
        }
        coeffs[f"t_{src}_{dst}"] = coeffs.get(f"t_{src}_{dst}", 0.0) + 1.0
        lp.add_ge(coeffs, 0.0)


def max_matching_throughput(session: SessionDemand) -> Tuple[float, TrafficPattern]:
    """LP (1)-(4): maximize total matched upload/download bandwidth.

    Returns ``(OPT, pattern)`` where OPT is the network-oblivious optimum
    the efficiency floor (6) is expressed against.
    """
    pairs = session.pairs()
    if not pairs:
        return 0.0, TrafficPattern.zero()
    lp = LinearProgram(name=f"matching[{session.name}]")
    for src, dst in pairs:
        lp.add_var(f"t_{src}_{dst}")
    _add_capacity_constraints(lp, session)
    lp.set_objective({f"t_{src}_{dst}": 1.0 for src, dst in pairs}, maximize=True)
    solution = lp.solve()
    pattern = TrafficPattern(
        flows={
            (src, dst): max(0.0, solution[f"t_{src}_{dst}"]) for src, dst in pairs
        }
    )
    return solution.objective, pattern


def min_cost_traffic(
    session: SessionDemand,
    pdistance: PDistanceMap,
    beta: float = 0.8,
    opt: Optional[float] = None,
) -> TrafficPattern:
    """LP (5)-(7): minimize network cost at ``>= beta * OPT`` throughput.

    Args:
        session: The session's acceptable-set parameters.
        pdistance: The external-view p-distances to price traffic with.
        beta: Efficiency factor of constraint (6).
        opt: Pre-computed OPT; computed via the matching LP when omitted.

    Raises:
        InfeasibleError: If the robustness bounds make the floor unreachable.
    """
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    if opt is None:
        opt, _ = max_matching_throughput(session)
    pairs = session.pairs()
    if not pairs or opt <= 0:
        return TrafficPattern.zero()
    lp = LinearProgram(name=f"mincost[{session.name}]")
    for src, dst in pairs:
        lp.add_var(f"t_{src}_{dst}")
    _add_capacity_constraints(lp, session)
    _add_robustness_constraints(lp, session)
    lp.add_ge({f"t_{src}_{dst}": 1.0 for src, dst in pairs}, beta * opt)
    lp.set_objective(
        {
            f"t_{src}_{dst}": pdistance.distance(src, dst)
            for src, dst in pairs
        }
    )
    solution = lp.solve()
    return TrafficPattern(
        flows={
            (src, dst): max(0.0, solution[f"t_{src}_{dst}"]) for src, dst in pairs
        }
    )


def combine_link_loads(
    patterns: Iterable[TrafficPattern], routing
) -> Dict[Tuple[str, str], float]:
    """Total per-link P4P load of several sessions routed together."""
    loads: Dict[Tuple[str, str], float] = {}
    for pattern in patterns:
        for key, value in pattern.link_loads(routing).items():
            loads[key] = loads.get(key, 0.0) + value
    return loads
