"""Virtual coordinate embedding of p-distances (Sec. 9 / Sec. 10 future work).

The external view is a full mesh: ``O(n^2)`` entries per provider.  The
paper proposes virtual coordinate embedding as the scalability fix: the
iTracker publishes one low-dimensional coordinate per PID and clients
reconstruct ``p_ij ~ ||x_i - x_j||`` locally -- ``O(n * d)`` state, cacheable,
and composable across providers.

Implementation: classical multidimensional scaling (Torgerson) for the
initial solution, refined by SMACOF stress majorization -- routed
p-distances are generally non-Euclidean, where raw classical MDS leaves
substantial residual stress.  P-distances are not generally symmetric, so
the embedding works on the symmetrized map ``(p_ij + p_ji) / 2`` and
reports both the stress (relative RMS error) and the worst pairwise error
so an operator can judge whether the compression is acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.pdistance import PDistanceMap


@dataclass(frozen=True)
class CoordinateEmbedding:
    """Per-PID virtual coordinates approximating a p-distance map."""

    pids: Tuple[str, ...]
    coordinates: np.ndarray  # shape (n_pids, dimensions)

    def __post_init__(self) -> None:
        if self.coordinates.shape[0] != len(self.pids):
            raise ValueError("one coordinate row per PID required")

    @property
    def dimensions(self) -> int:
        return self.coordinates.shape[1]

    def coordinate(self, pid: str) -> np.ndarray:
        return self.coordinates[self.pids.index(pid)]

    def distance(self, src: str, dst: str) -> float:
        """Reconstructed ``p_ij`` (Euclidean distance of the coordinates)."""
        if src == dst:
            return 0.0
        delta = self.coordinate(src) - self.coordinate(dst)
        return float(np.linalg.norm(delta))

    def to_pdistance_map(self) -> PDistanceMap:
        """Materialize the approximate full mesh (for evaluation/testing)."""
        distances: Dict[Tuple[str, str], float] = {}
        for src in self.pids:
            for dst in self.pids:
                distances[(src, dst)] = self.distance(src, dst)
        return PDistanceMap(pids=self.pids, distances=distances)

    def state_size(self) -> int:
        """Floats a client must hold (vs ``n^2`` for the full mesh)."""
        return self.coordinates.size


@dataclass(frozen=True)
class EmbeddingQuality:
    """Fit diagnostics of an embedding against the true map."""

    stress: float  # relative RMS error over all ordered pairs
    max_relative_error: float
    compression_ratio: float  # full-mesh floats / embedding floats

    @property
    def acceptable(self) -> bool:
        """A loose default gate: under 15% RMS error."""
        return self.stress < 0.15


def _symmetric_distance_matrix(view: PDistanceMap) -> Tuple[Tuple[str, ...], np.ndarray]:
    pids = tuple(view.pids)
    n = len(pids)
    matrix = np.zeros((n, n))
    for i, src in enumerate(pids):
        for j, dst in enumerate(pids):
            if i == j:
                continue
            matrix[i, j] = 0.5 * (view.distance(src, dst) + view.distance(dst, src))
    return pids, matrix


def _smacof(
    target: np.ndarray, coordinates: np.ndarray, iterations: int
) -> np.ndarray:
    """Stress majorization: iteratively move points to fit ``target``.

    Route-based p-distances are not Euclidean, so the classical MDS
    solution leaves residual stress that a few Guttman-transform steps
    reduce substantially.
    """
    n = target.shape[0]
    x = coordinates.copy()
    for _ in range(iterations):
        delta = x[:, None, :] - x[None, :, :]
        current = np.sqrt(np.sum(delta**2, axis=2))
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(current > 1e-12, target / current, 0.0)
        b = -ratio
        np.fill_diagonal(b, 0.0)
        np.fill_diagonal(b, -b.sum(axis=1))
        x = (b @ x) / n
    return x


def embed_pdistances(
    view: PDistanceMap, dimensions: int = 4, smacof_iterations: int = 50
) -> CoordinateEmbedding:
    """Embed a (symmetrized) p-distance map into ``d`` dimensions.

    Classical MDS (Torgerson) provides the initial solution; SMACOF
    stress-majorization then refines it, which matters because routed
    p-distances are generally non-Euclidean.

    Args:
        view: The external view to compress.
        dimensions: Coordinate dimensionality ``d`` (clamped to ``n - 1``).
        smacof_iterations: Refinement steps (0 = raw classical MDS).

    Raises:
        ValueError: For fewer than 2 PIDs or non-positive dimensions.
    """
    pids, distance = _symmetric_distance_matrix(view)
    n = len(pids)
    if n < 2:
        raise ValueError("need at least two PIDs to embed")
    if dimensions < 1:
        raise ValueError("dimensions must be >= 1")
    if smacof_iterations < 0:
        raise ValueError("smacof_iterations must be >= 0")
    dimensions = min(dimensions, n - 1)

    # Torgerson double-centering: B = -1/2 J D^2 J.
    squared = distance**2
    centering = np.eye(n) - np.ones((n, n)) / n
    gram = -0.5 * centering @ squared @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1][:dimensions]
    top_values = np.maximum(eigenvalues[order], 0.0)
    coordinates = eigenvectors[:, order] * np.sqrt(top_values)
    if smacof_iterations:
        coordinates = _smacof(distance, coordinates, smacof_iterations)
    return CoordinateEmbedding(pids=pids, coordinates=coordinates)


def embedding_quality(
    view: PDistanceMap, embedding: CoordinateEmbedding
) -> EmbeddingQuality:
    """Stress and worst-case error of an embedding vs the true map."""
    errors: List[float] = []
    truths: List[float] = []
    max_rel = 0.0
    for src in embedding.pids:
        for dst in embedding.pids:
            if src == dst:
                continue
            truth = 0.5 * (view.distance(src, dst) + view.distance(dst, src))
            approx = embedding.distance(src, dst)
            errors.append((approx - truth) ** 2)
            truths.append(truth**2)
            if truth > 1e-12:
                max_rel = max(max_rel, abs(approx - truth) / truth)
    denominator = float(np.sum(truths))
    stress = float(np.sqrt(np.sum(errors) / denominator)) if denominator > 0 else 0.0
    n = len(embedding.pids)
    full_mesh_floats = n * n
    return EmbeddingQuality(
        stress=stress,
        max_relative_error=max_rel,
        compression_ratio=full_mesh_floats / max(1, embedding.state_size()),
    )


def embed_with_target_stress(
    view: PDistanceMap,
    target_stress: float = 0.1,
    max_dimensions: int = 16,
) -> Tuple[CoordinateEmbedding, EmbeddingQuality]:
    """Smallest dimensionality meeting a stress target (or the max tried)."""
    if not 0 < target_stress < 1:
        raise ValueError("target_stress must be in (0, 1)")
    best = None
    for dimensions in range(1, max_dimensions + 1):
        embedding = embed_pdistances(view, dimensions=dimensions)
        quality = embedding_quality(view, embedding)
        best = (embedding, quality)
        if quality.stress <= target_stress:
            break
    assert best is not None
    return best
