"""The iTracker: a provider's P4P portal (Secs. 3 and 6.1).

One iTracker serves a single provider network.  It exposes the three control
plane interfaces -- ``policy``, ``p4p-distance``, ``capability`` -- and
maintains the per-link prices behind the p-distance view, either *static*
(derived from OSPF weights, hop counts, or an explicit assignment) or
*dynamic* (projected super-gradient updates driven by measured link loads,
refreshed every ``update_period`` seconds).

For interdomain multihoming cost control the iTracker tracks per-link volume
histories and estimates the virtual capacity ``v_e`` with the Sec. 6.1
charging-volume predictor.
"""

from __future__ import annotations

import enum
import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.capability import Capability, CapabilityRegistry
from repro.core.charging import (
    BackgroundPredictor,
    ChargingVolumePredictor,
    estimate_virtual_capacity,
)
from repro.core.objectives import MinMaxUtilization, ProviderObjective, effective_capacity
from repro.core.pdistance import PDistanceMap, PidMap, external_view
from repro.core.policy import NetworkPolicy
from repro.core.statestore import StateStore
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.optimization.projection import project_weighted_simplex, uniform_price

LinkKey = Tuple[str, str]

logger = logging.getLogger(__name__)


class PriceMode(enum.Enum):
    """How the iTracker assigns per-link p-distances (ISP use cases, Sec. 4)."""

    OSPF_WEIGHTS = "ospf"
    HOP_COUNT = "hop-count"
    EXPLICIT = "explicit"
    DYNAMIC = "dynamic"


@dataclass
class ITrackerConfig:
    """Operator-tunable iTracker settings.

    Attributes:
        mode: Price assignment mode.
        update_period: Seconds between dynamic price updates (``T``).
        step_size: ``mu`` of the super-gradient update in dynamic mode.
        perturbation: Relative privacy noise applied to the external view
            (0 disables).
        serve_ranks: Serve the coarse rank degradation instead of raw
            p-distances (the 'coarsest level' use case).
        intra_pid_distance: ``p_ii`` reported for intra-PID transfers.
        charging_quantile: q of the percentile charging model.
    """

    mode: PriceMode = PriceMode.DYNAMIC
    update_period: float = 30.0
    step_size: float = 0.05
    perturbation: float = 0.0
    serve_ranks: bool = False
    intra_pid_distance: float = 0.0
    charging_quantile: float = 0.95

    def __post_init__(self) -> None:
        if self.update_period <= 0:
            raise ValueError("update_period must be positive")
        if self.step_size <= 0:
            raise ValueError("step_size must be positive")
        if self.perturbation < 0:
            raise ValueError("perturbation must be >= 0")
        if not 0 < self.charging_quantile <= 1:
            raise ValueError("charging_quantile must be in (0, 1]")


@dataclass
class ITracker:
    """A provider portal bound to one topology.

    The portal is deliberately light-weight: it never handles per-client
    application joins; it answers aggregate queries that applications (or
    appTrackers) may cache until the next update period.
    """

    topology: Topology
    config: ITrackerConfig = field(default_factory=ITrackerConfig)
    objective: ProviderObjective = field(default_factory=MinMaxUtilization)
    policy: NetworkPolicy = field(default_factory=NetworkPolicy)
    capabilities: CapabilityRegistry = field(default_factory=CapabilityRegistry)
    pid_map: Optional[PidMap] = None
    explicit_prices: Optional[Dict[LinkKey, float]] = None
    #: Optional :class:`repro.observability.Telemetry`; when present every
    #: dynamic price update records a span (super-gradient norm, MLU) and
    #: refreshes the ``p4p_core_*`` gauges.  A :class:`~repro.portal.server.
    #: PortalServer` fronting this iTracker shares its bundle automatically.
    telemetry: Optional[Any] = field(default=None, repr=False)
    #: Optional :class:`repro.core.statestore.StateStore`; when present
    #: every version bump appends a WAL record and :meth:`checkpoint` /
    #: :meth:`restore` make the portal survive a crash with its price
    #: iterate, charging histories, and version epoch intact.
    state_store: Optional[StateStore] = field(default=None, repr=False)

    #: How many recent update records :meth:`state_delta` can serve.
    UPDATE_LOG_SIZE = 256

    def __post_init__(self) -> None:
        self.routing = RoutingTable.build(self.topology)
        self._link_order: Tuple[LinkKey, ...] = tuple(self.topology.links)
        self._capacities = np.array(
            [effective_capacity(self.topology.links[key]) for key in self._link_order]
        )
        self._prices = self._initial_prices()
        self._version = 0
        self._epoch = 0
        self._last_update_time = 0.0
        self._volume_history: Dict[LinkKey, List[float]] = {}
        self._background_history: Dict[LinkKey, List[float]] = {}
        self._update_log: Deque[Dict[str, Any]] = deque(maxlen=self.UPDATE_LOG_SIZE)
        self._update_log.append(self._update_record())

    # -- price state -----------------------------------------------------------

    def _initial_prices(self) -> np.ndarray:
        mode = self.config.mode
        if mode is PriceMode.OSPF_WEIGHTS:
            return np.array(
                [self.topology.links[key].ospf_weight for key in self._link_order]
            )
        if mode is PriceMode.HOP_COUNT:
            return np.ones(len(self._link_order))
        if mode is PriceMode.EXPLICIT:
            if self.explicit_prices is None:
                raise ValueError("EXPLICIT mode requires explicit_prices")
            missing = set(self._link_order) - set(self.explicit_prices)
            if missing:
                raise ValueError(f"explicit prices missing for links: {sorted(missing)}")
            return np.array([self.explicit_prices[key] for key in self._link_order])
        return uniform_price(self._capacities)

    @property
    def link_prices(self) -> Dict[LinkKey, float]:
        """Current internal-view per-link prices ``p_e``."""
        return dict(zip(self._link_order, self._prices))

    @property
    def version(self) -> int:
        """Monotone counter bumped on every dynamic update (cache key)."""
        return self._version

    @property
    def epoch(self) -> int:
        """Restart generation: 0 for a fresh portal, +1 per :meth:`restore`.

        ``(epoch, version)`` is the fully monotone identity of the price
        state: a restore bumps both, so clients comparing the pair detect
        an amnesiac restart (a tracker that reset to ``(0, 0)``) as a
        regression rather than mistaking it for fresh state.
        """
        return self._epoch

    # -- the p4p-distance interface ---------------------------------------------

    def get_pdistances(self, pids: Optional[Sequence[str]] = None) -> PDistanceMap:
        """The external view, optionally restricted to a swarm's PIDs.

        Applies the configured privacy perturbation and/or rank coarsening.
        """
        view = self.view_snapshot()
        if pids is not None:
            view = view.restricted_to(pids)
        return self.finish_view(view)

    def view_snapshot(self) -> PDistanceMap:
        """The raw full-mesh external view for the current price state.

        This is the expensive, *pure* part of :meth:`get_pdistances`
        (aggregating per-link prices over every PID-pair route), before
        any restriction or configured degradation.  It depends only on
        ``(epoch, version)``, which makes it the cacheable unit behind
        the async serving plane's versioned copy-on-update view
        publication (:class:`repro.portal.views.ViewPublisher`).
        """
        return external_view(
            self.topology,
            self.routing,
            self.link_prices,
            self.objective.cost_offsets(self.topology),
            intra_pid_distance=self.config.intra_pid_distance,
        )

    def finish_view(
        self, view: PDistanceMap, version: Optional[int] = None
    ) -> PDistanceMap:
        """Apply the configured degradations to a (restricted) raw view.

        Perturbation is seeded by ``version`` (default: the current one)
        so a cached snapshot postprocessed later yields bit-identical
        distances to a view computed inline at that version.  Order
        matters and mirrors :meth:`get_pdistances`: restrict first, then
        perturb, then coarsen to ranks.
        """
        if self.config.perturbation > 0:
            seed = self._version if version is None else version
            view = view.perturbed(self.config.perturbation, seed=seed)
        if self.config.serve_ranks:
            view = view.to_ranks()
        return view

    # -- the policy / capability interfaces --------------------------------------

    def get_policy(self) -> NetworkPolicy:
        return self.policy

    def get_capabilities(self, requester: str, **filters) -> List[Capability]:
        return self.capabilities.query(requester, **filters)

    def lookup_pid(self, ip: str) -> Tuple[str, int]:
        """IP -> (PID, AS); requires a provisioned PID map."""
        if self.pid_map is None:
            raise RuntimeError("iTracker has no PID map provisioned")
        return self.pid_map.lookup(ip)

    # -- dynamic updates ----------------------------------------------------------

    def observe_loads(
        self, loads: Mapping[LinkKey, float], now: Optional[float] = None
    ) -> bool:
        """Feed measured P4P link loads; update prices if the period elapsed.

        Args:
            loads: Per-link P4P-controlled traffic in Mbps.
            now: Measurement timestamp; when given, updates are rate-limited
                to one per ``update_period``.  ``None`` forces an update.

        Returns:
            True when prices were updated.
        """
        if self.config.mode is not PriceMode.DYNAMIC:
            return False
        if now is not None:
            if now - self._last_update_time < self.config.update_period and self._version > 0:
                return False
            self._last_update_time = now
        telemetry = self.telemetry
        span = (
            telemetry.traces.start(
                "itracker.price_update", topology=self.topology.name
            )
            if telemetry is not None
            else None
        )
        xi = self.objective.supergradient(self.topology, self._link_order, loads)
        self._prices = project_weighted_simplex(
            self._prices + self.config.step_size * xi, self._capacities
        )
        self._version += 1
        self._log_update()
        if telemetry is not None:
            self._record_price_update(telemetry, span, xi, loads)
        logger.debug(
            "price update v%d for %s (%d links loaded)",
            self._version,
            self.topology.name,
            sum(1 for value in loads.values() if value > 0),
        )
        return True

    def _record_price_update(self, telemetry, span, xi, loads) -> None:
        """Set the ``p4p_core_*`` gauges and finish the update span."""
        norm = float(np.linalg.norm(xi))
        max_utilization = 0.0
        for key, capacity in zip(self._link_order, self._capacities):
            if capacity > 0:
                max_utilization = max(
                    max_utilization, float(loads.get(key, 0.0)) / float(capacity)
                )
        registry = telemetry.registry
        registry.counter(
            "p4p_core_price_updates_total", "Dynamic price updates applied."
        ).inc()
        registry.gauge(
            "p4p_core_price_version", "Current price-state version counter."
        ).set(self._version)
        registry.gauge(
            "p4p_core_supergradient_norm",
            "L2 norm of the last super-gradient step.",
        ).set(norm)
        registry.gauge(
            "p4p_core_max_link_utilization",
            "Max load/capacity over links at the last update.",
        ).set(max_utilization)
        if span is not None:
            span.set(
                version=self._version,
                supergradient_norm=norm,
                max_link_utilization=max_utilization,
                links_loaded=sum(1 for value in loads.values() if value > 0),
            )
            telemetry.traces.finish(span)

    def refresh_topology(self) -> None:
        """Re-derive routing and price state after a topology change.

        Operators add/remove links for maintenance and failures; the portal
        must re-route and re-dimension its price simplex.  Dynamic prices
        restart from the projected previous vector where links survive.
        """
        self.routing = RoutingTable.build(self.topology)
        old_prices = dict(zip(self._link_order, self._prices))
        self._link_order = tuple(self.topology.links)
        self._capacities = np.array(
            [effective_capacity(self.topology.links[key]) for key in self._link_order]
        )
        if self.config.mode is PriceMode.DYNAMIC:
            carried = np.array(
                [old_prices.get(key, 0.0) for key in self._link_order]
            )
            self._prices = project_weighted_simplex(carried, self._capacities)
        else:
            self._prices = self._initial_prices()
        self._version += 1
        self._log_update()

    def warm_start(self, iterations: int = 30) -> None:
        """Pre-converge dynamic prices against background traffic only.

        The paper's Internet experiments note that "the p-distances before
        the arrivals reflect pre-arrival network MLU": before any P4P load
        exists, the super-gradient sees only ``b_e``, driving price mass
        onto the already-utilized links.  No-op in static modes.
        """
        if self.config.mode is not PriceMode.DYNAMIC:
            return
        if iterations < 0:
            raise ValueError("iterations must be >= 0")
        for _ in range(iterations):
            xi = self.objective.supergradient(self.topology, self._link_order, {})
            self._prices = project_weighted_simplex(
                self._prices + self.config.step_size * xi, self._capacities
            )
        self._version += 1
        self._log_update()

    # -- crash safety & replication ------------------------------------------------

    def _update_record(self) -> Dict[str, Any]:
        """One self-contained price-state record (WAL line / delta entry)."""
        return {
            "epoch": self._epoch,
            "version": self._version,
            "time": self._last_update_time,
            "prices": [
                [src, dst, float(value)]
                for (src, dst), value in zip(self._link_order, self._prices)
            ],
        }

    def _log_update(self) -> None:
        """Record the current state in the delta log and, if attached, the WAL."""
        record = self._update_record()
        self._update_log.append(record)
        if self.state_store is not None:
            self.state_store.append_wal(record)

    def checkpoint(self) -> None:
        """Write a full snapshot (prices, version, epoch, charging
        histories) to the attached store and reset the WAL."""
        if self.state_store is None:
            raise RuntimeError("iTracker has no state store attached")
        self.state_store.save_snapshot(
            {
                "format": 1,
                "topology": self.topology.name,
                "epoch": self._epoch,
                "version": self._version,
                "last_update_time": self._last_update_time,
                "prices": [
                    [src, dst, float(value)]
                    for (src, dst), value in zip(self._link_order, self._prices)
                ],
                "volume_history": [
                    [src, dst, list(values)]
                    for (src, dst), values in self._volume_history.items()
                ],
                "background_history": [
                    [src, dst, list(values)]
                    for (src, dst), values in self._background_history.items()
                ],
            }
        )

    def restore(self) -> bool:
        """Resume from the attached store's snapshot + WAL, if any.

        Returns False (leaving the fresh state untouched) when the store
        is empty.  On success the price vector is the last persisted
        iterate -- the projected super-gradient *continues* instead of
        re-converging from uniform -- the charging histories come back
        from the snapshot, and both ``version`` and ``epoch`` come back
        strictly higher than any persisted value, so caches and replicas
        see the restart as an update, never a reset.  The restored state
        is immediately re-checkpointed: a crash right after recovery
        still recovers to the same place.
        """
        if self.state_store is None:
            raise RuntimeError("iTracker has no state store attached")
        recovered = self.state_store.load()
        if recovered.empty:
            return False
        snapshot = recovered.snapshot or {}
        name = snapshot.get("topology")
        if name is not None and name != self.topology.name:
            raise ValueError(
                f"state store holds topology {name!r}, not {self.topology.name!r}"
            )
        epoch = int(snapshot.get("epoch", 0))
        version = int(snapshot.get("version", 0))
        last_time = float(snapshot.get("last_update_time", 0.0))
        prices = snapshot.get("prices")
        tail = recovered.latest_record
        if tail is not None:
            epoch = max(epoch, int(tail.get("epoch", 0)))
            version = max(version, int(tail.get("version", 0)))
            last_time = float(tail.get("time", last_time))
            prices = tail.get("prices", prices)
        if prices is not None:
            self._set_prices([(src, dst, value) for src, dst, value in prices])
        self._volume_history = {
            (src, dst): [float(v) for v in values]
            for src, dst, values in snapshot.get("volume_history", [])
        }
        self._background_history = {
            (src, dst): [float(v) for v in values]
            for src, dst, values in snapshot.get("background_history", [])
        }
        # Strictly-higher identity: the restart is an epoch boundary.
        self._epoch = epoch + 1
        self._version = version + 1
        self._last_update_time = last_time
        self._update_log.clear()
        self._update_log.append(self._update_record())
        self.checkpoint()
        logger.info(
            "restored %s from %s: epoch %d, version %d (%d WAL record(s), %d torn)",
            self.topology.name,
            self.state_store.directory,
            self._epoch,
            self._version,
            len(recovered.records),
            recovered.truncated_records,
        )
        return True

    def _set_prices(self, entries: Sequence[Tuple[str, str, float]]) -> None:
        """Install a persisted/replicated price vector.

        When the link set matches exactly the vector is installed
        verbatim (bit-identical resume); otherwise surviving links carry
        their price and the result is re-projected, mirroring
        :meth:`refresh_topology`.
        """
        table = {(src, dst): float(value) for src, dst, value in entries}
        if set(table) == set(self._link_order):
            self._prices = np.array([table[key] for key in self._link_order])
        else:
            carried = np.array([table.get(key, 0.0) for key in self._link_order])
            self._prices = project_weighted_simplex(carried, self._capacities)

    def state_delta(self, since: int = -1) -> Dict[str, Any]:
        """Price-state records newer than version ``since`` (the
        ``get_state_delta`` portal method's payload).

        Records are self-contained full vectors, so a follower that
        misses intermediate records (the in-memory tail is bounded) still
        converges by applying the newest one.  ``complete`` is False when
        the tail no longer reaches back to ``since`` + 1 -- harmless for
        price state, but a signal that charging histories need a fresh
        snapshot transfer out of band.
        """
        records = [
            record for record in self._update_log if int(record["version"]) > since
        ]
        oldest = int(self._update_log[0]["version"]) if self._update_log else 0
        return {
            "epoch": self._epoch,
            "version": self._version,
            "records": records,
            "complete": since >= oldest - 1 or not records,
        }

    def apply_state_delta(self, delta: Mapping[str, Any]) -> bool:
        """Follower side of replication: install the newest delta record.

        Returns True when state advanced.  Regressions (a delta whose
        ``(epoch, version)`` is not ahead) are ignored, so a standby can
        never be rolled back by a lagging or amnesiac primary.
        """
        records = list(delta.get("records", []))
        if not records:
            return False
        tail = records[-1]
        key = (int(tail.get("epoch", delta.get("epoch", 0))), int(tail["version"]))
        if key <= (self._epoch, self._version) and (self._epoch, self._version) != (0, 0):
            return False
        self._set_prices([(src, dst, value) for src, dst, value in tail["prices"]])
        self._epoch, self._version = key
        self._last_update_time = float(tail.get("time", self._last_update_time))
        self._update_log.append(self._update_record())
        return True

    # -- interdomain multihoming (Sec. 6.1) -----------------------------------------

    def record_interval_volumes(
        self,
        total: Mapping[LinkKey, float],
        background: Mapping[LinkKey, float],
    ) -> None:
        """Append one 5-minute volume sample per charged link."""
        for key in total:
            if key not in self.topology.links:
                raise KeyError(f"unknown link {key}")
            self._volume_history.setdefault(key, []).append(float(total[key]))
            self._background_history.setdefault(key, []).append(
                float(background.get(key, 0.0))
            )

    def update_virtual_capacities(
        self,
        charging_predictor: Optional[ChargingVolumePredictor] = None,
        background_predictor: Optional[BackgroundPredictor] = None,
        interval_seconds: float = 300.0,
    ) -> Dict[LinkKey, float]:
        """Re-estimate ``v_e`` for every charged link from recorded history.

        Histories are per-interval volumes (Mbit); the estimate is converted
        to a rate (Mbps) by ``interval_seconds``, written onto the links (so
        the effective capacities used by the objective change) and returned.
        """
        charging = charging_predictor or ChargingVolumePredictor(
            q=self.config.charging_quantile
        )
        estimates: Dict[LinkKey, float] = {}
        for link in self.topology.interdomain_links:
            history = self._volume_history.get(link.key)
            if not history or len(history) < 2:
                continue
            interval = len(history)
            v_e_volume = estimate_virtual_capacity(
                history,
                self._background_history[link.key],
                interval,
                charging_predictor=charging,
                background_predictor=background_predictor,
            )
            v_e = v_e_volume / interval_seconds
            link.virtual_capacity = v_e
            estimates[link.key] = v_e
        if estimates:
            self._capacities = np.array(
                [
                    effective_capacity(self.topology.links[key])
                    for key in self._link_order
                ]
            )
            self._prices = project_weighted_simplex(self._prices, self._capacities)
            logger.info(
                "virtual capacities updated for %d charged links of %s",
                len(estimates),
                self.topology.name,
            )
        return estimates
