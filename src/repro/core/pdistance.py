"""The p4p-distance interface: internal and external views, PID mapping.

The interface has two views (Sec. 4):

* the **internal view**, seen only by the iTracker: the PID-level topology
  with a price ``p_e`` on every link;
* the **external view**, seen by applications: a full mesh of p-distances
  ``p_ij`` between externally visible PIDs, where
  ``p_ij = sum(p_e for e on route(i, j))`` (plus any per-link cost offset
  such as the distance ``d_e`` under the bandwidth-distance-product
  objective).

The module also provides the IP -> PID mapping clients use on start-up, the
optional privacy perturbation, and the coarse "ranks" degradation of the
interface discussed in the ISP use cases.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.network.routing import RoutingTable
from repro.network.topology import Topology

LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class PDistanceMap:
    """The external view: p-distances over ordered pairs of visible PIDs.

    Distances are non-negative; ``p_ii`` (intra-PID) defaults to 0 unless the
    provider deliberately raises it (e.g. the UK DSL example of Sec. 8 where
    local transfers are *more* expensive than transit).
    """

    pids: Tuple[str, ...]
    distances: Mapping[Tuple[str, str], float]

    def __post_init__(self) -> None:
        pid_set = set(self.pids)
        for (src, dst), value in self.distances.items():
            if src not in pid_set or dst not in pid_set:
                raise ValueError(f"distance for unknown pair ({src}, {dst})")
            if value < 0:
                raise ValueError(f"negative p-distance for ({src}, {dst})")

    def distance(self, src: str, dst: str) -> float:
        """``p_ij``; intra-PID distance defaults to 0 when unset."""
        if src == dst:
            return self.distances.get((src, dst), 0.0)
        return self.distances[(src, dst)]

    def row(self, src: str) -> Dict[str, float]:
        """Distances from ``src`` to every other visible PID."""
        return {
            dst: self.distance(src, dst) for dst in self.pids if dst != src
        }

    def to_ranks(self) -> "PDistanceMap":
        """Degrade to the 'coarsest level' of Sec. 4: per-source ranks.

        For every source PID the destinations are ranked by increasing
        p-distance: most preferred gets 1, next 2, and so on.  Equal
        distances share a rank (competition ranking).
        """
        ranked: Dict[Tuple[str, str], float] = {}
        for src in self.pids:
            row = sorted(self.row(src).items(), key=lambda item: item[1])
            rank = 0
            previous: Optional[float] = None
            for position, (dst, value) in enumerate(row, start=1):
                if previous is None or value > previous + 1e-12:
                    rank = position
                    previous = value
                ranked[(src, dst)] = float(rank)
        return PDistanceMap(pids=self.pids, distances=ranked)

    def perturbed(self, relative_noise: float, seed: int = 0) -> "PDistanceMap":
        """Privacy perturbation: multiplicative uniform noise per pair.

        An iTracker "may perturb the distances to enhance privacy"; noise is
        bounded so preference ordering is mostly preserved for distances that
        differ by more than ``2 * relative_noise``.
        """
        if not 0.0 <= relative_noise < 1.0:
            raise ValueError("relative_noise must be in [0, 1)")
        rng = random.Random(seed)
        noisy = {
            pair: value * (1.0 + rng.uniform(-relative_noise, relative_noise))
            for pair, value in self.distances.items()
        }
        return PDistanceMap(pids=self.pids, distances=noisy)

    def restricted_to(self, pids: Sequence[str]) -> "PDistanceMap":
        """Sub-map over a subset of PIDs (an application's swarm footprint)."""
        keep = [pid for pid in self.pids if pid in set(pids)]
        sub = {
            pair: value
            for pair, value in self.distances.items()
            if pair[0] in set(keep) and pair[1] in set(keep)
        }
        return PDistanceMap(pids=tuple(keep), distances=sub)


def external_view(
    topology: Topology,
    routing: RoutingTable,
    link_prices: Mapping[LinkKey, float],
    cost_offsets: Optional[Mapping[LinkKey, float]] = None,
    intra_pid_distance: float = 0.0,
) -> PDistanceMap:
    """Aggregate per-link prices into the full-mesh external view.

    Args:
        topology: The internal view.
        routing: Routing table for the topology snapshot.
        link_prices: ``p_e`` per link key; missing links price 0.
        cost_offsets: Optional additive per-link costs (e.g. ``d_e`` for the
            BDP objective, yielding ``p_e + d_e`` per eq. 15).
        intra_pid_distance: ``p_ii`` reported for every visible PID.
    """
    offsets = cost_offsets or {}
    pids = tuple(topology.aggregation_pids)
    distances: Dict[Tuple[str, str], float] = {}
    for src in pids:
        distances[(src, src)] = intra_pid_distance
        for dst in pids:
            if src == dst:
                continue
            total = 0.0
            for key in routing.route(src, dst):
                total += link_prices.get(key, 0.0) + offsets.get(key, 0.0)
            distances[(src, dst)] = total
    return PDistanceMap(pids=pids, distances=distances)


@dataclass
class PidMap:
    """IP address -> PID mapping, longest-prefix-match over CIDR blocks.

    A client queries the network to map its IP address to its PID and AS
    number when it first obtains the address (Sec. 4).
    """

    _prefixes: List[Tuple[ipaddress.IPv4Network, str, int]] = field(default_factory=list)
    _sorted: bool = False

    def add_prefix(self, cidr: str, pid: str, as_number: int = 0) -> None:
        network = ipaddress.ip_network(cidr, strict=True)
        self._prefixes.append((network, pid, as_number))
        self._sorted = False

    def lookup(self, ip: str) -> Tuple[str, int]:
        """Return (PID, AS) for an address; raise ``KeyError`` if unmapped."""
        address = ipaddress.ip_address(ip)
        if not self._sorted:
            self._prefixes.sort(key=lambda entry: entry[0].prefixlen, reverse=True)
            self._sorted = True
        for network, pid, as_number in self._prefixes:
            if address in network:
                return pid, as_number
        raise KeyError(f"no PID mapping for {ip}")

    def __len__(self) -> int:
        return len(self._prefixes)


def uniform_pid_map(
    topology: Topology, base_prefix: str = "10.0.0.0/8", as_number: Optional[int] = None
) -> PidMap:
    """Carve one /16 per aggregation PID out of ``base_prefix``.

    A convenient synthetic provisioning scheme for simulations: PID ``k``
    owns the ``k``-th /16 subnet.
    """
    base = ipaddress.ip_network(base_prefix)
    subnets = base.subnets(new_prefix=16)
    mapping = PidMap()
    for pid, subnet in zip(topology.aggregation_pids, subnets):
        node_as = as_number if as_number is not None else topology.node(pid).as_number
        mapping.add_prefix(str(subnet), pid, node_as)
    if len(mapping) < len(topology.aggregation_pids):
        raise ValueError("base_prefix too small for the PID count")
    return mapping
