"""The P4P optimization-decomposition loop (Sec. 5, Fig. 5).

The iTracker and the application sessions interact through p-distances only:

1. the iTracker publishes per-link prices ``{p_e}`` aggregated into pair
   distances ``{p_ij}``;
2. each session computes its best response ``t-bar^k`` -- the cheapest
   acceptable traffic pattern under those distances (eq. 5 style local
   optimization);
3. sessions move their *actual* traffic a damped step toward the best
   response: ``t^k(tau+1) = t^k(tau) + theta * (t-bar^k(tau) - t^k(tau))``;
4. the iTracker measures per-link loads, forms the super-gradient
   (Proposition 1) and takes a projected step on the weighted price simplex
   ``{p : sum_e c_e p_e = 1, p >= 0}`` (eq. 14).

Neither side needs the other's internals: the decomposition decouples the
provider objective from application-specific optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.objectives import ProviderObjective, effective_capacity
from repro.core.pdistance import PDistanceMap, external_view
from repro.core.session import (
    SessionDemand,
    TrafficPattern,
    combine_link_loads,
    max_matching_throughput,
    min_cost_traffic,
)
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.optimization.projection import project_weighted_simplex, uniform_price

LinkKey = Tuple[str, str]

#: Best response callback: (session, pdistances) -> traffic pattern.
BestResponse = Callable[[SessionDemand, PDistanceMap], TrafficPattern]


@dataclass
class DecompositionResult:
    """Trajectory and outcome of one decomposition run."""

    objective_history: List[float]
    price_history: List[Dict[LinkKey, float]]
    final_patterns: List[TrafficPattern]
    final_pdistance: PDistanceMap
    link_order: Tuple[LinkKey, ...]

    @property
    def final_objective(self) -> float:
        return self.objective_history[-1]

    @property
    def best_objective(self) -> float:
        """Minimum over the trajectory.

        Early iterates carry less than the full throughput floor (the
        damped patterns are still ramping up), so this can undershoot any
        feasible steady state; prefer :meth:`settled_objective` when
        comparing against the centralized optimum.
        """
        return min(self.objective_history)

    def settled_objective(self, window: int = 5) -> float:
        """Mean objective over the last ``window`` iterations.

        Averages out the vertex oscillation of LP best responses.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        tail = self.objective_history[-window:]
        return sum(tail) / len(tail)

    @property
    def iterations(self) -> int:
        return len(self.objective_history)

    def converged(self, tolerance: float = 1e-3, window: int = 5) -> bool:
        """True when the last ``window`` objective values are within tolerance."""
        if len(self.objective_history) < window:
            return False
        tail = self.objective_history[-window:]
        return max(tail) - min(tail) <= tolerance * max(abs(max(tail)), 1e-12)


@dataclass
class DecompositionLoop:
    """Runnable configuration of the iTracker/application interaction.

    Attributes:
        topology: Provider network (internal view).
        routing: Routing table for the topology.
        objective: Provider objective supplying super-gradients.
        sessions: Application sessions sharing the network.
        step_size: ``mu`` of the projected super-gradient update; the paper
            notes a constant step is used in practice because network and
            applications continuously evolve.
        step_decay: When > 0, both ``mu`` and ``theta`` decay as
            ``1 / (1 + decay * tau)`` -- the diminishing schedule that makes
            the damped iterates average out best-response oscillation.
        damping: ``theta`` -- how far a session moves toward its best
            response each round (1.0 = jump straight there).
        beta: Efficiency factor of the application-side constraint (6).
        best_response: Override of the application-side optimization; the
            default solves the min-cost LP (5)-(7).
    """

    topology: Topology
    routing: RoutingTable
    objective: ProviderObjective
    sessions: Sequence[SessionDemand]
    step_size: float = 0.05
    step_decay: float = 0.0
    damping: float = 1.0
    beta: float = 0.8
    best_response: Optional[BestResponse] = None

    def __post_init__(self) -> None:
        if self.step_size <= 0:
            raise ValueError("step_size must be positive")
        if self.step_decay < 0:
            raise ValueError("step_decay must be >= 0")
        if not 0 < self.damping <= 1:
            raise ValueError("damping must be in (0, 1]")
        self._link_order: Tuple[LinkKey, ...] = tuple(self.topology.links)
        self._capacities = np.array(
            [effective_capacity(self.topology.links[key]) for key in self._link_order]
        )
        self._opts = {
            session.name: max_matching_throughput(session)[0]
            for session in self.sessions
        }

    # -- pieces ---------------------------------------------------------------

    def initial_prices(self) -> np.ndarray:
        return uniform_price(self._capacities)

    def pdistances(self, prices: np.ndarray) -> PDistanceMap:
        link_prices = dict(zip(self._link_order, prices))
        offsets = self.objective.cost_offsets(self.topology)
        return external_view(self.topology, self.routing, link_prices, offsets)

    def respond(self, session: SessionDemand, pdistance: PDistanceMap) -> TrafficPattern:
        if self.best_response is not None:
            return self.best_response(session, pdistance)
        return min_cost_traffic(
            session,
            pdistance.restricted_to(session.pids),
            beta=self.beta,
            opt=self._opts[session.name],
        )

    def price_update(
        self,
        prices: np.ndarray,
        loads: Mapping[LinkKey, float],
        iteration: int = 0,
    ) -> np.ndarray:
        """One projected super-gradient step (eq. 14).

        With ``step_decay`` > 0 the step is ``mu / (1 + decay * tau)`` --
        the diminishing schedule convergence theory asks for; the paper
        notes practice uses a constant step because traffic evolves anyway.
        """
        xi = self.objective.supergradient(self.topology, self._link_order, loads)
        mu = self.step_size / (1.0 + self.step_decay * iteration)
        return project_weighted_simplex(prices + mu * xi, self._capacities)

    # -- the loop ---------------------------------------------------------------

    def run(
        self,
        n_iterations: int = 50,
        initial_prices: Optional[np.ndarray] = None,
    ) -> DecompositionResult:
        """Iterate price update / best response for ``n_iterations`` rounds."""
        if n_iterations <= 0:
            raise ValueError("n_iterations must be positive")
        prices = (
            np.array(initial_prices, dtype=float)
            if initial_prices is not None
            else self.initial_prices()
        )
        patterns: List[TrafficPattern] = [
            TrafficPattern.zero() for _ in self.sessions
        ]
        objective_history: List[float] = []
        price_history: List[Dict[LinkKey, float]] = []
        pdistance = self.pdistances(prices)
        for _ in range(n_iterations):
            responses = [
                self.respond(session, pdistance) for session in self.sessions
            ]
            theta = self.damping / (1.0 + self.step_decay * len(objective_history))
            patterns = [
                current.blend(target, theta)
                for current, target in zip(patterns, responses)
            ]
            loads = combine_link_loads(patterns, self.routing)
            objective_history.append(self.objective.evaluate(self.topology, loads))
            price_history.append(dict(zip(self._link_order, prices)))
            prices = self.price_update(prices, loads, iteration=len(objective_history))
            pdistance = self.pdistances(prices)
        return DecompositionResult(
            objective_history=objective_history,
            price_history=price_history,
            final_patterns=patterns,
            final_pdistance=pdistance,
            link_order=self._link_order,
        )


def optimality_gap(
    loop: DecompositionLoop, result: DecompositionResult
) -> Tuple[float, float]:
    """(achieved, optimal) objective values vs the centralized LP benchmark.

    "Achieved" is the settled (late-iteration average) objective so ramping
    artifacts do not fake super-optimality.
    """
    optimum, _ = loop.objective.centralized_optimum(
        loop.topology, loop.routing, loop.sessions, beta=loop.beta
    )
    return result.settled_objective(), optimum
