"""Crash-safe iTracker state: atomic snapshots plus an append-only WAL.

The paper treats each ISP's iTracker as an always-on control-plane
service (Secs. 3, 6.1); in practice portals crash, and a restart that
forgets its price state re-converges the projected super-gradient from
uniform prices while every appTracker rides a stale view.  This module
gives the iTracker a durable home for its state:

* **Snapshots** -- the full state document (prices, version, epoch,
  charging-volume histories) written to a tempfile in the store
  directory and atomically renamed over the previous snapshot, so a
  crash mid-write never leaves a half-written snapshot behind.  Each
  snapshot carries a CRC-32 of its canonical JSON body.
* **WAL** -- an append-only JSON-lines file of per-iteration price
  updates, one self-contained record per dynamic update (full price
  vector + version), each line CRC-checked.  Recovery replays the WAL
  on top of the snapshot and *truncates torn tails*: a partially
  written or corrupted final line (the signature of a crash mid-append
  or a disk-level scribble) is dropped, not fatal.

Records are self-contained (every WAL line holds the complete price
vector), so recovery needs only the newest intact line; middle-of-file
corruption therefore costs at most history, never correctness.

:class:`~repro.core.itracker.ITracker` wires this up via
``checkpoint()`` / ``restore()``; the replication layer
(:mod:`repro.portal.replication`) reuses the same record shape for
``get_state_delta`` so a standby follows the primary's WAL over the
wire.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

logger = logging.getLogger(__name__)

SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.jsonl"


class StateStoreError(Exception):
    """The store directory is unusable (not a corruption -- those heal)."""


def _canonical(document: Any) -> bytes:
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _crc(document: Any) -> int:
    return zlib.crc32(_canonical(document)) & 0xFFFFFFFF


@dataclass
class RecoveredState:
    """What :meth:`StateStore.load` found on disk.

    ``state`` is the merged view: the snapshot body with every intact WAL
    record of a *higher version* replayed on top (``records``).  A corrupt
    snapshot is treated as absent (recovery continues from the WAL alone,
    since records are self-contained); torn or corrupt WAL tail lines are
    counted in ``truncated_records`` and dropped.
    """

    snapshot: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = field(default_factory=list)
    snapshot_corrupt: bool = False
    truncated_records: int = 0

    @property
    def empty(self) -> bool:
        return self.snapshot is None and not self.records

    @property
    def latest_record(self) -> Optional[Dict[str, Any]]:
        return self.records[-1] if self.records else None


class StateStore:
    """One directory holding one iTracker's snapshot and WAL."""

    def __init__(self, directory: "str | os.PathLike[str]", fsync: bool = False) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StateStoreError(f"cannot create state directory: {exc}") from exc
        self.fsync = fsync

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_FILE

    @property
    def wal_path(self) -> Path:
        return self.directory / WAL_FILE

    # -- snapshots ---------------------------------------------------------

    def save_snapshot(self, state: Dict[str, Any]) -> None:
        """Atomically replace the snapshot, then reset the WAL.

        Write order matters for crash safety: the new snapshot lands via
        tempfile + ``os.replace`` (atomic on POSIX) *before* the WAL is
        truncated, so a crash between the two leaves a snapshot plus a
        WAL whose records are merely redundant (replay skips records at
        or below the snapshot version), never a gap.
        """
        document = {"state": state, "crc": _crc(state)}
        fd, tmp_name = tempfile.mkstemp(
            prefix=SNAPSHOT_FILE + ".", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True, separators=(",", ":"))
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp_name, self.snapshot_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.reset_wal()

    def load_snapshot(self) -> "tuple[Optional[Dict[str, Any]], bool]":
        """(snapshot state, corrupt?) -- ``(None, False)`` when absent."""
        try:
            raw = self.snapshot_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None, False
        except OSError as exc:
            raise StateStoreError(f"cannot read snapshot: {exc}") from exc
        try:
            document = json.loads(raw)
            state = document["state"]
            if _crc(state) != int(document["crc"]):
                raise ValueError("CRC mismatch")
        except (ValueError, KeyError, TypeError) as exc:
            logger.warning("discarding corrupt snapshot %s: %s", self.snapshot_path, exc)
            return None, True
        return state, False

    # -- the WAL -----------------------------------------------------------

    def append_wal(self, record: Dict[str, Any]) -> None:
        """Append one CRC-framed record as a single JSON line."""
        line = json.dumps(
            {"record": record, "crc": _crc(record)},
            sort_keys=True,
            separators=(",", ":"),
        )
        with open(self.wal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def read_wal(self) -> "tuple[List[Dict[str, Any]], int]":
        """(intact records, dropped-line count); tolerant of torn tails.

        Every line is parsed and CRC-verified independently.  Lines that
        fail (truncated JSON, garbage bytes, CRC mismatch) are dropped;
        intact lines *after* a bad one are still honoured, so a scribble
        in the middle costs only that record.
        """
        try:
            raw = self.wal_path.read_text(encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return [], 0
        except OSError as exc:
            raise StateStoreError(f"cannot read WAL: {exc}") from exc
        records: List[Dict[str, Any]] = []
        dropped = 0
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                framed = json.loads(line)
                record = framed["record"]
                if _crc(record) != int(framed["crc"]):
                    raise ValueError("CRC mismatch")
            except (ValueError, KeyError, TypeError):
                dropped += 1
                continue
            records.append(record)
        if dropped:
            logger.warning(
                "WAL %s: dropped %d corrupt/torn line(s)", self.wal_path, dropped
            )
        return records, dropped

    def reset_wal(self) -> None:
        """Truncate the WAL (its records are folded into the snapshot)."""
        with open(self.wal_path, "w", encoding="utf-8"):
            pass

    # -- recovery ----------------------------------------------------------

    def load(self) -> RecoveredState:
        """Merge snapshot + WAL into a :class:`RecoveredState`.

        WAL records at or below the snapshot's ``version`` are skipped
        (they were folded into the snapshot before the WAL reset, or the
        crash happened between snapshot rename and WAL truncation).
        """
        snapshot, corrupt = self.load_snapshot()
        records, dropped = self.read_wal()
        if snapshot is not None:
            floor = int(snapshot.get("version", -1))
            records = [r for r in records if int(r.get("version", -1)) > floor]
        records.sort(key=lambda r: int(r.get("version", -1)))
        return RecoveredState(
            snapshot=snapshot,
            records=records,
            snapshot_corrupt=corrupt,
            truncated_records=dropped,
        )

    def clear(self) -> None:
        """Testing/chaos helper: drop all persisted state."""
        for path in (self.snapshot_path, self.wal_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
