"""Percentile-based interdomain charging and the Sec. 6.1 predictor.

Under the q-percentile charging model a provider records the traffic volume
of every 5-minute interval; at the end of a charging period the volumes are
sorted ascending and the customer is billed on the volume of the
``ceil(q * I)``-th sorted interval (the paper's example: the 8208-th of
8640 intervals for q = 95% over a 30-day month).

The iTracker estimates the virtual capacity ``v_e`` available to
P4P-controlled traffic on a charged link as the difference between the
predicted charging volume and the predicted background volume:

* charging volume: the paper's hybrid window -- the last ``I`` samples
  during the first ``M`` intervals of a period (when the period has too few
  samples of its own), then all samples of the current period;
* background volume: a moving average over a short sliding window (kept
  short so diurnal patterns are not washed out).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

#: Intervals per 30-day charging period at 5-minute granularity.
INTERVALS_PER_PERIOD = 30 * 24 * 60 // 5


def percentile_volume(volumes: Sequence[float], q: float = 0.95) -> float:
    """``qt(v, q)``: the q-th percentile charging volume of a sample vector.

    Sorted ascending, 1-based index ``ceil(q * len(v))`` -- the paper's
    8208-th interval for a full month at q = 0.95.
    """
    if not 0 < q <= 1:
        raise ValueError("q must be in (0, 1]")
    volumes = np.asarray(volumes, dtype=float)
    if volumes.size == 0:
        raise ValueError("cannot take a percentile of no samples")
    ordered = np.sort(volumes)
    index = max(1, math.ceil(q * ordered.size))
    return float(ordered[index - 1])


def charging_volume(volumes: Sequence[float], q: float = 0.95) -> float:
    """The billed volume for one complete charging period."""
    return percentile_volume(volumes, q)


@dataclass
class ChargingVolumePredictor:
    """The paper's hybrid-window charging-volume predictor (Sec. 6.1).

    For interval ``i`` (0-based, global), with period length ``I`` and
    warm-up length ``M``::

        s = (i // I) * I                      # first interval of the period
        if i - s < M:  predict qt(v[i-I : i], q)   # last I samples
        else:          predict qt(v[s : i], q)     # current period only

    A *pure* sliding window (always the last ``I`` samples) over- or
    under-predicts when the previous period's charging volume differed from
    the current one; the hybrid avoids that (the paper validated this on
    Abilene traces).  ``pure_sliding_window=True`` switches to the naive
    variant for the ablation benchmark.
    """

    q: float = 0.95
    period_intervals: int = INTERVALS_PER_PERIOD
    warmup_intervals: int = INTERVALS_PER_PERIOD // 10
    pure_sliding_window: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.q <= 1:
            raise ValueError("q must be in (0, 1]")
        if self.period_intervals <= 0:
            raise ValueError("period_intervals must be positive")
        if not 0 <= self.warmup_intervals <= self.period_intervals:
            raise ValueError("warmup_intervals must be within the period")

    def predict(self, history: Sequence[float], interval: int) -> float:
        """Predicted charging volume for ``interval`` given volumes so far.

        Args:
            history: Volume samples for intervals ``0 .. interval-1``
                (at least ``interval`` entries; extra entries are ignored).
            interval: Global 0-based interval index to predict for.

        Raises:
            ValueError: When no usable samples exist yet.
        """
        if interval <= 0:
            raise ValueError("cannot predict the very first interval")
        if len(history) < interval:
            raise ValueError(
                f"need {interval} history samples, got {len(history)}"
            )
        period = self.period_intervals
        period_start = (interval // period) * period
        into_period = interval - period_start
        if self.pure_sliding_window or into_period < self.warmup_intervals or into_period == 0:
            window_start = max(0, interval - period)
            samples = history[window_start:interval]
        else:
            samples = history[period_start:interval]
        return percentile_volume(samples, self.q)


@dataclass
class BackgroundPredictor:
    """Moving-average predictor of per-interval background volume.

    The window is deliberately small; the paper notes it "cannot be too
    large; otherwise the diurnal traffic patterns may be lost".
    """

    window: int = 6

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")

    def predict(self, history: Sequence[float], interval: int) -> float:
        if interval <= 0:
            raise ValueError("cannot predict the very first interval")
        if len(history) < interval:
            raise ValueError("insufficient history")
        start = max(0, interval - self.window)
        samples = np.asarray(history[start:interval], dtype=float)
        return float(samples.mean())


def estimate_virtual_capacity(
    total_history: Sequence[float],
    background_history: Sequence[float],
    interval: int,
    charging_predictor: Optional[ChargingVolumePredictor] = None,
    background_predictor: Optional[BackgroundPredictor] = None,
) -> float:
    """Estimate ``v_e`` for a charged link at ``interval`` (Sec. 6.1).

    ``v_e = max(0, predicted charging volume - predicted background volume)``
    in volume units per interval; dividing by the interval length yields a
    rate bound for P4P-controlled traffic.
    """
    charging = charging_predictor or ChargingVolumePredictor()
    background = background_predictor or BackgroundPredictor()
    predicted_charge = charging.predict(total_history, interval)
    predicted_background = background.predict(background_history, interval)
    return max(0.0, predicted_charge - predicted_background)
