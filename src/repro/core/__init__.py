"""The paper's contribution: P4P interfaces, objectives, decomposition,
iTracker, charging, and the application-session model."""
