"""The iTracker ``capability`` interface: provider-side helpers.

A provider may advertise on-demand servers, in-network caches, or service
classes that can accelerate content distribution (Sec. 3).  The interface is
subject to access control: a provider may restrict who can see which
capabilities (e.g. only trusted appTrackers, or not for certain content).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


class CapabilityKind(enum.Enum):
    CACHE = "cache"
    ON_DEMAND_SERVER = "on-demand-server"
    SERVICE_CLASS = "service-class"


@dataclass(frozen=True)
class Capability:
    """One advertised capability.

    Attributes:
        kind: What is offered.
        pid: PID hosting the capability.
        capacity_mbps: Serving capacity; 0 means unspecified.
        name: Provider-chosen label (e.g. "gold", "cache-east-2").
    """

    kind: CapabilityKind
    pid: str
    capacity_mbps: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.capacity_mbps < 0:
            raise ValueError("capacity_mbps must be >= 0")


class AccessDeniedError(Exception):
    """Raised when a requester is not entitled to a capability listing."""


@dataclass
class CapabilityRegistry:
    """Capabilities plus the access-control policy guarding them.

    Access model: if ``trusted_requesters`` is empty, the registry is open;
    otherwise only listed requesters may query.  Individual content may be
    excluded via ``blocked_content`` so the provider avoids being involved
    in distributing it.
    """

    capabilities: List[Capability] = field(default_factory=list)
    trusted_requesters: Set[str] = field(default_factory=set)
    blocked_content: Set[str] = field(default_factory=set)

    def add(self, capability: Capability) -> None:
        self.capabilities.append(capability)

    def trust(self, requester: str) -> None:
        self.trusted_requesters.add(requester)

    def block_content(self, content_id: str) -> None:
        self.blocked_content.add(content_id)

    def _check_access(self, requester: str, content_id: Optional[str]) -> None:
        if self.trusted_requesters and requester not in self.trusted_requesters:
            raise AccessDeniedError(f"requester {requester!r} is not trusted")
        if content_id is not None and content_id in self.blocked_content:
            raise AccessDeniedError(f"content {content_id!r} is not served")

    def query(
        self,
        requester: str,
        kind: Optional[CapabilityKind] = None,
        pid: Optional[str] = None,
        content_id: Optional[str] = None,
    ) -> List[Capability]:
        """List capabilities visible to ``requester``, optionally filtered.

        Raises :class:`AccessDeniedError` on policy violation.
        """
        self._check_access(requester, content_id)
        found = self.capabilities
        if kind is not None:
            found = [capability for capability in found if capability.kind is kind]
        if pid is not None:
            found = [capability for capability in found if capability.pid == pid]
        return list(found)

    def to_document(self) -> List[Dict]:
        return [
            {
                "kind": capability.kind.value,
                "pid": capability.pid,
                "capacity_mbps": capability.capacity_mbps,
                "name": capability.name,
            }
            for capability in self.capabilities
        ]
