"""The iTracker ``policy`` interface: static network usage policies.

Two example policies from the paper (Sec. 3):

* coarse-grained time-of-day link usage policy -- the desired usage pattern
  of specific links (e.g. avoid links that are congested during peak times);
* near-congestion and heavy-usage thresholds, as defined in the Comcast
  field test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class TimeOfDayPolicy:
    """Avoid a link during given local-hour windows.

    Attributes:
        link: The governed link.
        avoid_windows: Half-open hour windows ``[start, end)`` (0-24) during
            which applications should avoid the link; windows may wrap
            midnight (``start > end``).
    """

    link: LinkKey
    avoid_windows: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        for start, end in self.avoid_windows:
            if not (0 <= start <= 24 and 0 <= end <= 24):
                raise ValueError("window bounds must be within [0, 24]")

    def should_avoid(self, hour: float) -> bool:
        """Whether the link should be avoided at a local hour of day."""
        hour = hour % 24
        for start, end in self.avoid_windows:
            if start <= end:
                if start <= hour < end:
                    return True
            elif hour >= start or hour < end:
                return True
        return False


@dataclass(frozen=True)
class UsageThresholds:
    """Comcast-style congestion management thresholds.

    Attributes:
        near_congestion: Link utilization above which the link counts as
            near congestion (applications should deprioritize it).
        heavy_usage: Per-client share of capacity above which a client is a
            heavy user subject to management.
    """

    near_congestion: float = 0.7
    heavy_usage: float = 0.1

    def __post_init__(self) -> None:
        if not 0 < self.near_congestion <= 1:
            raise ValueError("near_congestion must be in (0, 1]")
        if not 0 < self.heavy_usage <= 1:
            raise ValueError("heavy_usage must be in (0, 1]")

    def link_state(self, utilization: float) -> str:
        """Classify a link: "normal" or "near-congestion"."""
        return "near-congestion" if utilization >= self.near_congestion else "normal"

    def is_heavy_user(self, client_share: float) -> bool:
        return client_share >= self.heavy_usage


@dataclass
class NetworkPolicy:
    """The full policy document an iTracker serves.

    Aggregated and application-agnostic by design: it names links and
    thresholds, never clients or applications.
    """

    time_of_day: List[TimeOfDayPolicy] = field(default_factory=list)
    thresholds: UsageThresholds = field(default_factory=UsageThresholds)

    def add_time_of_day(self, policy: TimeOfDayPolicy) -> None:
        self.time_of_day.append(policy)

    def links_to_avoid(self, hour: float) -> List[LinkKey]:
        """All links whose time-of-day policy says 'avoid' at this hour."""
        return [
            policy.link for policy in self.time_of_day if policy.should_avoid(hour)
        ]

    def to_document(self) -> Dict:
        """Serializable form for the portal wire protocol."""
        return {
            "time_of_day": [
                {
                    "link": list(policy.link),
                    "avoid_windows": [list(window) for window in policy.avoid_windows],
                }
                for policy in self.time_of_day
            ],
            "thresholds": {
                "near_congestion": self.thresholds.near_congestion,
                "heavy_usage": self.thresholds.heavy_usage,
            },
        }

    @classmethod
    def from_document(cls, document: Dict) -> "NetworkPolicy":
        policies = [
            TimeOfDayPolicy(
                link=tuple(entry["link"]),
                avoid_windows=tuple(tuple(window) for window in entry["avoid_windows"]),
            )
            for entry in document.get("time_of_day", [])
        ]
        thresholds_doc = document.get("thresholds", {})
        thresholds = UsageThresholds(
            near_congestion=thresholds_doc.get("near_congestion", 0.7),
            heavy_usage=thresholds_doc.get("heavy_usage", 0.1),
        )
        return cls(time_of_day=policies, thresholds=thresholds)
