"""Independent neutrality verification of a served p-distance view.

The p4p-distance interface is designed so that applications can verify an
ISP is neutral (Sec. 4): the external view must be explainable as
*aggregated link costs* -- the same non-negative per-link price for every
application, regardless of who asks.  Two checks implement that promise:

* **consistency** -- does there exist a non-negative link-price assignment
  ``{p_e >= 0}`` whose route sums reproduce the served ``p_ij`` (within a
  tolerance covering the provider's declared privacy perturbation)?  If
  not, the view cannot come from any per-link cost model and the provider
  is discriminating at the pair level.
* **equal treatment** -- two views served to different requesters must
  agree (again within the declared perturbation); a provider quoting one
  appTracker systematically higher distances than another is non-neutral.

The consistency check is a small feasibility LP over the link prices,
reusing the same machinery the provider itself would use -- "easy for ISPs
to prove, and independent applications to verify".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.pdistance import PDistanceMap
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.optimization.linprog import InfeasibleError, LinearProgram

LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class NeutralityReport:
    """Outcome of a consistency check.

    Attributes:
        consistent: Whether some non-negative link pricing explains the view.
        max_residual: Worst absolute gap between served and reconstructed
            ``p_ij`` under the best-fitting link prices.
        tolerance: The slack the check allowed per pair.
        link_prices: The reconstructed prices (best fit), when solvable.
        worst_pair: The pair with the largest residual.
    """

    consistent: bool
    max_residual: float
    tolerance: float
    link_prices: Optional[Dict[LinkKey, float]] = None
    worst_pair: Optional[Tuple[str, str]] = None


def verify_link_consistency(
    view: PDistanceMap,
    topology: Topology,
    routing: RoutingTable,
    tolerance: float = 1e-6,
) -> NeutralityReport:
    """Check a served view against the link-cost model.

    Solves ``min r`` over link prices ``p_e >= 0`` and residual bound ``r``
    subject to ``|sum_{e in route(i,j)} p_e - p_ij| <= r`` for every served
    pair; the view is consistent when the optimal ``r`` is within
    ``tolerance``.

    Args:
        view: The external view under audit.
        topology: The audited provider's topology (PIDs must cover the
            view's PIDs; link identities are enough -- prices are unknowns).
        routing: Routing for the topology snapshot.
        tolerance: Allowed per-pair slack, e.g. the provider's declared
            privacy perturbation times the typical distance.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    pairs = [
        (src, dst)
        for src in view.pids
        for dst in view.pids
        if src != dst
    ]
    if not pairs:
        raise ValueError("view has no pairs to verify")
    for pid in view.pids:
        if pid not in topology.nodes:
            raise KeyError(f"view PID {pid!r} not in the audited topology")

    lp = LinearProgram(name="neutrality")
    for key in topology.links:
        lp.add_var(f"p_{key[0]}_{key[1]}")
    lp.add_var("r")
    for src, dst in pairs:
        served = view.distance(src, dst)
        route = routing.route(src, dst)
        coeffs = {f"p_{a}_{b}": 1.0 for a, b in route}
        upper = dict(coeffs)
        upper["r"] = -1.0
        lp.add_le(upper, served)  # sum p_e - r <= served
        lower = {name: -value for name, value in coeffs.items()}
        lower["r"] = -1.0
        lp.add_le(lower, -served)  # -sum p_e - r <= -served
    lp.set_objective({"r": 1.0})
    try:
        solution = lp.solve()
    except InfeasibleError:
        return NeutralityReport(
            consistent=False, max_residual=float("inf"), tolerance=tolerance
        )

    prices = {
        key: max(0.0, solution[f"p_{key[0]}_{key[1]}"]) for key in topology.links
    }
    worst_pair = None
    max_residual = 0.0
    for src, dst in pairs:
        reconstructed = sum(prices[key] for key in routing.route(src, dst))
        residual = abs(reconstructed - view.distance(src, dst))
        if residual > max_residual:
            max_residual = residual
            worst_pair = (src, dst)
    return NeutralityReport(
        consistent=max_residual <= tolerance + 1e-9,
        max_residual=max_residual,
        tolerance=tolerance,
        link_prices=prices,
        worst_pair=worst_pair,
    )


@dataclass(frozen=True)
class EqualTreatmentReport:
    """Comparison of views served to two different requesters."""

    equal: bool
    max_relative_gap: float
    tolerance: float
    worst_pair: Optional[Tuple[str, str]] = None


def verify_equal_treatment(
    view_a: PDistanceMap,
    view_b: PDistanceMap,
    relative_tolerance: float = 0.0,
) -> EqualTreatmentReport:
    """Check that two requesters were served equivalent views.

    ``relative_tolerance`` should be (at least) twice the provider's
    declared perturbation bound; larger systematic gaps indicate the
    provider discriminates by requester.
    """
    if relative_tolerance < 0:
        raise ValueError("relative_tolerance must be >= 0")
    if set(view_a.pids) != set(view_b.pids):
        return EqualTreatmentReport(
            equal=False, max_relative_gap=float("inf"), tolerance=relative_tolerance
        )
    worst_pair = None
    max_gap = 0.0
    for src in view_a.pids:
        for dst in view_a.pids:
            if src == dst:
                continue
            a = view_a.distance(src, dst)
            b = view_b.distance(src, dst)
            scale = max(abs(a), abs(b), 1e-12)
            gap = abs(a - b) / scale
            if gap > max_gap:
                max_gap = gap
                worst_pair = (src, dst)
    return EqualTreatmentReport(
        equal=max_gap <= relative_tolerance + 1e-12,
        max_relative_gap=max_gap,
        tolerance=relative_tolerance,
        worst_pair=worst_pair,
    )
