"""Control-plane monitors: price stability, update liveness, load audit.

The management plane watches the control plane (Sec. 3).  Three monitors
cover the failure modes the paper's discussion raises:

* :class:`PriceStabilityMonitor` -- P2P adapting to the network can cause
  "potential oscillations in traffic patterns" (Sec. 1); oscillating
  prices are the control-plane symptom.  The monitor tracks the recent
  price trajectory and flags sustained oscillation.
* :class:`UpdateLivenessMonitor` -- iTrackers "are not on the critical
  path" (Sec. 8), but a stale portal silently degrades P4P to static
  guidance; the monitor flags missed update periods.
* :class:`LoadAudit` -- compares the loads the iTracker believes it
  observed against an independent measurement feed, bounding how far the
  control plane's view of the network has drifted.
* :class:`ResilienceCounters` -- degradation telemetry from the portal
  resilience layer (:mod:`repro.portal.resilience`): retries, circuit
  breaker trips and probes, stale-view serves, validation rejections, and
  native-selection fallbacks, so operators can see *how* the system is
  degrading while iTrackers stay off the critical path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Tuple

import numpy as np

LinkKey = Tuple[str, str]


@dataclass
class PriceStabilityMonitor:
    """Detect sustained oscillation in a link's price trajectory.

    A price series oscillates when consecutive differences keep flipping
    sign with non-trivial magnitude.  ``window`` samples are kept; the
    series is flagged when more than ``flip_threshold`` of the steps are
    sign flips whose magnitude exceeds ``magnitude`` (relative to the mean
    price level).
    """

    window: int = 12
    flip_threshold: float = 0.6
    magnitude: float = 0.05

    def __post_init__(self) -> None:
        if self.window < 4:
            raise ValueError("window must be >= 4")
        if not 0 < self.flip_threshold <= 1:
            raise ValueError("flip_threshold must be in (0, 1]")
        self._history: Dict[LinkKey, Deque[float]] = {}

    def record(self, prices: Mapping[LinkKey, float]) -> None:
        for key, value in prices.items():
            series = self._history.setdefault(key, deque(maxlen=self.window))
            series.append(float(value))

    def oscillating_links(self) -> List[LinkKey]:
        """Links whose recent trajectory is flagged as oscillating."""
        flagged = []
        for key, series in self._history.items():
            if self._is_oscillating(list(series)):
                flagged.append(key)
        return flagged

    def _is_oscillating(self, series: List[float]) -> bool:
        if len(series) < 4:
            return False
        level = float(np.mean(series))
        if level <= 0:
            return False
        diffs = np.diff(series)
        significant = np.abs(diffs) > self.magnitude * level
        signs = np.sign(diffs)
        flips = 0
        steps = 0
        for i in range(1, len(diffs)):
            if not (significant[i] and significant[i - 1]):
                continue
            steps += 1
            if signs[i] != signs[i - 1]:
                flips += 1
        if steps < 2:
            return False
        return flips / steps >= self.flip_threshold


@dataclass
class UpdateLivenessMonitor:
    """Flag an iTracker whose dynamic updates have stalled."""

    expected_period: float
    grace_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.expected_period <= 0:
            raise ValueError("expected_period must be positive")
        if self.grace_factor < 1:
            raise ValueError("grace_factor must be >= 1")
        self._last_version: Optional[int] = None
        self._last_change_time: Optional[float] = None

    def observe(self, now: float, version: int) -> None:
        if self._last_version is None or version != self._last_version:
            self._last_version = version
            self._last_change_time = now

    def is_stale(self, now: float) -> bool:
        """True when no version change happened within the grace window."""
        if self._last_change_time is None:
            return False
        return now - self._last_change_time > self.expected_period * self.grace_factor


@dataclass
class ResilienceCounters:
    """Counters the portal resilience layer increments as it degrades.

    One instance is typically shared by a
    :class:`~repro.portal.resilience.ResilientPortalClient` (which drives
    ``retries`` .. ``reconnects``) and the selection layer (which drives
    ``native_fallbacks``); :meth:`snapshot` is the management-plane export.

    :class:`repro.observability.RegistryResilienceCounters` is a drop-in
    replacement backed by registry gauges: same attribute protocol, but
    the values also surface through the telemetry exporters and the
    portal's ``get_metrics`` interface.  Prefer it wherever a
    :class:`~repro.observability.MetricsRegistry` is already in play.
    """

    retries: int = 0
    breaker_trips: int = 0
    breaker_probes: int = 0
    stale_serves: int = 0
    validation_rejections: int = 0
    unavailable: int = 0
    reconnects: int = 0
    native_fallbacks: int = 0
    busy_backoffs: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "breaker_trips": self.breaker_trips,
            "breaker_probes": self.breaker_probes,
            "stale_serves": self.stale_serves,
            "validation_rejections": self.validation_rejections,
            "unavailable": self.unavailable,
            "reconnects": self.reconnects,
            "native_fallbacks": self.native_fallbacks,
            "busy_backoffs": self.busy_backoffs,
        }

    def reset(self) -> None:
        for key in self.snapshot():
            setattr(self, key, 0)


@dataclass(frozen=True)
class LoadAuditReport:
    """Drift between the control plane's loads and independent measurement."""

    max_absolute_drift: float
    max_relative_drift: float
    worst_link: Optional[LinkKey]

    def within(self, relative_tolerance: float) -> bool:
        return self.max_relative_drift <= relative_tolerance


def audit_loads(
    believed: Mapping[LinkKey, float],
    measured: Mapping[LinkKey, float],
) -> LoadAuditReport:
    """Compare the iTracker's believed loads to a measurement feed.

    Links present in either mapping are compared (absent = 0 Mbps).
    """
    worst: Optional[LinkKey] = None
    max_abs = 0.0
    max_rel = 0.0
    for key in set(believed) | set(measured):
        a = float(believed.get(key, 0.0))
        b = float(measured.get(key, 0.0))
        drift = abs(a - b)
        rel = drift / max(abs(b), 1e-12) if drift > 0 else 0.0
        if drift > max_abs:
            max_abs = drift
            worst = key
        max_rel = max(max_rel, rel if max(a, b) > 1e-9 else 0.0)
    return LoadAuditReport(
        max_absolute_drift=max_abs, max_relative_drift=max_rel, worst_link=worst
    )
