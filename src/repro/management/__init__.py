"""The P4P management plane (Sec. 3): monitoring the control plane.

The paper's architecture includes a management plane whose objective is
"to monitor the behavior in the control plane"; Sec. 4 additionally
requires that network information "should be in a format that is easy for
ISPs to prove, and independent applications to verify, that the ISPs are
neutral".  This package implements both halves: control-plane monitors
(price stability, update liveness) and the independent neutrality
verifier.
"""
