"""Completion-time metrics: means, CDFs, percentage improvements."""

from __future__ import annotations

from typing import List, Mapping, Tuple

import numpy as np


def mean_completion(times: Mapping[int, float]) -> float:
    """Mean per-peer completion time; 0 for an empty swarm."""
    if not times:
        return 0.0
    return float(np.mean(list(times.values())))


def completion_cdf(times: Mapping[int, float]) -> List[Tuple[float, float]]:
    """Sorted (time, cumulative fraction) pairs, as plotted in Figs. 6/10/12."""
    ordered = sorted(times.values())
    n = len(ordered)
    return [(t, (i + 1) / n) for i, t in enumerate(ordered)]


def percentile_completion(times: Mapping[int, float], q: float) -> float:
    """q-quantile of the completion-time distribution (q in [0, 1])."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if not times:
        raise ValueError("no completion times")
    return float(np.quantile(list(times.values()), q))


def improvement_percent(baseline: float, improved: float) -> float:
    """Percentage by which ``improved`` beats ``baseline``.

    The paper reports "P4P improves average completion time by 23%" as
    ``(baseline - improved) / baseline * 100``.
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - improved) / baseline * 100.0


def excess_percent(value: float, reference: float) -> float:
    """How much higher ``value`` is than ``reference``, in percent.

    The paper's "Native is 68% higher than P4P" form:
    ``(value - reference) / reference * 100``.
    """
    if reference <= 0:
        raise ValueError("reference must be positive")
    return (value - reference) / reference * 100.0
