"""Terminal plotting: render CDFs and timelines without matplotlib.

The evaluation figures are line charts; these helpers draw them as ASCII
so examples and benchmark output remain self-contained in any terminal.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

_MARKS = "*o+x#@"


def ascii_plot(
    series_by_name: Mapping[str, Series],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series on a shared-axis ASCII canvas.

    Each series gets a distinct mark; overlapping points show the later
    series' mark.  Returns the multi-line string (no trailing newline).
    """
    if width < 10 or height < 4:
        raise ValueError("canvas too small")
    named = [(name, list(points)) for name, points in series_by_name.items()]
    named = [(name, points) for name, points in named if points]
    if not named:
        raise ValueError("nothing to plot")

    xs = [x for _, points in named for x, _ in points]
    ys = [y for _, points in named for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(named):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in points:
            column = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][column] = mark

    lines = []
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    lines.append(
        " " * gutter
        + f" {x_min:.3g}".ljust(width // 2)
        + f"{x_max:.3g}".rjust(width // 2)
    )
    legend = "   ".join(
        f"{_MARKS[index % len(_MARKS)]} {name}" for index, (name, _) in enumerate(named)
    )
    lines.append(" " * gutter + f" [{x_label} vs {y_label}]  {legend}")
    return "\n".join(lines)


def ascii_cdf(
    cdfs_by_name: Mapping[str, Series], width: int = 60, height: int = 14
) -> str:
    """Render completion-time CDFs (Figs. 6a/10a/12b style)."""
    return ascii_plot(
        cdfs_by_name, width=width, height=height,
        x_label="completion time", y_label="cumulative fraction",
    )


def ascii_bars(values_by_name: Mapping[str, float], width: int = 48) -> str:
    """Horizontal bars (Figs. 6b/9/12a style)."""
    if not values_by_name:
        raise ValueError("nothing to plot")
    peak = max(values_by_name.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(name) for name in values_by_name)
    lines = []
    for name, value in values_by_name.items():
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{name.rjust(label_width)} |{bar} {value:.1f}")
    return "\n".join(lines)
