"""Charging-volume metrics for the interdomain experiments (Fig. 10b)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.charging import percentile_volume

LinkKey = Tuple[str, str]


def volumes_per_interval(
    cumulative_mbit: Sequence[Tuple[float, float]], interval_seconds: float
) -> List[float]:
    """Convert a cumulative (time, Mbit) series to per-interval volumes.

    Samples are binned into consecutive intervals of ``interval_seconds``;
    the volume of an interval is the cumulative growth across it.  Missing
    trailing samples produce no interval.
    """
    if interval_seconds <= 0:
        raise ValueError("interval_seconds must be positive")
    if not cumulative_mbit:
        return []
    volumes: List[float] = []
    boundary = interval_seconds
    last_boundary_value = 0.0
    previous: Tuple[float, float] = (0.0, 0.0)
    for time, value in cumulative_mbit:
        prev_time, prev_value = previous
        while time >= boundary:
            if time > prev_time:
                fraction = (boundary - prev_time) / (time - prev_time)
            else:
                fraction = 1.0
            boundary_value = prev_value + fraction * (value - prev_value)
            volumes.append(max(0.0, boundary_value - last_boundary_value))
            last_boundary_value = boundary_value
            boundary += interval_seconds
            prev_time, prev_value = boundary - interval_seconds, boundary_value
        previous = (time, value)
    return volumes


def charging_volumes_from_samples(
    link_series: Mapping[LinkKey, Sequence[Tuple[float, float]]],
    interval_seconds: float = 300.0,
    q: float = 0.95,
) -> Dict[LinkKey, float]:
    """Per-link q-percentile charging volume from cumulative traffic series.

    This is how Fig. 10b's charging volumes are computed: each interdomain
    link's cumulative P2P traffic is diced into 5-minute volumes and the
    95th-percentile volume is the bill.
    """
    result: Dict[LinkKey, float] = {}
    for key, series in link_series.items():
        volumes = volumes_per_interval(series, interval_seconds)
        if volumes:
            result[key] = percentile_volume(volumes, q)
        else:
            result[key] = 0.0
    return result
