"""Unit bandwidth-distance product (Sec. 7.1, Fig. 12a).

Unit BDP is "the average number of backbone links that a unit of P2P
traffic traverses in an ISP's network": total backbone link-Mbit divided by
total payload Mbit delivered.  ``weighted_unit_bdp`` generalizes to the
distance-weighted version (link miles instead of link count).
"""

from __future__ import annotations

from typing import Mapping, Tuple

from repro.network.topology import Topology

LinkKey = Tuple[str, str]


def unit_bdp(
    link_traffic_mbit: Mapping[LinkKey, float], payload_mbit: float
) -> float:
    """Backbone link-hops traversed per unit of delivered payload."""
    if payload_mbit <= 0:
        raise ValueError("payload must be positive")
    total = sum(link_traffic_mbit.values())
    if total < 0:
        raise ValueError("negative link traffic")
    return total / payload_mbit


def weighted_unit_bdp(
    link_traffic_mbit: Mapping[LinkKey, float],
    payload_mbit: float,
    topology: Topology,
) -> float:
    """Distance-weighted unit BDP (e.g. miles per delivered Mbit)."""
    if payload_mbit <= 0:
        raise ValueError("payload must be positive")
    total = 0.0
    for key, mbit in link_traffic_mbit.items():
        total += mbit * topology.links[key].distance
    return total / payload_mbit


def mean_pid_pair_hops(routing, pids=None) -> float:
    """Average backbone hop count over ordered PID pairs.

    The paper quotes this as context for Fig. 12a ("the average number of
    backbone links between two PIDs in ISP-B is 6.2").
    """
    if pids is None:
        pids = routing.topology.aggregation_pids
    hops = [
        routing.hop_count(a, b) for a in pids for b in pids if a != b
    ]
    if not hops:
        raise ValueError("need at least two PIDs")
    return sum(hops) / len(hops)
