"""Traffic localization accounting (field tests: Tables 2 and 3).

The field-test analysis classifies every transferred byte by where its two
endpoints sit: external<->external, external->ISP, ISP->external, and
within the ISP by metro area (same-metro vs cross-metro).  The
:class:`TrafficLedger` accumulates those categories as the simulation
reports transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping


@dataclass
class TrafficLedger:
    """Byte accounting by endpoint category for one ISP.

    Attributes:
        isp_as: The AS number of the ISP under study (ISP-B in the paper).
        metro_of: PID -> metro label for intra-ISP classification.
    """

    isp_as: int
    metro_of: Mapping[str, str]
    external_external: float = 0.0
    external_to_isp: float = 0.0
    isp_to_external: float = 0.0
    intra_same_metro: float = 0.0
    intra_cross_metro: float = 0.0

    def record(
        self,
        src_pid: str,
        src_as: int,
        dst_pid: str,
        dst_as: int,
        mbit: float,
    ) -> None:
        """Account one transfer of ``mbit`` from src to dst."""
        if mbit < 0:
            raise ValueError("traffic cannot be negative")
        src_in = src_as == self.isp_as
        dst_in = dst_as == self.isp_as
        if not src_in and not dst_in:
            self.external_external += mbit
        elif not src_in and dst_in:
            self.external_to_isp += mbit
        elif src_in and not dst_in:
            self.isp_to_external += mbit
        else:
            if self.metro_of.get(src_pid) == self.metro_of.get(dst_pid):
                self.intra_same_metro += mbit
            else:
                self.intra_cross_metro += mbit

    @property
    def intra_total(self) -> float:
        """Total ISP-internal traffic (Table 3's "Total Traffic" row)."""
        return self.intra_same_metro + self.intra_cross_metro

    @property
    def total(self) -> float:
        return (
            self.external_external
            + self.external_to_isp
            + self.isp_to_external
            + self.intra_total
        )

    def localization_percent(self) -> float:
        """Same-metro share of internal traffic (Table 3's "% of
        Localization": 6.27% native vs 57.98% P4P)."""
        if self.intra_total <= 0:
            return 0.0
        return self.intra_same_metro / self.intra_total * 100.0

    def as_table(self) -> Dict[str, float]:
        """Table 2 rows for this ledger."""
        return {
            "External <-> External": self.external_external,
            "External -> ISP": self.external_to_isp,
            "ISP -> External": self.isp_to_external,
            "ISP <-> ISP": self.intra_total,
            "Total": self.total,
        }


def localization_ratio(native: TrafficLedger, p4p: TrafficLedger) -> Dict[str, float]:
    """Native : P4P ratios for each Table 2 row (``inf`` when P4P is 0)."""
    ratios: Dict[str, float] = {}
    native_table = native.as_table()
    p4p_table = p4p.as_table()
    for row, native_value in native_table.items():
        p4p_value = p4p_table[row]
        ratios[row] = native_value / p4p_value if p4p_value > 0 else float("inf")
    return ratios
