"""Bottleneck-link metrics: P2P traffic on the most utilized link and
link-utilization timelines (Figs. 6b, 7b, 8b)."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from repro.network.topology import Topology

LinkKey = Tuple[str, str]


def most_utilized_link(
    topology: Topology, link_traffic_mbit: Mapping[LinkKey, float]
) -> LinkKey:
    """The link carrying the most P4P traffic relative to its capacity."""
    if not link_traffic_mbit:
        raise ValueError("no link traffic recorded")
    return max(
        link_traffic_mbit,
        key=lambda key: link_traffic_mbit[key] / topology.links[key].capacity,
    )


def bottleneck_traffic(
    topology: Topology,
    link_traffic_mbit: Mapping[LinkKey, float],
    link: Optional[LinkKey] = None,
) -> float:
    """Total P2P Mbit on the most utilized (or a given) link.

    This is the paper's "P2P traffic on top of the most utilized link"
    metric, used when the controllable traffic is small relative to link
    capacity.
    """
    chosen = link if link is not None else most_utilized_link(topology, link_traffic_mbit)
    return float(link_traffic_mbit.get(chosen, 0.0))


def utilization_timeline(
    samples: Sequence, link: Optional[LinkKey] = None
) -> List[Tuple[float, float]]:
    """(time, utilization) series from swarm samples.

    With ``link`` given, tracks that link; otherwise tracks the per-sample
    maximum over all backbone links (the bottleneck-link utilization curves
    of Figs. 7b and 8b).
    """
    series: List[Tuple[float, float]] = []
    for sample in samples:
        if link is not None:
            value = sample.link_utilization.get(link, 0.0)
        else:
            value = sample.max_utilization
        series.append((sample.time, value))
    return series


def peak_utilization(samples: Sequence, link: Optional[LinkKey] = None) -> float:
    """Maximum of a utilization timeline (0 when no samples)."""
    series = utilization_timeline(samples, link)
    return max((value for _, value in series), default=0.0)


def high_load_duration(
    samples: Sequence, threshold: float, link: Optional[LinkKey] = None
) -> float:
    """Total sampled time the (bottleneck) utilization exceeds ``threshold``.

    Approximated as sample spacing times the count of samples above the
    threshold -- the "duration of high traffic load" the paper reports P4P
    cutting roughly in half.
    """
    series = utilization_timeline(samples, link)
    if len(series) < 2:
        return 0.0
    spacing = series[1][0] - series[0][0]
    return spacing * sum(1 for _, value in series if value > threshold)
