"""Evaluation metrics (Sec. 7.1): completion time, unit BDP, bottleneck
traffic, charging volume, and localization ratios."""

from repro.metrics.bdp import mean_pid_pair_hops, unit_bdp, weighted_unit_bdp
from repro.metrics.bottleneck import (
    bottleneck_traffic,
    high_load_duration,
    most_utilized_link,
    peak_utilization,
    utilization_timeline,
)
from repro.metrics.charging import charging_volumes_from_samples, volumes_per_interval
from repro.metrics.completion import (
    completion_cdf,
    excess_percent,
    improvement_percent,
    mean_completion,
    percentile_completion,
)
from repro.metrics.localization import TrafficLedger, localization_ratio

__all__ = [
    "mean_pid_pair_hops",
    "unit_bdp",
    "weighted_unit_bdp",
    "bottleneck_traffic",
    "high_load_duration",
    "most_utilized_link",
    "peak_utilization",
    "utilization_timeline",
    "charging_volumes_from_samples",
    "volumes_per_interval",
    "completion_cdf",
    "excess_percent",
    "improvement_percent",
    "mean_completion",
    "percentile_completion",
    "TrafficLedger",
    "localization_ratio",
]
