"""Exact projection onto the weighted simplex used by the p-distance update.

The projected super-gradient update (eq. 14 in the paper) projects the
candidate price vector onto::

    S = { p : sum_e c_e * p_e = 1,  p_e >= 0 }

The Euclidean projection of ``q`` onto ``S`` has the KKT form
``p_e = max(0, q_e - lam * c_e)`` where ``lam`` solves
``sum_e c_e * max(0, q_e - lam * c_e) = 1``.  That equation is piecewise
linear and decreasing in ``lam``, so we solve it exactly by sorting the
breakpoints ``q_e / c_e`` -- an O(n log n) algorithm with no iteration
tolerance.
"""

from __future__ import annotations

import numpy as np


def project_weighted_simplex(q: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Euclidean projection of ``q`` onto ``{p >= 0 : c . p = 1}``.

    Args:
        q: Point to project, shape (n,).
        c: Positive weights (link capacities), shape (n,).

    Returns:
        The projected vector ``p`` with ``p >= 0`` and ``c @ p == 1`` (to
        floating-point accuracy).

    Raises:
        ValueError: On shape mismatch or non-positive weights.
    """
    q = np.asarray(q, dtype=float)
    c = np.asarray(c, dtype=float)
    if q.shape != c.shape or q.ndim != 1:
        raise ValueError("q and c must be 1-D arrays of the same shape")
    if q.size == 0:
        raise ValueError("cannot project an empty vector")
    if np.any(c <= 0):
        raise ValueError("weights must be strictly positive")

    # Breakpoints where coordinates leave the active set, descending.
    ratios = q / c
    order = np.argsort(ratios)[::-1]
    cq = (c * q)[order]
    cc = (c * c)[order]
    cum_cq = np.cumsum(cq)
    cum_cc = np.cumsum(cc)
    sorted_ratios = ratios[order]

    # With the k+1 largest-ratio coordinates active,
    # g(lam) = cum_cq[k] - lam * cum_cc[k]; solve g(lam) = 1.
    lam_candidates = (cum_cq - 1.0) / cum_cc
    n = q.size
    lam = lam_candidates[-1]
    for k in range(n):
        lower = sorted_ratios[k + 1] if k + 1 < n else -np.inf
        if lower <= lam_candidates[k] <= sorted_ratios[k] + 1e-12:
            lam = lam_candidates[k]
            break
    p = np.maximum(0.0, q - lam * c)
    # One exact rescale guards against accumulated round-off.
    total = float(c @ p)
    if total > 0:
        p /= total
    return p


def uniform_price(c: np.ndarray) -> np.ndarray:
    """The uniform feasible point of ``S``: ``p_e = 1 / sum(c)``.

    A natural initialization for the super-gradient loop.
    """
    c = np.asarray(c, dtype=float)
    if np.any(c <= 0):
        raise ValueError("weights must be strictly positive")
    return np.full(c.shape, 1.0 / float(c.sum()))
