"""Max-min fair rate allocation via progressive filling.

The simulator models TCP at the session level, following the methodology of
the paper (Sec. 7.1): concurrent transfers share link capacity according to
max-min fairness, recomputed whenever a flow arrives or departs.

Progressive filling: raise all rates uniformly until some link saturates;
freeze the flows crossing that link at their current rate; repeat on the
residual network.  The hot loop is pure numpy over flat COO-style index
arrays (one ``bincount`` per aggregate), avoiding per-iteration sparse
matrix construction -- simulations re-rate thousands of flows per event.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

_EPS = 1e-9


def maxmin_rates(
    flow_links: Sequence[Sequence[int]],
    capacities: Sequence[float],
    rate_caps: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Max-min fair rates for flows over capacitated links.

    Args:
        flow_links: For each flow, the indices of links it traverses.  A flow
            with no links is unconstrained and gets rate ``inf`` (or its cap).
        capacities: Per-link capacities (positive).
        rate_caps: Optional per-flow rate ceilings (e.g. the TCP
            window/RTT throughput limit); ``inf``/None entries uncapped.

    Returns:
        Array of per-flow rates, shape (n_flows,).
    """
    capacities = np.asarray(capacities, dtype=float)
    if np.any(capacities <= 0):
        raise ValueError("link capacities must be positive")
    n_flows = len(flow_links)
    n_links = capacities.size
    if n_flows == 0:
        return np.zeros(0)
    caps = _normalize_caps(rate_caps, n_flows)

    link_of, flow_of = _build_entries(flow_links, n_links)
    return _progressive_fill(link_of, flow_of, capacities, n_flows, caps)


def _normalize_caps(
    rate_caps: Optional[Sequence[float]], n_flows: int
) -> np.ndarray:
    if rate_caps is None:
        return np.full(n_flows, np.inf)
    caps = np.asarray(
        [np.inf if cap is None else float(cap) for cap in rate_caps], dtype=float
    )
    if caps.shape != (n_flows,):
        raise ValueError("rate_caps length must match flow count")
    if np.any(caps < 0):
        raise ValueError("rate caps must be >= 0")
    return caps


def _build_entries(
    flow_links: Sequence[Sequence[int]], n_links: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten (flow -> links) into parallel COO index arrays."""
    links: List[int] = []
    flows: List[int] = []
    for flow_index, flow in enumerate(flow_links):
        for link_index in set(flow):
            if not 0 <= link_index < n_links:
                raise IndexError(f"link index {link_index} out of range")
            links.append(link_index)
            flows.append(flow_index)
    return (
        np.asarray(links, dtype=np.intp),
        np.asarray(flows, dtype=np.intp),
    )


def _progressive_fill(
    link_of: np.ndarray,
    flow_of: np.ndarray,
    capacities: np.ndarray,
    n_flows: int,
    caps: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Water-filling with optional per-flow ceilings.

    All active flows rise together from the current ``level``; the next
    event is either a link saturating (freeze its flows at the level) or a
    flow hitting its cap (freeze it at the cap).  Tracking the level lets
    link headroom be drained incrementally, so capped flows stop consuming
    once frozen.
    """
    if caps is None:
        caps = np.full(n_flows, np.inf)
    n_links = capacities.size
    rates = np.full(n_flows, np.inf)
    # Flows crossing no link rise straight to their cap.
    crosses = np.zeros(n_flows, dtype=bool)
    crosses[flow_of] = True
    rates[~crosses] = caps[~crosses]
    active = crosses.copy()
    remaining = capacities.astype(float).copy()
    level = 0.0

    while active.any():
        counts = np.bincount(
            link_of, weights=active[flow_of].astype(float), minlength=n_links
        )
        loaded = counts > 0
        link_levels = np.full(n_links, np.inf)
        link_levels[loaded] = level + remaining[loaded] / counts[loaded]
        saturation_level = link_levels.min()
        active_caps = np.where(active, caps, np.inf)
        cap_level = active_caps.min()
        next_level = min(saturation_level, cap_level)

        # Every active flow rises to next_level, draining its links.
        delta = max(0.0, next_level - level)
        remaining = np.maximum(remaining - delta * counts, 0.0)
        level = next_level

        frozen = np.zeros(n_flows, dtype=bool)
        if cap_level <= saturation_level + _EPS:
            frozen |= active & (caps <= level + _EPS)
        if saturation_level <= cap_level + _EPS:
            bottleneck = loaded & (link_levels <= level + _EPS)
            entry_hits = bottleneck[link_of]
            frozen[flow_of[entry_hits]] = True
            frozen &= active
        if not frozen.any():  # numerical safety net; should not happen
            frozen = active.copy()
        rates[frozen] = np.minimum(np.maximum(level, 0.0), caps[frozen])
        active &= ~frozen
    return rates


def _multi_range(indptr: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(indptr[i], indptr[i+1])`` for every id, vectorized."""
    starts = indptr[ids]
    lens = indptr[ids + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    offsets = np.concatenate(([0], np.cumsum(lens[:-1])))
    return np.repeat(starts - offsets, lens) + np.arange(total, dtype=np.intp)


def _progressive_fill_fast(
    link_of: np.ndarray,
    flow_of: np.ndarray,
    capacities: np.ndarray,
    n_flows: int,
    caps: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Water-filling with the same freeze events as :func:`_progressive_fill`
    but O(entries + iterations x links) instead of O(iterations x entries).

    The per-iteration ``bincount`` over every entry is replaced by link
    crossing-counts maintained incrementally (exact: counts are integers),
    flows/links are gathered through CSR index arrays, and the running
    minimum of active rate caps comes from one upfront sort.  Arithmetic is
    ordered exactly as in the reference loop, so given identical inputs the
    returned rates are bit-identical -- the vectorized simulator engine
    relies on this to stay interchangeable with the scalar one.
    """
    if caps is None:
        caps = np.full(n_flows, np.inf)
    n_links = capacities.size
    rates = np.full(n_flows, np.inf)
    crosses = np.zeros(n_flows, dtype=bool)
    crosses[flow_of] = True
    rates[~crosses] = caps[~crosses]
    active = crosses.copy()
    n_active = int(active.sum())
    remaining = capacities.astype(float).copy()
    if n_active == 0:
        return rates

    # CSR views of the incidence, by link and by flow.
    by_link = np.argsort(link_of, kind="stable")
    link_sorted_flows = flow_of[by_link]
    link_indptr = np.zeros(n_links + 1, dtype=np.intp)
    np.cumsum(np.bincount(link_of, minlength=n_links), out=link_indptr[1:])
    by_flow = np.argsort(flow_of, kind="stable")
    flow_sorted_links = link_of[by_flow]
    flow_indptr = np.zeros(n_flows + 1, dtype=np.intp)
    np.cumsum(np.bincount(flow_of, minlength=n_flows), out=flow_indptr[1:])

    counts = (link_indptr[1:] - link_indptr[:-1]).astype(float)
    loaded = counts > 0
    finite_ids = np.flatnonzero(np.isfinite(caps) & active)
    cap_order = finite_ids[np.argsort(caps[finite_ids], kind="stable")]
    cap_ptr = 0
    level = 0.0
    link_levels = np.empty(n_links)
    scratch = np.zeros(n_flows, dtype=bool)  # dedups saturated flows

    while n_active > 0:
        link_levels.fill(np.inf)
        np.divide(remaining, counts, out=link_levels, where=loaded)
        link_levels += level
        saturation_level = float(link_levels.min()) if n_links else np.inf
        while cap_ptr < cap_order.size and not active[cap_order[cap_ptr]]:
            cap_ptr += 1
        cap_level = (
            float(caps[cap_order[cap_ptr]])
            if cap_ptr < cap_order.size
            else np.inf
        )
        next_level = min(saturation_level, cap_level)
        delta = max(0.0, next_level - level)
        np.maximum(remaining - delta * counts, 0.0, out=remaining)
        level = next_level

        capped: List[int] = []
        if cap_level <= saturation_level + _EPS:
            while (
                cap_ptr < cap_order.size
                and caps[cap_order[cap_ptr]] <= level + _EPS
            ):
                flow = int(cap_order[cap_ptr])
                cap_ptr += 1
                if active[flow]:
                    active[flow] = False
                    capped.append(flow)
        if saturation_level <= cap_level + _EPS:
            bottleneck = np.flatnonzero(loaded & (link_levels <= level + _EPS))
            hits = link_sorted_flows[_multi_range(link_indptr, bottleneck)]
            scratch[hits] = active[hits]
            saturated = np.flatnonzero(scratch)
            scratch[saturated] = False
        else:
            saturated = np.empty(0, dtype=np.intp)
        active[saturated] = False
        frozen = np.concatenate(
            (np.asarray(capped, dtype=np.intp), saturated)
        )
        if not frozen.size:  # numerical safety net; should not happen
            frozen = np.flatnonzero(active)
            active[frozen] = False
        rates[frozen] = np.minimum(np.maximum(level, 0.0), caps[frozen])
        np.subtract.at(
            counts, flow_sorted_links[_multi_range(flow_indptr, frozen)], 1.0
        )
        loaded = counts > 0
        n_active -= frozen.size
    return rates


def link_loads(
    flow_links: Sequence[Sequence[int]],
    rates: Sequence[float],
    n_links: int,
) -> np.ndarray:
    """Aggregate per-link rates for a set of flows (inf rates count as 0)."""
    loads = np.zeros(n_links)
    for flow, rate in zip(flow_links, rates):
        if not np.isfinite(rate):
            continue
        for link_index in set(flow):
            loads[link_index] += rate
    return loads


def maxmin_rates_reference(
    flow_links: Sequence[Sequence[int]],
    capacities: Sequence[float],
) -> List[float]:
    """Straightforward O(links * flows^2) progressive filling.

    Kept as an independently-written oracle for property tests against the
    vectorized implementation.
    """
    capacities = [float(c) for c in capacities]
    if any(c <= 0 for c in capacities):
        raise ValueError("link capacities must be positive")
    n_flows = len(flow_links)
    rates = [float("inf")] * n_flows
    remaining = list(capacities)
    active = [bool(set(links)) for links in flow_links]

    while any(active):
        best_share = float("inf")
        for link_index, cap in enumerate(remaining):
            count = sum(
                1
                for flow_index in range(n_flows)
                if active[flow_index] and link_index in flow_links[flow_index]
            )
            if count:
                best_share = min(best_share, cap / count)
        bottleneck_links = set()
        for link_index, cap in enumerate(remaining):
            count = sum(
                1
                for flow_index in range(n_flows)
                if active[flow_index] and link_index in flow_links[flow_index]
            )
            if count and cap / count <= best_share + _EPS:
                bottleneck_links.add(link_index)
        for flow_index in range(n_flows):
            if active[flow_index] and bottleneck_links & set(flow_links[flow_index]):
                rates[flow_index] = best_share
                active[flow_index] = False
                for link_index in set(flow_links[flow_index]):
                    remaining[link_index] -= best_share
        remaining = [max(0.0, cap) for cap in remaining]
    return rates


def verify_maxmin(
    flow_links: Sequence[Sequence[int]],
    capacities: Sequence[float],
    rates: Sequence[float],
    tolerance: float = 1e-6,
    rate_caps: Optional[Sequence[float]] = None,
) -> bool:
    """Check feasibility and the bottleneck condition of an allocation.

    Max-min optimality is equivalent to: every flow either sits at its rate
    cap or crosses at least one saturated link on which it attains the
    maximum rate among crossing flows.
    """
    caps = _normalize_caps(rate_caps, len(flow_links))
    capacities = np.asarray(capacities, dtype=float)
    loads = np.zeros(capacities.shape)
    for flow_index, links in enumerate(flow_links):
        rate = rates[flow_index]
        if not np.isfinite(rate):
            if set(links) or np.isfinite(caps[flow_index]):
                return False
            continue
        if rate > caps[flow_index] * (1 + tolerance) + tolerance:
            return False
        for link_index in set(links):
            loads[link_index] += rate
    if np.any(loads > capacities * (1 + tolerance) + tolerance):
        return False
    for flow_index, links in enumerate(flow_links):
        link_set = set(links)
        at_cap = (
            np.isfinite(caps[flow_index])
            and rates[flow_index] >= caps[flow_index] * (1 - tolerance) - tolerance
        )
        if not link_set:
            if np.isfinite(rates[flow_index]) and not at_cap:
                return False
            continue
        if at_cap:
            continue
        has_bottleneck = False
        for link_index in link_set:
            saturated = loads[link_index] >= capacities[link_index] * (1 - tolerance) - tolerance
            max_on_link = max(
                rates[other]
                for other, other_links in enumerate(flow_links)
                if link_index in set(other_links)
            )
            if saturated and rates[flow_index] >= max_on_link - tolerance:
                has_bottleneck = True
                break
        if not has_bottleneck:
            return False
    return True
