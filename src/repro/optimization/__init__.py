"""Numerical substrate: LP modelling over HiGHS, max-min fair allocation
with per-flow rate caps, and exact weighted-simplex projection."""
