"""A small linear-programming modelling layer over ``scipy.optimize.linprog``.

The P4P formulations (centralized MLU, bandwidth matching, interdomain
constraints) are most naturally written with named variables and sparse
constraints; this module provides that, assembling the matrices for the
HiGHS solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog


class InfeasibleError(Exception):
    """Raised when an LP has no feasible solution (or is unbounded)."""


@dataclass
class LpSolution:
    """Optimal values of a solved :class:`LinearProgram`."""

    objective: float
    values: Dict[str, float]
    dual_ub: Optional[np.ndarray] = None
    dual_eq: Optional[np.ndarray] = None

    def value(self, name: str) -> float:
        return self.values[name]

    def __getitem__(self, name: str) -> float:
        return self.values[name]


@dataclass
class _Constraint:
    coeffs: Dict[int, float]
    rhs: float


@dataclass
class LinearProgram:
    """Incrementally-built LP: named variables, <= and == constraints.

    Internally the objective is always minimized; ``set_objective`` with
    ``maximize=True`` negates coefficients and flips the reported optimum
    back.
    """

    name: str = "lp"
    _index: Dict[str, int] = field(default_factory=dict)
    _names: List[str] = field(default_factory=list)
    _lb: List[float] = field(default_factory=list)
    _ub: List[float] = field(default_factory=list)
    _objective: Dict[int, float] = field(default_factory=dict)
    _maximize: bool = False
    _le: List[_Constraint] = field(default_factory=list)
    _eq: List[_Constraint] = field(default_factory=list)

    # -- model building ------------------------------------------------------

    def add_var(
        self, name: str, lb: float = 0.0, ub: Optional[float] = None
    ) -> str:
        """Add a variable; returns its name for chaining convenience."""
        if name in self._index:
            raise ValueError(f"duplicate variable {name!r}")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._lb.append(lb)
        self._ub.append(np.inf if ub is None else ub)
        return name

    def has_var(self, name: str) -> bool:
        return name in self._index

    def _row(self, coeffs: Mapping[str, float]) -> Dict[int, float]:
        row: Dict[int, float] = {}
        for name, coefficient in coeffs.items():
            if name not in self._index:
                raise KeyError(f"unknown variable {name!r}")
            if coefficient:
                row[self._index[name]] = row.get(self._index[name], 0.0) + coefficient
        return row

    def add_le(self, coeffs: Mapping[str, float], rhs: float) -> None:
        """Add ``sum coeffs * vars <= rhs``."""
        self._le.append(_Constraint(self._row(coeffs), rhs))

    def add_ge(self, coeffs: Mapping[str, float], rhs: float) -> None:
        """Add ``sum coeffs * vars >= rhs`` (stored as negated <=)."""
        row = self._row(coeffs)
        self._le.append(_Constraint({k: -v for k, v in row.items()}, -rhs))

    def add_eq(self, coeffs: Mapping[str, float], rhs: float) -> None:
        """Add ``sum coeffs * vars == rhs``."""
        self._eq.append(_Constraint(self._row(coeffs), rhs))

    def set_objective(self, coeffs: Mapping[str, float], maximize: bool = False) -> None:
        self._objective = self._row(coeffs)
        self._maximize = maximize

    # -- solving ---------------------------------------------------------------

    def solve(self) -> LpSolution:
        """Solve with HiGHS; raise :class:`InfeasibleError` on failure."""
        n = len(self._names)
        if n == 0:
            raise ValueError("LP has no variables")
        c = np.zeros(n)
        for index, coefficient in self._objective.items():
            c[index] = coefficient
        if self._maximize:
            c = -c

        a_ub, b_ub = _assemble(self._le, n)
        a_eq, b_eq = _assemble(self._eq, n)
        bounds = list(zip(self._lb, self._ub))

        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            raise InfeasibleError(f"{self.name}: {result.message}")
        objective = float(result.fun)
        if self._maximize:
            objective = -objective
        values = {name: float(result.x[index]) for name, index in self._index.items()}
        dual_ub = None
        dual_eq = None
        if result.ineqlin is not None and a_ub is not None:
            dual_ub = np.asarray(result.ineqlin.marginals)
        if result.eqlin is not None and a_eq is not None:
            dual_eq = np.asarray(result.eqlin.marginals)
        return LpSolution(objective=objective, values=values, dual_ub=dual_ub, dual_eq=dual_eq)


def _assemble(
    constraints: List[_Constraint], n_vars: int
) -> Tuple[Optional[sparse.csr_matrix], Optional[np.ndarray]]:
    if not constraints:
        return None, None
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    rhs = np.zeros(len(constraints))
    for row_index, constraint in enumerate(constraints):
        rhs[row_index] = constraint.rhs
        for col, coefficient in constraint.coeffs.items():
            rows.append(row_index)
            cols.append(col)
            data.append(coefficient)
    matrix = sparse.csr_matrix(
        (data, (rows, cols)), shape=(len(constraints), n_vars)
    )
    return matrix, rhs
