"""Swarm-population workloads: the Sec. 8 scalability analysis.

The paper analyzed the instantaneous leecher counts of 34,721 movie torrents
from thepiratebay.org and found that only 0.72% of swarms exceeded 100
leechers -- the long-tail argument for appTrackers focusing on heavy-hitter
networks.  Real swarm populations are well modelled by a discrete power law
(Zipf); this module generates calibrated populations and reproduces the
analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class SwarmPopulationModel:
    """Discrete power-law swarm sizes: ``P(size = k) ~ k^-alpha``.

    Attributes:
        alpha: Tail exponent; ~1.96 calibrates the piratebay observation
            (roughly 0.72% of swarms above 100 leechers).
        max_size: Truncation of the support.
    """

    alpha: float = 1.96
    max_size: int = 50_000

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a normalizable tail")
        if self.max_size < 1:
            raise ValueError("max_size must be >= 1")

    def sample(self, count: int, rng: random.Random) -> List[int]:
        """Draw ``count`` swarm sizes by inverse-CDF over the zeta weights."""
        if count < 0:
            raise ValueError("count must be >= 0")
        # Inverse transform on the truncated zeta CDF via bisection over a
        # precomputed cumulative table (support is modest).
        weights = [k ** (-self.alpha) for k in range(1, self.max_size + 1)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cumulative.append(acc / total)
        sizes = []
        for _ in range(count):
            u = rng.random()
            sizes.append(_bisect_left(cumulative, u) + 1)
        return sizes

    def tail_fraction(self, threshold: int) -> float:
        """Exact model fraction of swarms strictly above ``threshold``."""
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        weights = [k ** (-self.alpha) for k in range(1, self.max_size + 1)]
        total = sum(weights)
        above = sum(weights[threshold:])
        return above / total


def _bisect_left(cumulative: Sequence[float], u: float) -> int:
    lo, hi = 0, len(cumulative)
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return min(lo, len(cumulative) - 1)


def fraction_above(sizes: Sequence[int], threshold: int) -> float:
    """Empirical fraction of swarms with more than ``threshold`` leechers."""
    if not sizes:
        raise ValueError("no swarm sizes")
    return sum(1 for size in sizes if size > threshold) / len(sizes)
