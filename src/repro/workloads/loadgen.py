"""Open-loop portal load generator.

Drives any portal server (threaded or asyncio -- they speak the same
wire protocol) with a seeded open-loop workload: request arrivals are a
Poisson process that does *not* wait for responses, so a slow server
accumulates queueing delay instead of silently throttling the offered
load -- the difference between measuring latency and measuring the
generator (the coordinated-omission trap).

The generator is split into three pieces so determinism is testable
without sockets:

* :func:`build_schedule` -- pure function from a :class:`LoadSpec` to the
  complete request schedule (arrival time, connection, method, params,
  churn flags).  Same seed, same schedule, byte for byte.
* :func:`run` / :func:`drive` -- the asyncio driver: one task per
  connection, requests pipelined at their scheduled times, a FIFO reader
  matching responses, per-request latency measured from *scheduled*
  arrival to completion (queueing included, per open-loop convention).
  Connection churn closes and reopens the socket at seeded points.
* :func:`simulate` -- a step-clock executor over the same schedule (each
  connection is a FIFO server with fixed service time), so scheduling +
  summary statistics are regression-testable with no I/O and no clock.

``p4p-repro loadtest`` wraps this against both servers;
``benchmarks/test_perf_portal.py`` turns the comparison into the checked
QPS/latency gate.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.portal import protocol

#: Default method mix: view reads dominate (the paper's read-mostly
#: portal), with version polls, policy fetches, and ALTO interop reads.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("get_pdistances", 0.60),
    ("get_version", 0.25),
    ("get_policy", 0.10),
    ("get_alto_costmap", 0.05),
)

#: Request outcome classes (what the overload benchmark aggregates by).
OUTCOME_SERVED = "served"
OUTCOME_SHED = "shed"  #: busy frame: admission/brownout shedding
OUTCOME_DEADLINE = "deadline_exceeded"
OUTCOME_ERROR = "error"  #: any other error response
OUTCOME_CONNECT_REFUSED = "connect_refused"
OUTCOME_SEVERED = "severed"  #: connection died before the response


def classify_response(response: Dict[str, Any]) -> str:
    """Which outcome class one response frame belongs to.

    Shed (``busy``) and deadline frames are *not* generic errors: under
    overload they are the server working as designed, and conflating
    them with faults is exactly what hides a collapse (or fakes one).
    """
    if "error" not in response:
        return OUTCOME_SERVED
    if response.get("busy"):
        return OUTCOME_SHED
    if response.get("deadline_exceeded"):
        return OUTCOME_DEADLINE
    return OUTCOME_ERROR


@dataclass(frozen=True)
class LoadSpec:
    """One workload: everything :func:`build_schedule` needs, and nothing
    the transport provides."""

    connections: int = 50
    rate: float = 500.0  #: offered load, requests/second across all connections
    duration: float = 5.0  #: seconds of scheduled arrivals
    seed: int = 0
    method_mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    churn: float = 0.0  #: P(a request is preceded by a reconnect)
    pids_fraction: float = 0.3  #: P(a view read restricts to a PID subset)
    pid_pool: Tuple[str, ...] = ()  #: PIDs to draw restricted subsets from
    pids_max: int = 0  #: max PIDs per restricted subset (0: half the pool)

    def __post_init__(self) -> None:
        if self.connections < 1:
            raise ValueError("connections must be >= 1")
        if self.rate <= 0:
            raise ValueError("rate must be > 0")
        if not self.method_mix:
            raise ValueError("method_mix must not be empty")


@dataclass(frozen=True)
class ScheduledRequest:
    at: float  #: scheduled arrival, seconds from workload start
    connection: int
    method: str
    params: Dict[str, Any]
    reconnect: bool = False  #: churn: reopen the connection before sending


def build_schedule(spec: LoadSpec) -> List[ScheduledRequest]:
    """The complete seeded schedule, in arrival order.

    Pure: two calls with equal specs return equal schedules, which is the
    contract that makes A/B server comparisons apples-to-apples and the
    determinism test meaningful.
    """
    import random

    rng = random.Random(spec.seed)
    total = sum(weight for _, weight in spec.method_mix)
    cumulative: List[Tuple[float, str]] = []
    acc = 0.0
    for method, weight in spec.method_mix:
        acc += weight / total
        cumulative.append((acc, method))
    schedule: List[ScheduledRequest] = []
    t = 0.0
    while True:
        t += rng.expovariate(spec.rate)
        if t >= spec.duration:
            break
        pick = rng.random()
        method = next(m for edge, m in cumulative if pick <= edge)
        params: Dict[str, Any] = {}
        if method in ("get_pdistances", "get_alto_costmap") and spec.pid_pool:
            if rng.random() < spec.pids_fraction:
                cap = spec.pids_max or max(1, len(spec.pid_pool) // 2)
                k = rng.randint(1, min(cap, len(spec.pid_pool)))
                params["pids"] = rng.sample(spec.pid_pool, k)
        schedule.append(
            ScheduledRequest(
                at=t,
                connection=rng.randrange(spec.connections),
                method=method,
                params=params,
                reconnect=spec.churn > 0 and rng.random() < spec.churn,
            )
        )
    return schedule


# -- summary ---------------------------------------------------------------


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class LoadSummary:
    """What one load-test run measured."""

    requests: int
    errors: int
    elapsed: float  #: wall time from first scheduled arrival to last completion
    qps: float
    p50: float
    p90: float
    p99: float
    reconnects: int = 0
    by_method: Dict[str, int] = field(default_factory=dict)
    #: Per-outcome breakdown: ``{outcome: {count, [p50, p90, p99]}}``
    #: (percentiles only for outcomes that have completions).
    outcomes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Served (non-error, non-shed) completions per second -- the number
    #: an overloaded server is judged by.
    goodput: float = 0.0

    def to_document(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_seconds": round(self.elapsed, 6),
            "qps": round(self.qps, 3),
            "goodput_qps": round(self.goodput, 3),
            "latency_seconds": {
                "p50": round(self.p50, 6),
                "p90": round(self.p90, 6),
                "p99": round(self.p99, 6),
            },
            "reconnects": self.reconnects,
            "by_method": dict(sorted(self.by_method.items())),
            "outcomes": {
                outcome: dict(stats)
                for outcome, stats in sorted(self.outcomes.items())
            },
        }


def summarize(
    latencies: Sequence[float],
    elapsed: float,
    errors: int = 0,
    reconnects: int = 0,
    by_method: Optional[Dict[str, int]] = None,
    outcome_counts: Optional[Dict[str, int]] = None,
    outcome_latencies: Optional[Dict[str, Sequence[float]]] = None,
) -> LoadSummary:
    ordered = sorted(latencies)
    elapsed = max(elapsed, 1e-9)
    counts = dict(outcome_counts or {})
    per_outcome = {
        outcome: sorted(values)
        for outcome, values in (outcome_latencies or {}).items()
    }
    if not counts and not per_outcome and ordered:
        # Callers predating outcome classification (and the idealized
        # simulator, which never sheds): every completion served.
        counts = {OUTCOME_SERVED: len(ordered)}
        per_outcome = {OUTCOME_SERVED: ordered}
    outcomes: Dict[str, Dict[str, Any]] = {}
    for outcome in sorted(set(counts) | set(per_outcome)):
        values = per_outcome.get(outcome, [])
        stats: Dict[str, Any] = {"count": counts.get(outcome, len(values))}
        if values:
            stats["p50"] = round(percentile(values, 0.50), 6)
            stats["p90"] = round(percentile(values, 0.90), 6)
            stats["p99"] = round(percentile(values, 0.99), 6)
        outcomes[outcome] = stats
    served = outcomes.get(OUTCOME_SERVED, {}).get("count", 0)
    return LoadSummary(
        requests=len(ordered),
        errors=errors,
        elapsed=elapsed,
        qps=len(ordered) / elapsed,
        p50=percentile(ordered, 0.50),
        p90=percentile(ordered, 0.90),
        p99=percentile(ordered, 0.99),
        reconnects=reconnects,
        by_method=dict(by_method or {}),
        outcomes=outcomes,
        goodput=served / elapsed,
    )


# -- deterministic step-clock executor ------------------------------------


def simulate(spec: LoadSpec, service_time: float = 0.001) -> LoadSummary:
    """Execute the schedule against an idealized server, no I/O, no clock.

    Each connection is a FIFO queue with fixed per-request service time:
    a request starts at ``max(arrival, previous completion on the same
    connection)`` and its open-loop latency is ``completion - arrival``.
    Deterministic to the last bit -- the regression anchor for scheduling
    and summary arithmetic.
    """
    schedule = build_schedule(spec)
    last_done: Dict[int, float] = {}
    latencies: List[float] = []
    by_method: Dict[str, int] = {}
    reconnects = 0
    finish = 0.0
    for request in schedule:
        start = max(request.at, last_done.get(request.connection, 0.0))
        done = start + service_time
        last_done[request.connection] = done
        latencies.append(done - request.at)
        by_method[request.method] = by_method.get(request.method, 0) + 1
        reconnects += request.reconnect
        finish = max(finish, done)
    return summarize(latencies, elapsed=finish, reconnects=reconnects, by_method=by_method)


# -- asyncio driver --------------------------------------------------------


def _segments(
    requests: Sequence[ScheduledRequest],
) -> List[List[ScheduledRequest]]:
    """Split one connection's requests at churn boundaries: each segment
    is served by one socket lifetime."""
    segments: List[List[ScheduledRequest]] = []
    current: List[ScheduledRequest] = []
    for request in requests:
        if request.reconnect and current:
            segments.append(current)
            current = []
        current.append(request)
    if current:
        segments.append(current)
    return segments


class _ConnState:
    """Mutable per-run accumulators shared by the connection tasks."""

    def __init__(self) -> None:
        self.latencies: List[float] = []
        self.errors = 0
        self.reconnects = 0
        self.by_method: Dict[str, int] = {}
        self.outcome_counts: Dict[str, int] = {}
        self.outcome_latencies: Dict[str, List[float]] = {}
        self.last_completion = 0.0

    def record(self, method: str, latency: float, outcome: str, done: float) -> None:
        self.latencies.append(latency)
        self.by_method[method] = self.by_method.get(method, 0) + 1
        self.errors += outcome == OUTCOME_ERROR
        self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + 1
        self.outcome_latencies.setdefault(outcome, []).append(latency)
        self.last_completion = max(self.last_completion, done)

    def count_failures(self, outcome: str, n: int) -> None:
        """Requests that never completed (refused connect, severed mid-run):
        counted by outcome, no latency sample to record."""
        if n > 0:
            self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + n


#: Connect retries per socket: a server mid-churn (or a full accept
#: backlog during the initial connect burst) refuses transiently.
CONNECT_ATTEMPTS = 8


async def _connect(address: Tuple[str, int]):
    last: Optional[BaseException] = None
    for attempt in range(CONNECT_ATTEMPTS):
        try:
            return await asyncio.open_connection(*address)
        except (ConnectionError, OSError) as exc:
            last = exc
            await asyncio.sleep(0.1 * (attempt + 1))
    assert last is not None
    raise last


async def _run_segment(
    address: Tuple[str, int],
    segment: Sequence[ScheduledRequest],
    t0: float,
    state: _ConnState,
    clock,
) -> None:
    try:
        reader, writer = await _connect(address)
    except (ConnectionError, OSError):
        # A capped/draining/closed server refuses the connect even after
        # the retries: the whole segment's requests never happened.
        state.count_failures(OUTCOME_CONNECT_REFUSED, len(segment))
        return
    inflight: Deque[ScheduledRequest] = deque()
    completed = 0

    async def read_loop() -> None:
        nonlocal completed
        for _ in range(len(segment)):
            framed = await protocol.aread_frame_ex(reader)
            if framed is None:
                raise ConnectionError("server closed mid-run")
            response, _ = framed
            request = inflight.popleft()
            done = clock() - t0
            state.record(
                request.method, done - request.at, classify_response(response), done
            )
            completed += 1

    async def write_loop() -> None:
        for request in segment:
            delay = t0 + request.at - clock()
            if delay > 0:
                await asyncio.sleep(delay)
            inflight.append(request)
            writer.write(
                protocol.encode_frame(
                    {"method": request.method, "params": request.params}
                )
            )
            await writer.drain()

    writes = asyncio.ensure_future(write_loop())
    reads = asyncio.ensure_future(read_loop())
    try:
        await asyncio.gather(writes, reads)
    except (ConnectionError, OSError):
        # Severed mid-run (request-budget recycle, timeout governance, a
        # drain/close): everything unanswered on this socket is severed.
        for task in (writes, reads):
            task.cancel()
        await asyncio.gather(writes, reads, return_exceptions=True)
        state.count_failures(OUTCOME_SEVERED, len(segment) - completed)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def drive(
    spec: LoadSpec,
    address: Tuple[str, int],
    schedule: Optional[Sequence[ScheduledRequest]] = None,
) -> LoadSummary:
    """Run the workload against a live portal; returns the measurements.

    Open-loop: each request is written at its scheduled time whether or
    not earlier responses have arrived (pipelined on its connection), and
    latency runs from the scheduled arrival to response completion.
    """
    if schedule is None:
        schedule = build_schedule(spec)
    per_connection: Dict[int, List[ScheduledRequest]] = {}
    for request in schedule:
        per_connection.setdefault(request.connection, []).append(request)
    state = _ConnState()
    clock = time.perf_counter
    t0 = clock()

    async def connection_task(requests: List[ScheduledRequest]) -> None:
        segments = _segments(requests)
        state.reconnects += max(0, len(segments) - 1)
        for segment in segments:
            await _run_segment(address, segment, t0, state, clock)

    tasks = [
        asyncio.ensure_future(connection_task(requests))
        for requests in per_connection.values()
    ]
    failures = 0
    for result in await asyncio.gather(*tasks, return_exceptions=True):
        if isinstance(result, BaseException):
            failures += 1
    return summarize(
        state.latencies,
        elapsed=state.last_completion,
        errors=state.errors + failures,
        reconnects=state.reconnects,
        by_method=state.by_method,
        outcome_counts=state.outcome_counts,
        outcome_latencies=state.outcome_latencies,
    )


def run(
    spec: LoadSpec,
    address: Tuple[str, int],
    schedule: Optional[Sequence[ScheduledRequest]] = None,
) -> LoadSummary:
    """Synchronous entry point: :func:`drive` in a private event loop."""
    return asyncio.run(drive(spec, address, schedule=schedule))


def format_summary(name: str, summary: LoadSummary) -> str:
    doc = summary.to_document()
    latency = doc["latency_seconds"]
    shed = doc["outcomes"].get(OUTCOME_SHED, {}).get("count", 0)
    return (
        f"{name:<10} {doc['qps']:10.1f} qps  "
        f"goodput {doc['goodput_qps']:10.1f}  "
        f"p50 {latency['p50'] * 1000.0:8.3f}ms  "
        f"p99 {latency['p99'] * 1000.0:8.3f}ms  "
        f"{doc['requests']} reqs  {doc['errors']} errors  "
        f"{shed} shed  {doc['reconnects']} reconnects"
    )


def dump_json(document: Dict[str, Any]) -> str:
    return json.dumps(document, sort_keys=True, indent=2)
