"""Peer placement: assign swarm clients to PoP (PID) nodes.

The paper's simulations place peers uniformly at random over PoP nodes;
the field tests exhibit skewed metro populations, modelled here with
weighted placement.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

from repro.apptracker.selection import PeerInfo
from repro.network.topology import Topology


def place_peers(
    topology: Topology,
    count: int,
    rng: random.Random,
    pids: Optional[Sequence[str]] = None,
    weights: Optional[Mapping[str, float]] = None,
    first_id: int = 0,
) -> List[PeerInfo]:
    """Create ``count`` peers assigned to aggregation PIDs.

    Args:
        topology: Source of PIDs and AS numbers.
        count: Number of peers.
        rng: Randomness source (caller-seeded for reproducibility).
        pids: Candidate PIDs; defaults to all aggregation PIDs.
        weights: Optional per-PID placement weight (e.g. metro population
            skew); uniform when omitted.
        first_id: First peer id; ids are consecutive.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    pool = list(pids) if pids is not None else topology.aggregation_pids
    if not pool:
        raise ValueError("no PIDs to place peers on")
    for pid in pool:
        if pid not in topology.nodes:
            raise KeyError(f"unknown PID {pid!r}")
    if weights is not None:
        weight_values = [max(0.0, float(weights.get(pid, 0.0))) for pid in pool]
        if sum(weight_values) <= 0:
            raise ValueError("placement weights sum to zero")
    else:
        weight_values = None

    peers: List[PeerInfo] = []
    for offset in range(count):
        if weight_values is None:
            pid = rng.choice(pool)
        else:
            pid = rng.choices(pool, weights=weight_values, k=1)[0]
        peers.append(
            PeerInfo(
                peer_id=first_id + offset,
                pid=pid,
                as_number=topology.node(pid).as_number,
            )
        )
    return peers


def peers_per_pid(peers: Sequence[PeerInfo]) -> Dict[str, int]:
    """Histogram of peers by PID."""
    counts: Dict[str, int] = {}
    for peer in peers:
        counts[peer.pid] = counts.get(peer.pid, 0) + 1
    return counts
