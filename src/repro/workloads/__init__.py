"""Workload generators: peer placement and swarm populations."""

from repro.workloads.placement import peers_per_pid, place_peers
from repro.workloads.swarms import SwarmPopulationModel, fraction_above

__all__ = [
    "peers_per_pid",
    "place_peers",
    "SwarmPopulationModel",
    "fraction_above",
]
