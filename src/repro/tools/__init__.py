"""Operator tooling: the command-line experiment runner."""
