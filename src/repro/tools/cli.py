"""Command-line experiment runner: ``python -m repro.tools.cli <experiment>``.

Runs any reproduced table/figure at an adjustable scale and prints the
same rows the benchmarks report -- the quickest way to regenerate one
result without invoking pytest.

Examples::

    python -m repro.tools.cli table1
    python -m repro.tools.cli fig6 --peers 120 --runs 2
    python -m repro.tools.cli fieldtest --clients 600
    python -m repro.tools.cli telemetry --portal 127.0.0.1:6671
    python -m repro.tools.cli lint --format json
    python -m repro.tools.cli chaos --seed 11
    python -m repro.tools.cli list

``chaos`` runs the seeded crash/partition/corruption scenario of
:mod:`repro.simulator.chaos` (primary + standby, state store, failover
client) and exits non-zero if any invariant -- version monotonicity,
bounded staleness, no price reset, MLU re-convergence -- is violated.

``telemetry`` is the operator-facing scrape: it calls ``get_metrics`` on
one or more live portals and renders the text dashboard (request rates,
latency percentiles, price-update convergence, resilience counters), or
dumps the raw Prometheus/JSON exposition for piping elsewhere.

``lint`` runs p4plint (:mod:`repro.analysis`), the repo's AST-based
invariant checker, over the source tree; it exits non-zero on any
non-baselined finding, which is how CI gates on the invariants.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence


def _run_table1(args: argparse.Namespace, out) -> None:
    from repro.experiments.table1_topologies import format_table1, run_table1

    print(format_table1(run_table1()), file=out)


def _run_fig6(args: argparse.Namespace, out) -> None:
    from repro.experiments.fig6_internet import run_fig6

    fig6 = run_fig6(n_peers=args.peers, n_runs=args.runs)
    for scheme in ("native", "localized", "p4p"):
        print(
            f"{scheme:<10} mean {fig6.mean_completion(scheme):7.1f}s  "
            f"bottleneck {fig6.bottleneck_mbit(scheme):8.1f} Mbit",
            file=out,
        )


def _run_fig7(args: argparse.Namespace, out) -> None:
    from repro.experiments.fig7_fig8_sweep import run_fig7

    sweep = run_fig7(swarm_sizes=tuple(args.sizes))
    for point in sweep.points:
        row = "  ".join(
            f"{scheme} {point.mean_completion[scheme]:6.1f}s"
            for scheme in sorted(point.mean_completion)
        )
        print(f"size {point.swarm_size:4d}: {row}", file=out)
    print(f"p4p improvement vs native: {sweep.improvement_percent('p4p'):.1f}%", file=out)


def _run_fig8(args: argparse.Namespace, out) -> None:
    from repro.experiments.fig7_fig8_sweep import run_fig8

    sweep = run_fig8(swarm_sizes=tuple(args.sizes))
    for scheme in ("native", "localized", "p4p"):
        series = "  ".join(
            f"{size}:{value:.2f}" for size, value in sweep.normalized_series(scheme)
        )
        print(f"{scheme:<10} {series}", file=out)


def _run_fig9(args: argparse.Namespace, out) -> None:
    from repro.experiments.fig9_liveswarms import run_fig9

    fig9 = run_fig9(n_clients=args.clients, duration=args.duration)
    print(
        f"native {fig9.mean_backbone_mb('native'):8.2f} MB/link   "
        f"p4p {fig9.mean_backbone_mb('p4p'):8.2f} MB/link   "
        f"reduction {fig9.reduction_percent():.1f}%",
        file=out,
    )


def _run_fig10(args: argparse.Namespace, out) -> None:
    from repro.experiments.fig10_interdomain import run_fig10

    fig10 = run_fig10(n_peers=args.peers)
    for scheme in ("native", "localized", "p4p"):
        volumes = "  ".join(
            f"{link[0]}->{link[1]}:{fig10.charging[scheme].get(link, 0.0):8.1f}"
            for link in fig10.interdomain_links
        )
        print(f"{scheme:<10} {volumes}", file=out)


def _run_fieldtest(args: argparse.Namespace, out) -> None:
    from repro.experiments.fig11_12_fieldtest import run_field_test
    from repro.simulator.fieldtest import FieldTestConfig

    figures = run_field_test(FieldTestConfig(n_clients=args.clients))
    table2 = figures.table2()
    for row, ratio in table2["ratio"].items():
        print(
            f"{row:<24} native {table2['native'][row]:10.0f}  "
            f"p4p {table2['p4p'][row]:10.0f}  ratio {ratio:5.2f}",
            file=out,
        )
    bdp = figures.unit_bdp()
    print(
        f"unit BDP {bdp['native']:.2f} -> {bdp['p4p']:.2f}; "
        f"completion improvement {figures.overall_improvement_percent():.1f}%",
        file=out,
    )


def _run_sec8(args: argparse.Namespace, out) -> None:
    from repro.experiments.sec8_swarms import run_sec8

    result = run_sec8(n_swarms=args.swarms)
    print(
        f"{result.n_swarms} swarms: {result.empirical_tail * 100:.2f}% above "
        f"{result.threshold} leechers (paper {result.paper_tail * 100:.2f}%)",
        file=out,
    )


def _run_ablations(args: argparse.Namespace, out) -> None:
    from repro.experiments.ablations import (
        run_ablation_charging,
        run_ablation_decomposition,
        run_ablation_granularity,
    )

    for entry in run_ablation_decomposition(n_iterations=args.iterations):
        print(
            f"decomposition mu={entry.step_size} theta={entry.damping} "
            f"decay={entry.step_decay}: MLU {entry.achieved_mlu:.4f} vs "
            f"optimal {entry.optimal_mlu:.4f} (gap {entry.gap_percent:+.1f}%)",
            file=out,
        )
    charging = run_ablation_charging()
    print(
        f"charging predictor: hybrid err {charging.hybrid_mean_error:.3f} vs "
        f"sliding {charging.sliding_mean_error:.3f}",
        file=out,
    )
    granularity = run_ablation_granularity()
    print(
        f"rank coarsening penalty: {granularity.rank_penalty_percent:.1f}%",
        file=out,
    )


def _parse_portal(spec: str):
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad --portal {spec!r}; expected host:port")
    return host, int(port)


def _run_telemetry(args: argparse.Namespace, out) -> None:
    from repro.observability.dashboard import render_dashboard
    from repro.portal.client import PortalClient

    documents = {}
    for spec in args.portal:
        host, port = _parse_portal(spec)
        with PortalClient(host, port, timeout=args.timeout) as client:
            if args.format == "prometheus":
                print(client.get_metrics(format="prometheus")["text"], file=out)
            elif args.format == "json":
                documents[spec] = client.get_metrics()
            else:
                print(render_dashboard(client.get_metrics(), title=spec), file=out)
    if args.format == "json":
        import json

        print(json.dumps(documents, sort_keys=True, indent=2), file=out)


def _run_lint(args: argparse.Namespace, out) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args, out=out)


def _run_fuzz(args: argparse.Namespace, out) -> int:
    from repro.fuzz.cli import run_fuzz

    return run_fuzz(args, out=out)


def _run_chaos(args: argparse.Namespace, out) -> int:
    from repro.simulator.chaos import ChaosSchedule, format_chaos, run_chaos

    schedule = ChaosSchedule.seeded(
        args.seed, horizon=args.horizon, with_state=not args.no_state
    )
    result = run_chaos(
        schedule=schedule,
        seed=args.seed,
        with_state=not args.no_state,
        n_peers=args.peers,
    )
    print(format_chaos(result, epsilon=args.epsilon), file=out)
    return 1 if result.violations else 0


def _run_overload(args: argparse.Namespace, out) -> int:
    import json

    from repro.simulator.overload import (
        OverloadScenarioSpec,
        format_overload,
        run_overload,
    )

    spec = OverloadScenarioSpec(
        seed=args.seed,
        multiple=args.multiple,
        duration=args.duration,
        drain_at=None if args.no_drain else args.drain_at,
    )
    report = run_overload(spec)
    if args.format == "json":
        print(json.dumps(report.document, sort_keys=True, indent=2), file=out)
    else:
        print(format_overload(report), file=out)
    return 1 if report.violations else 0


def _run_trace(args: argparse.Namespace, out) -> int:
    import json

    from repro.observability.assembler import (
        canonical_json,
        critical_path,
        format_trace_tree,
        slowest,
    )

    if args.input is not None:
        with open(args.input, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    else:
        from repro.simulator.traced import run_traced_scenario

        document = run_traced_scenario(seed=args.seed)
    trees = document.get("traces", [])
    if args.format == "json":
        out.write(canonical_json(document))
        return 0
    ranked = slowest(trees, args.slowest) if args.slowest else trees
    for tree in ranked:
        print(f"trace {tree['trace_id']}:", file=out)
        print(format_trace_tree(tree), file=out)
        path = critical_path(tree)
        names = " -> ".join(node["name"] for node in path)
        tail = path[-1]
        duration = tail["duration"]
        timing = f"{duration * 1000.0:.3f}ms" if duration is not None else "open"
        print(f"critical path: {names} (leaf {timing})", file=out)
        print(file=out)
    print(f"{len(trees)} trace(s) exported", file=out)
    return 0


def _loadtest_itracker(topology_name: str):
    from repro.core.itracker import ITracker
    from repro.core.pdistance import uniform_pid_map
    from repro.observability import NULL_TELEMETRY

    if topology_name == "abilene":
        from repro.network.library import abilene

        topo = abilene()
    elif topology_name in ("isp-a", "isp-b", "isp-c"):
        from repro.network import generators

        topo = getattr(generators, topology_name.replace("-", "_"))()
    else:
        raise SystemExit(f"unknown --topology {topology_name!r}")
    return ITracker(
        topology=topo, pid_map=uniform_pid_map(topo), telemetry=NULL_TELEMETRY
    )


def _run_loadtest(args: argparse.Namespace, out) -> int:
    import json

    from repro.observability import NULL_TELEMETRY
    from repro.workloads.loadgen import LoadSpec, build_schedule, format_summary, run

    probe = _loadtest_itracker(args.topology)
    spec = LoadSpec(
        connections=args.connections,
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        churn=args.churn,
        pid_pool=tuple(probe.get_pdistances().pids),
    )
    schedule = build_schedule(spec)
    summaries: Dict[str, Dict] = {}
    if args.server in ("threaded", "both"):
        from repro.portal.server import PortalServer

        with PortalServer(
            _loadtest_itracker(args.topology), telemetry=NULL_TELEMETRY
        ) as server:
            summary = run(spec, server.address, schedule=schedule)
        summaries["threaded"] = summary.to_document()
        if args.format == "text":
            print(format_summary("threaded", summary), file=out)
    if args.server in ("async", "both"):
        from repro.portal.aserver import AsyncPortalServer

        with AsyncPortalServer(
            _loadtest_itracker(args.topology),
            workers=args.workers,
            accept_model=args.accept_model,
            telemetry=NULL_TELEMETRY,
        ) as server:
            summary = run(spec, server.address, schedule=schedule)
        summaries["async"] = summary.to_document()
        if args.format == "text":
            print(format_summary("async", summary), file=out)
    if args.format == "text" and len(summaries) == 2:
        speedup = summaries["async"]["qps"] / max(summaries["threaded"]["qps"], 1e-9)
        print(f"async/threaded QPS ratio: {speedup:.2f}x", file=out)
    if args.format == "json":
        print(json.dumps(summaries, sort_keys=True, indent=2), file=out)
    failed = sum(doc["errors"] for doc in summaries.values())
    return 1 if failed else 0


_EXPERIMENTS: Dict[str, Callable] = {
    "table1": _run_table1,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fieldtest": _run_fieldtest,
    "sec8": _run_sec8,
    "ablations": _run_ablations,
    "telemetry": _run_telemetry,
    "lint": _run_lint,
    "chaos": _run_chaos,
    "overload": _run_overload,
    "fuzz": _run_fuzz,
    "trace": _run_trace,
    "loadtest": _run_loadtest,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the P4P paper (SIGCOMM 2008).",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("table1", help="Table 1: networks evaluated")
    fig6 = sub.add_parser("fig6", help="Fig. 6: Abilene BitTorrent comparison")
    fig6.add_argument("--peers", type=int, default=120)
    fig6.add_argument("--runs", type=int, default=2)
    for name in ("fig7", "fig8"):
        sweep = sub.add_parser(name, help=f"{name}: swarm-size sweep")
        sweep.add_argument("--sizes", type=int, nargs="+", default=[100, 200])
    fig9 = sub.add_parser("fig9", help="Fig. 9: Liveswarms volumes")
    fig9.add_argument("--clients", type=int, default=40)
    fig9.add_argument("--duration", type=float, default=300.0)
    fig10 = sub.add_parser("fig10", help="Fig. 10: interdomain charging")
    fig10.add_argument("--peers", type=int, default=100)
    fieldtest = sub.add_parser("fieldtest", help="Figs. 11/12, Tables 2/3")
    fieldtest.add_argument("--clients", type=int, default=600)
    sec8 = sub.add_parser("sec8", help="Sec. 8: swarm-population tail")
    sec8.add_argument("--swarms", type=int, default=34_721)
    ablations = sub.add_parser("ablations", help="design-choice ablations")
    ablations.add_argument("--iterations", type=int, default=60)
    telemetry = sub.add_parser(
        "telemetry", help="scrape live portals' get_metrics and render them"
    )
    telemetry.add_argument(
        "--portal",
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="portal address; repeat to scrape several iTrackers",
    )
    telemetry.add_argument(
        "--format",
        choices=("dashboard", "prometheus", "json"),
        default="dashboard",
    )
    telemetry.add_argument("--timeout", type=float, default=5.0)
    chaos = sub.add_parser(
        "chaos",
        help="seeded crash/partition/corruption scenario with invariant "
        "checks; exits non-zero on any violation",
    )
    chaos.add_argument("--seed", type=int, default=11)
    chaos.add_argument("--peers", type=int, default=12)
    chaos.add_argument(
        "--horizon", type=float, default=100.0,
        help="window of simulation time the seeded events land in",
    )
    chaos.add_argument(
        "--epsilon", type=float, default=0.15,
        help="relative MLU re-convergence tolerance vs the fault-free twin",
    )
    chaos.add_argument(
        "--no-state",
        action="store_true",
        help="restart the crashed portal without its state store "
        "(demonstrates the amnesiac-restart violations the store prevents)",
    )
    overload = sub.add_parser(
        "overload",
        help="seeded flash-crowd scenario replaying the real admission/"
        "brownout/drain state machines against an unprotected twin; "
        "exits non-zero on any overload-invariant violation",
    )
    overload.add_argument("--seed", type=int, default=0)
    overload.add_argument(
        "--multiple", type=float, default=2.0,
        help="offered load as a multiple of server capacity",
    )
    overload.add_argument("--duration", type=float, default=8.0)
    overload.add_argument(
        "--drain-at", type=float, default=6.0,
        help="simulation time at which the graceful drain starts",
    )
    overload.add_argument(
        "--no-drain", action="store_true",
        help="run the whole scenario without draining",
    )
    overload.add_argument("--format", choices=("text", "json"), default="text")
    fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided scenario fuzzer over the chaos, differential, "
        "and view-validation oracles; exits non-zero on any finding",
    )
    from repro.fuzz.cli import add_fuzz_arguments

    add_fuzz_arguments(fuzz)
    trace = sub.add_parser(
        "trace",
        help="run the scripted faulted scenario (or load an export) and "
        "render its distributed trace trees",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--format",
        choices=("tree", "json"),
        default="tree",
        help="tree: ASCII causal trees + critical paths; json: the "
        "canonical deterministic export document",
    )
    trace.add_argument(
        "--input",
        metavar="FILE",
        default=None,
        help="render a previously exported trace document instead of "
        "running the scripted scenario",
    )
    trace.add_argument(
        "--slowest",
        type=int,
        default=0,
        metavar="N",
        help="only render the N slowest traces (by root duration)",
    )
    loadtest = sub.add_parser(
        "loadtest",
        help="drive the threaded and/or asyncio portal with a seeded "
        "open-loop workload and report QPS + latency percentiles",
    )
    loadtest.add_argument(
        "--server", choices=("threaded", "async", "both"), default="both"
    )
    loadtest.add_argument("--connections", type=int, default=100)
    loadtest.add_argument(
        "--rate", type=float, default=2000.0,
        help="offered load, requests/second across all connections",
    )
    loadtest.add_argument("--duration", type=float, default=2.0)
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument(
        "--churn", type=float, default=0.005,
        help="probability a request is preceded by a reconnect",
    )
    loadtest.add_argument(
        "--workers", type=int, default=2, help="asyncio server worker loops"
    )
    loadtest.add_argument(
        "--accept-model", choices=("auto", "reuseport", "dispatcher"),
        default="auto",
    )
    loadtest.add_argument(
        "--topology", choices=("abilene", "isp-a", "isp-b", "isp-c"),
        default="abilene",
    )
    loadtest.add_argument("--format", choices=("text", "json"), default="text")
    lint = sub.add_parser(
        "lint", help="run p4plint, the AST-based invariant checker"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in _EXPERIMENTS:
            print(name, file=out)
        return 0
    status = _EXPERIMENTS[args.experiment](args, out)
    return int(status) if status is not None else 0


if __name__ == "__main__":
    raise SystemExit(main())
