"""Portal client: how appTrackers and peers query iTrackers remotely.

:class:`PortalClient` speaks the JSON wire protocol to one portal server
and caches the p-distance view until the server's version changes (the
scalability requirement of Sec. 4: aggregated information, cacheable, no
per-client queries).

:class:`Integrator` aggregates several portals -- the paper's "integrator
that aggregates the information from multiple iTrackers to interact with
applications" -- exposing the per-AS view mapping that
:class:`~repro.apptracker.selection.P4PSelection` consumes.

:func:`discover_itracker` emulates the DNS SRV discovery convention
(``p4p`` symbolic name) with an in-process registry.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.pdistance import PDistanceMap
from repro.core.policy import NetworkPolicy
from repro.portal import protocol


class PortalClientError(Exception):
    """Server returned an error or the connection failed."""


class PortalClient:
    """A connection to one iTracker portal."""

    def __init__(self, host: str, port: int, timeout: float = 5.0) -> None:
        self._address = (host, port)
        self._sock = socket.create_connection(self._address, timeout=timeout)
        self._cached_view: Optional[PDistanceMap] = None
        self._cached_version: Optional[int] = None

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "PortalClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _call(self, method: str, **params: Any) -> Any:
        try:
            self._sock.sendall(protocol.encode_frame(protocol.request(method, **params)))
            response = protocol.read_frame(self._sock)
        except (OSError, protocol.ProtocolError) as exc:
            raise PortalClientError(f"transport failure: {exc}") from exc
        if response is None:
            raise PortalClientError("server closed the connection")
        if "error" in response:
            raise PortalClientError(response["error"])
        return response.get("result")

    # -- interface methods -----------------------------------------------------

    def get_version(self) -> int:
        return int(self._call("get_version")["version"])

    def get_pdistances(self, pids: Optional[List[str]] = None) -> PDistanceMap:
        """Fetch the external view; full views are cached by version."""
        if pids is None:
            version = self.get_version()
            if self._cached_view is not None and version == self._cached_version:
                return self._cached_view
            view = protocol.pdistance_from_wire(self._call("get_pdistances"))
            self._cached_view = view
            self._cached_version = version
            return view
        return protocol.pdistance_from_wire(self._call("get_pdistances", pids=list(pids)))

    def get_policy(self) -> NetworkPolicy:
        return NetworkPolicy.from_document(self._call("get_policy"))

    def get_capabilities(self, requester: str, **filters: Any) -> List[Dict[str, Any]]:
        return self._call("get_capabilities", requester=requester, **filters)

    def lookup_pid(self, ip: str) -> Tuple[str, int]:
        result = self._call("lookup_pid", ip=ip)
        return result["pid"], int(result["as"])

    def get_alto_costmap(self, mode: str = "numerical") -> Dict[str, Any]:
        """The p-distance view as an ALTO cost-map document."""
        return self._call("get_alto_costmap", mode=mode)

    def get_alto_networkmap(self) -> Dict[str, Any]:
        """The PID map as an ALTO network-map document."""
        return self._call("get_alto_networkmap")


@dataclass
class Integrator:
    """Aggregates several portals into the per-AS view map P4P selection uses."""

    portals: Dict[int, PortalClient] = field(default_factory=dict)

    def add(self, as_number: int, client: PortalClient) -> None:
        self.portals[as_number] = client

    def views(self) -> Dict[int, PDistanceMap]:
        """One external view per AS; portals that fail are skipped (iTrackers
        are not on the critical path)."""
        collected: Dict[int, PDistanceMap] = {}
        for as_number, client in self.portals.items():
            try:
                collected[as_number] = client.get_pdistances()
            except PortalClientError:
                continue
        return collected

    def close(self) -> None:
        for client in self.portals.values():
            client.close()


#: In-process stand-in for DNS SRV records (domain -> portal address).
_SRV_REGISTRY: Dict[str, Tuple[str, int]] = {}


def register_itracker(domain: str, host: str, port: int) -> None:
    """Publish a portal address under a domain (the ``p4p`` SRV record)."""
    _SRV_REGISTRY[domain] = (host, port)


def discover_itracker(domain: str) -> Tuple[str, int]:
    """Resolve a domain's iTracker address; raises ``KeyError`` if absent."""
    return _SRV_REGISTRY[domain]


def clear_registry() -> None:
    """Testing helper: drop all registered SRV records."""
    _SRV_REGISTRY.clear()
