"""Portal client: how appTrackers and peers query iTrackers remotely.

:class:`PortalClient` speaks the JSON wire protocol to one portal server
and caches the p-distance view until the server's version changes (the
scalability requirement of Sec. 4: aggregated information, cacheable, no
per-client queries).

:class:`Integrator` aggregates several portals -- the paper's "integrator
that aggregates the information from multiple iTrackers to interact with
applications" -- exposing the per-AS view mapping that
:class:`~repro.apptracker.selection.P4PSelection` consumes.

:func:`discover_itracker` emulates the DNS SRV discovery convention
(``p4p`` symbolic name) with an in-process registry.
"""

from __future__ import annotations

import enum
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.pdistance import PDistanceMap
from repro.core.policy import NetworkPolicy
from repro.portal import protocol


class PortalClientError(Exception):
    """Server returned an error or the connection failed."""


class PortalTransportError(PortalClientError):
    """The connection itself failed (refused, reset, framing error).

    Distinct from a well-formed error *response*: transport failures are
    transient by nature and are what retry policies and circuit breakers
    (:mod:`repro.portal.resilience`) act on.
    """


class PortalTimeoutError(PortalTransportError):
    """The RPC deadline elapsed (server alive but slow).

    Still a transport failure for retry/breaker purposes, but exempt from
    the client's reconnect-and-resend path: resending after a timeout just
    doubles the wait.
    """


class PortalBusyError(PortalClientError):
    """The server shed this request under overload (``busy`` frame).

    Deliberately *not* a transport error: the server is alive and
    explicitly asking for backoff, so retry policies honor
    :attr:`retry_after` instead of counting a fault against the breaker
    (see :mod:`repro.portal.resilience`).
    """

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        #: Server's backoff hint in seconds (None when the frame carried
        #: none, or carried garbage -- the hint is advisory).
        self.retry_after = retry_after


class PortalDeadlineExceededError(PortalClientError):
    """The server abandoned the request because its deadline passed."""


class DiscoveryError(PortalClientError):
    """No iTracker is registered for the requested domain."""


class PortalClient:
    """A connection to one iTracker portal.

    ``telemetry`` (a :class:`repro.observability.Telemetry`) is optional;
    when given, every call records a per-method latency histogram and
    call/error counters, and full-view fetches record version-cache
    hits/misses -- the appTracker-side half of the paper's "aggregated,
    cacheable" scalability argument made measurable.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 5.0,
        telemetry: Optional[Any] = None,
        tracer: Optional[Any] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self._address = (host, port)
        self._timeout = timeout
        self._sock = socket.create_connection(self._address, timeout=timeout)
        self._cached_view: Optional[PDistanceMap] = None
        self._cached_version: Optional[int] = None
        self._telemetry = telemetry
        #: Per-request deadline budget (seconds) stamped on every frame's
        #: ``deadline`` envelope; the server abandons work it cannot
        #: answer inside the budget.  None: frames carry no deadline.
        self.deadline = deadline
        #: Optional :class:`repro.observability.Tracer`.  When set, every
        #: RPC becomes a ``client.call`` span (continuing the caller's
        #: active trace when one exists) and its context rides the
        #: request frame's ``trace`` envelope to the server.
        self.tracer = tracer
        if telemetry is not None:
            registry = telemetry.registry
            self._calls = registry.counter(
                "p4p_client_calls_total",
                "Portal RPCs issued, by method.",
                ("method",),
            )
            self._call_errors = registry.counter(
                "p4p_client_call_errors_total",
                "Portal RPCs that failed, by method and kind.",
                ("method", "kind"),
            )
            self._call_latency = registry.histogram(
                "p4p_client_call_latency_seconds",
                "Round-trip time per portal RPC, by method.",
                ("method",),
            )
            self._cache_events = registry.counter(
                "p4p_client_view_cache_total",
                "Full-view fetches resolved by the version cache, by outcome.",
                ("outcome",),
            )
            self._reconnects = registry.counter(
                "p4p_client_reconnects_total",
                "Sockets re-established after a server restart mid-session.",
            )

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "PortalClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _call(self, method: str, **params: Any) -> Any:
        if self._telemetry is None:
            return self._call_raw(method, **params)
        clock = self._telemetry.clock
        started = clock()
        self._calls.labels(method=method).inc()
        try:
            result = self._call_raw(method, **params)
        except PortalTransportError:
            self._call_errors.labels(method=method, kind="transport").inc()
            raise
        except PortalClientError:
            self._call_errors.labels(method=method, kind="response").inc()
            raise
        finally:
            self._call_latency.labels(method=method).observe(clock() - started)
        return result

    def _call_raw(self, method: str, **params: Any) -> Any:
        """One RPC round trip, surviving one server restart.

        A portal restart leaves this client holding a dead socket: the
        next send or read fails with EOF or a connection reset.  All
        portal methods are idempotent reads, so the frame is retried
        *exactly once* over a fresh connection before the failure
        propagates; timeouts are not retried (the server is alive but
        slow -- retrying doubles the wait for nothing).
        """
        message = protocol.request(method, **params)
        if self.deadline is not None:
            protocol.attach_deadline(message, self.deadline)
        tracer = self.tracer
        if tracer is None:
            return self._transact(protocol.encode_frame(message), None)
        span = tracer.start_trace("client.call", method=method)
        context = tracer.context_for(span)
        if context is not None:
            protocol.attach_trace(message, context.to_wire())
        frame = protocol.encode_frame(message)
        try:
            return self._transact(frame, span)
        except Exception as exc:
            span.set(error=type(exc).__name__)
            raise
        finally:
            tracer.buffer.finish(span)

    def _transact(self, frame: bytes, span: Optional[Any]) -> Any:
        try:
            return self._roundtrip(frame)
        except PortalTimeoutError:
            raise
        except PortalTransportError:
            self._reconnect()
            if span is not None:
                self.tracer.buffer.add_event(span, "reconnect")
            return self._roundtrip(frame)

    def _roundtrip(self, frame: bytes) -> Any:
        try:
            self._sock.sendall(frame)
            response = protocol.read_frame(self._sock)
        except socket.timeout as exc:
            raise PortalTimeoutError(f"portal timed out: {exc}") from exc
        except (OSError, protocol.ProtocolError) as exc:
            raise PortalTransportError(f"transport failure: {exc}") from exc
        if response is None:
            raise PortalTransportError("server closed the connection")
        if "error" in response:
            if response.get("busy"):
                hint = response.get("retry_after")
                if isinstance(hint, bool) or not isinstance(hint, (int, float)):
                    hint = None
                elif hint <= 0:
                    hint = None
                raise PortalBusyError(response["error"], retry_after=hint)
            if response.get("deadline_exceeded"):
                raise PortalDeadlineExceededError(response["error"])
            raise PortalClientError(response["error"])
        return response.get("result")

    def _reconnect(self) -> None:
        self.close()
        try:
            self._sock = socket.create_connection(self._address, timeout=self._timeout)
        except OSError as exc:
            raise PortalTransportError(f"reconnect failed: {exc}") from exc
        if self._telemetry is not None:
            self._reconnects.inc()

    # -- interface methods -----------------------------------------------------

    def get_version(self) -> int:
        return int(self._call("get_version")["version"])

    def get_version_info(self) -> Dict[str, Any]:
        """Full ``get_version`` document: ``version``, ``epoch``, and --
        when the server is a standby replica -- ``staleness`` seconds."""
        return self._call("get_version")

    def get_state_delta(self, since: int = -1) -> Dict[str, Any]:
        """Price-state records newer than version ``since`` (how a
        standby replica tails the primary's WAL over the wire)."""
        return self._call("get_state_delta", since=since)

    def get_pdistances(self, pids: Optional[List[str]] = None) -> PDistanceMap:
        """Fetch the external view; full views are cached by version.

        Partial views (``pids`` given) **bypass the version cache entirely**:
        every call issues a fresh RPC and neither reads nor updates the
        cached full view.  Callers that need offline fallback (e.g. the
        stale-view logic of
        :class:`~repro.portal.resilience.ResilientPortalClient`) must
        therefore fetch the *full* view and restrict it locally with
        :meth:`~repro.core.pdistance.PDistanceMap.restricted_to`.
        """
        if pids is None:
            version = self.get_version()
            if self._cached_view is not None and version == self._cached_version:
                self._count_cache("hit")
                return self._cached_view
            self._count_cache("miss")
            view = protocol.pdistance_from_wire(self._call("get_pdistances"))
            self._cached_view = view
            self._cached_version = version
            return view
        return protocol.pdistance_from_wire(self._call("get_pdistances", pids=list(pids)))

    def _count_cache(self, outcome: str) -> None:
        if self._telemetry is not None:
            self._cache_events.labels(outcome=outcome).inc()

    def get_policy(self) -> NetworkPolicy:
        return NetworkPolicy.from_document(self._call("get_policy"))

    def get_capabilities(self, requester: str, **filters: Any) -> List[Dict[str, Any]]:
        return self._call("get_capabilities", requester=requester, **filters)

    def lookup_pid(self, ip: str) -> Tuple[str, int]:
        result = self._call("lookup_pid", ip=ip)
        return result["pid"], int(result["as"])

    def get_alto_costmap(self, mode: str = "numerical") -> Dict[str, Any]:
        """The p-distance view as an ALTO cost-map document."""
        return self._call("get_alto_costmap", mode=mode)

    def get_alto_networkmap(self) -> Dict[str, Any]:
        """The PID map as an ALTO network-map document."""
        return self._call("get_alto_networkmap")

    def get_metrics(self, format: str = "json") -> Dict[str, Any]:
        """Scrape the portal's telemetry snapshot (``json`` or
        ``prometheus``; the latter returns ``{content_type, text}``)."""
        return self._call("get_metrics", format=format)


class PortalStatus(str, enum.Enum):
    """Health of one AS's portal as seen by the :class:`Integrator`."""

    OK = "ok"
    STALE = "stale"
    UNAVAILABLE = "unavailable"


@dataclass
class PortalHealth:
    """Per-AS degradation record exposed to the selection layer."""

    status: PortalStatus = PortalStatus.OK
    consecutive_failures: int = 0
    breaker_state: Optional[str] = None
    stale_age: Optional[float] = None
    last_error: Optional[str] = None


@dataclass
class Integrator:
    """Aggregates several portals into the per-AS view map P4P selection uses.

    Portal failures do not raise (iTrackers are not on the critical path);
    instead each AS's degradation state is recorded in :attr:`health` so
    :class:`~repro.apptracker.selection.P4PSelection` can fall back to
    native selection for the affected AS.  Clients exposing the
    :class:`~repro.portal.resilience.ResilientPortalClient` interface
    (``get_view``) additionally report stale-view serves and breaker state.
    """

    #: One client per AS: a plain :class:`PortalClient`, a
    #: :class:`~repro.portal.resilience.ResilientPortalClient`, or a
    #: :class:`~repro.portal.replication.FailoverPortalClient` spanning a
    #: primary and its standby replicas (multiple endpoints per AS).
    portals: Dict[int, Any] = field(default_factory=dict)
    health: Dict[int, PortalHealth] = field(default_factory=dict)
    #: Optional :class:`repro.observability.Telemetry`; when present each
    #: :meth:`views` pass records per-AS fetch latency and outcome counts.
    telemetry: Optional[Any] = None

    def add(self, as_number: int, client: Any) -> None:
        self.portals[as_number] = client
        self.health[as_number] = PortalHealth()

    def add_replicated(
        self, as_number: int, endpoints: List[Tuple[str, int]], **client_kwargs: Any
    ) -> Any:
        """Wire one AS to several replica endpoints (primary first) via a
        health-ranked :class:`~repro.portal.replication.
        FailoverPortalClient`; returns the client for further wiring."""
        from repro.portal.replication import FailoverPortalClient

        client = FailoverPortalClient(
            endpoints, telemetry=self.telemetry, **client_kwargs
        )
        self.add(as_number, client)
        return client

    def views(self) -> Dict[int, PDistanceMap]:
        """One external view per AS, freshest available (possibly stale).

        ASes whose portal is unavailable *and* past any stale fallback are
        omitted; their :attr:`health` entry flips to ``UNAVAILABLE`` so the
        selection layer degrades those sessions to native selection rather
        than silently losing the AS forever.
        """
        collected: Dict[int, PDistanceMap] = {}
        for as_number, client in self.portals.items():
            record = self.health.setdefault(as_number, PortalHealth())
            get_view = getattr(client, "get_view", None)
            started = self.telemetry.clock() if self.telemetry is not None else 0.0
            try:
                if get_view is not None:
                    snapshot = get_view()
                    collected[as_number] = snapshot.view
                    record.status = (
                        PortalStatus.STALE if snapshot.stale else PortalStatus.OK
                    )
                    record.stale_age = snapshot.age if snapshot.stale else None
                    if not snapshot.stale:
                        record.consecutive_failures = 0
                else:
                    collected[as_number] = client.get_pdistances()
                    record.status = PortalStatus.OK
                    record.stale_age = None
                    record.consecutive_failures = 0
            except PortalClientError as exc:
                record.status = PortalStatus.UNAVAILABLE
                record.consecutive_failures += 1
                record.last_error = str(exc)
            record.breaker_state = getattr(client, "breaker_state", None)
            self._record_fetch(as_number, record.status, started)
        return collected

    def _record_fetch(
        self, as_number: int, status: PortalStatus, started: float
    ) -> None:
        if self.telemetry is None:
            return
        registry = self.telemetry.registry
        registry.histogram(
            "p4p_integrator_view_latency_seconds",
            "Per-AS view fetch time, stale fallbacks included.",
            ("as_number",),
        ).labels(as_number=as_number).observe(self.telemetry.clock() - started)
        registry.counter(
            "p4p_integrator_views_total",
            "View fetch outcomes, by AS and health status.",
            ("as_number", "status"),
        ).labels(as_number=as_number, status=status.value).inc()

    def status_map(self) -> Dict[int, str]:
        """Plain ``{as_number: "ok" | "stale" | "unavailable"}`` view of
        :attr:`health`, the shape ``P4PSelection.portal_health`` consumes."""
        return {
            as_number: record.status.value
            for as_number, record in self.health.items()
        }

    def close(self) -> None:
        for client in self.portals.values():
            client.close()


#: In-process stand-in for DNS SRV records (domain -> portal address).
_SRV_REGISTRY: Dict[str, Tuple[str, int]] = {}


def register_itracker(domain: str, host: str, port: int) -> None:
    """Publish a portal address under a domain (the ``p4p`` SRV record)."""
    _SRV_REGISTRY[domain] = (host, port)


def discover_itracker(domain: str) -> Tuple[str, int]:
    """Resolve a domain's iTracker address.

    Raises :class:`DiscoveryError` when no portal is registered for the
    domain (the SRV lookup equivalent of NXDOMAIN).
    """
    try:
        return _SRV_REGISTRY[domain]
    except KeyError:
        raise DiscoveryError(
            f"no iTracker registered for domain {domain!r}"
        ) from None


def clear_registry() -> None:
    """Testing helper: drop all registered SRV records."""
    _SRV_REGISTRY.clear()
