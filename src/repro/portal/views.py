"""Versioned, sharded, copy-on-update publication of iTracker views.

The blocking portal server recomputes the full external view on every
``get_pdistances`` request -- correct, and exactly what caps its
throughput.  The view is *read-mostly*: it changes only when the price
state's ``(epoch, version)`` identity advances (once per update period),
while "millions of users" read it in between.  This module turns that
asymmetry into the async serving plane's hot path:

* :class:`ShardedView` -- one immutable raw external view, partitioned
  over PID space (stable hash of the source PID -> shard).  Restricting
  to a swarm's PID footprint touches only the shards owning those
  sources instead of scanning the full mesh, and reassembles rows in
  exactly the order :meth:`~repro.core.pdistance.PDistanceMap.
  restricted_to` would produce -- the wire bytes must not depend on
  which server computed them.

* :class:`ViewPublisher` -- versioned copy-on-update publication with
  request coalescing.  Readers grab the current published snapshot with
  one attribute read (no lock); when the iTracker's identity has moved
  on, exactly *one* caller computes the replacement snapshot while every
  concurrent identical request parks on the same in-flight future and
  receives the published result (k concurrent ``get_pdistances`` -> one
  view computation, k replies).  Publication swaps a single reference,
  so a reader never observes a half-built snapshot.

Degradations (privacy perturbation, rank coarsening) are applied per
request *after* restriction via :meth:`~repro.core.itracker.ITracker.
finish_view`, seeded by the snapshot's version -- the same order and
seed the iTracker uses inline, which is what keeps the cached path
bit-identical to the blocking server's.
"""

from __future__ import annotations

import threading
import zlib
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.itracker import ITracker
from repro.core.pdistance import PDistanceMap

#: How long a coalesced reader waits on the in-flight computation before
#: giving up and computing its own view (a safety valve, not a code path
#: any healthy portal takes: view computation is CPU-bound and finite).
COALESCE_TIMEOUT = 60.0


def shard_of(pid: str, n_shards: int) -> int:
    """Stable PID -> shard index (crc32, *not* ``hash()``: the built-in
    is salted per process, and shard placement must be deterministic)."""
    return zlib.crc32(pid.encode("utf-8")) % n_shards


class ShardedView:
    """One immutable external view, partitioned by source PID.

    Each shard maps ``src -> [(dst, value), ...]`` with rows in the full
    view's insertion order (the intra-PID ``(src, src)`` entry first,
    then destinations in PID order) -- the invariant that lets
    :meth:`restricted` rebuild byte-identical sub-views.
    """

    def __init__(self, view: PDistanceMap, n_shards: int = 8) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.view = view
        self.n_shards = n_shards
        shards: List[Dict[str, List[Tuple[str, float]]]] = [
            {} for _ in range(n_shards)
        ]
        for (src, dst), value in view.distances.items():
            shards[shard_of(src, n_shards)].setdefault(src, []).append((dst, value))
        self._shards: Tuple[Dict[str, List[Tuple[str, float]]], ...] = tuple(shards)

    def shard_sizes(self) -> List[int]:
        """Row count per shard (for tests and the shard-balance gauge)."""
        return [
            sum(len(rows) for rows in shard.values()) for shard in self._shards
        ]

    def restricted(self, pids: Sequence[str]) -> PDistanceMap:
        """Sub-view over ``pids``, equal to ``view.restricted_to(pids)``.

        Iterates kept sources in full-view PID order and each source's
        rows in insertion order, so the resulting distance dict -- and
        therefore its JSON wire encoding -- matches the unsharded
        restriction exactly.
        """
        requested = set(pids)
        keep = [pid for pid in self.view.pids if pid in requested]
        keep_set = set(keep)
        distances: Dict[Tuple[str, str], float] = {}
        for src in keep:
            rows = self._shards[shard_of(src, self.n_shards)].get(src, ())
            for dst, value in rows:
                if dst in keep_set:
                    distances[(src, dst)] = value
        return PDistanceMap(pids=tuple(keep), distances=distances)


class _Snapshot:
    """One published generation: raw shards plus the finished full view."""

    __slots__ = ("key", "sharded", "full")

    def __init__(
        self,
        key: Tuple[int, int],
        sharded: ShardedView,
        full: PDistanceMap,
    ) -> None:
        self.key = key  # (epoch, version) identity of the price state
        self.sharded = sharded
        self.full = full


class ViewPublisher:
    """Copy-on-update view cache with cross-thread request coalescing.

    Thread-safe by construction: reads are a single reference grab;
    writers serialize on a mutex only to decide ownership of one
    computation per ``(epoch, version)`` key, and the computation itself
    runs outside the lock.  Shared by every worker of the async server
    (and safe under the blocking server's handler threads too), so the
    full-mesh aggregation runs once per price update per process, no
    matter how many workers or connections observe the new version.
    """

    def __init__(
        self,
        itracker: ITracker,
        n_shards: int = 8,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.itracker = itracker
        self.n_shards = n_shards
        self._lock = threading.Lock()
        self._current: Optional[_Snapshot] = None
        self._inflight: Dict[Tuple[int, int], "Future[_Snapshot]"] = {}
        self._telemetry = telemetry
        if telemetry is not None:
            registry = telemetry.registry
            self._publications = registry.counter(
                "p4p_portal_view_publications_total",
                "View snapshots computed and published (once per version).",
            ).labels()
            self._serves = registry.counter(
                "p4p_portal_view_serves_total",
                "View reads, by how the snapshot was obtained.",
                ("outcome",),
            )
            self._served_published = self._serves.labels(outcome="published")
            self._served_computed = self._serves.labels(outcome="computed")
            self._served_coalesced = self._serves.labels(outcome="coalesced")
            self._served_stale = self._serves.labels(outcome="stale")
        else:
            self._publications = None
            self._served_published = None
            self._served_computed = None
            self._served_coalesced = None
            self._served_stale = None

    # -- identity ----------------------------------------------------------

    def _identity(self) -> Tuple[int, int]:
        itracker = self.itracker
        return (getattr(itracker, "epoch", 0), itracker.version)

    def is_current(self) -> bool:
        """True when the published snapshot matches the price state."""
        snapshot = self._current
        return snapshot is not None and snapshot.key == self._identity()

    # -- publication -------------------------------------------------------

    def current(self) -> _Snapshot:
        """The snapshot for the iTracker's current identity.

        Served from the published reference when fresh; otherwise exactly
        one caller computes and publishes while concurrent callers
        coalesce onto its future.
        """
        key = self._identity()
        snapshot = self._current
        if snapshot is not None and snapshot.key == key:
            if self._served_published is not None:
                self._served_published.inc()
            return snapshot
        future: "Future[_Snapshot]"
        with self._lock:
            snapshot = self._current
            if snapshot is not None and snapshot.key == key:
                if self._served_published is not None:
                    self._served_published.inc()
                return snapshot
            existing = self._inflight.get(key)
            if existing is None:
                future = Future()
                self._inflight[key] = future
                owner = True
            else:
                future = existing
                owner = False
        if not owner:
            if self._served_coalesced is not None:
                self._served_coalesced.inc()
            return future.result(timeout=COALESCE_TIMEOUT)
        try:
            snapshot = self._compute(key)
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
            future.set_exception(exc)
            raise
        with self._lock:
            # Never replace a newer publication with an older compute
            # (the version may have advanced while we were building).
            if self._current is None or self._current.key <= key:
                self._current = snapshot
            self._inflight.pop(key, None)
        if self._served_computed is not None:
            self._served_computed.inc()
        future.set_result(snapshot)
        return snapshot

    def _compute(self, key: Tuple[int, int]) -> _Snapshot:
        telemetry = self._telemetry
        if telemetry is not None:
            traces = telemetry.traces
            span = traces.start("portal.view_publish", version=key[1], epoch=key[0])
        else:
            traces = span = None
        raw = self.itracker.view_snapshot()
        sharded = ShardedView(raw, n_shards=self.n_shards)
        full = self.itracker.finish_view(raw, version=key[1])
        if traces is not None and span is not None:
            span.set(pids=len(raw.pids))
            traces.finish(span)
        if self._publications is not None:
            self._publications.inc()
        return _Snapshot(key, sharded, full)

    # -- reads -------------------------------------------------------------

    def view(self, pids: Optional[Sequence[str]] = None) -> PDistanceMap:
        """What ``itracker.get_pdistances(pids=pids)`` would return,
        served from the published snapshot."""
        snapshot = self.current()
        return self._finish(snapshot, pids)

    def has_published(self) -> bool:
        """True once any snapshot has ever been published (the brownout
        precondition: there must be *something* stale to serve)."""
        with self._lock:
            return self._current is not None

    def stale_view(
        self, pids: Optional[Sequence[str]] = None
    ) -> Optional[PDistanceMap]:
        """The last *published* snapshot, regardless of freshness.

        The brownout read path: under sustained overload the serving
        plane answers view reads from here without re-aggregating, so
        guidance stays available (explicitly degraded) while the
        aggregation cost is shed.  ``None`` before the first
        publication -- the caller must fall back to :meth:`view`.
        """
        with self._lock:
            snapshot = self._current
        if snapshot is None:
            return None
        if self._served_stale is not None:
            self._served_stale.inc()
        return self._finish(snapshot, pids)

    def _finish(
        self, snapshot: _Snapshot, pids: Optional[Sequence[str]]
    ) -> PDistanceMap:
        if pids is None:
            return snapshot.full
        restricted = snapshot.sharded.restricted(pids)
        return self.itracker.finish_view(restricted, version=snapshot.key[1])
