"""Portal resilience: retry, circuit breaking, stale views, validation.

The paper's operational premise (Sec. 4, Sec. 5.3) is that iTrackers are
*off the critical path*: appTrackers keep making peer-selection decisions
when a portal is slow, down, or returning garbage, degrade to native
selection, and recover when the portal returns.  This module supplies the
machinery:

* :class:`RetryPolicy` -- exponential backoff with decorrelated jitter,
  per-attempt and overall deadlines;
* :class:`CircuitBreaker` -- CLOSED -> OPEN after N consecutive transport
  failures -> HALF_OPEN probe after a cooldown;
* :func:`validate_view` -- sanity pass over a fetched p-distance view
  (finite, non-negative, full mesh, intra <= inter, bounded churn) so a
  buggy or byzantine iTracker cannot poison selection;
* :class:`ResilientPortalClient` -- wraps :class:`~repro.portal.client.
  PortalClient` with lazy connect/reconnect, retries, validation, and a
  *stale-view fallback*: the last good view is served (flagged, with age)
  while the portal is unreachable, up to a TTL, past which callers get an
  explicit :class:`PortalUnavailable` and selection falls back to native.

Everything is deterministic under an injected clock, sleep, and RNG so
simulations and unit tests reproduce exactly (no wall-clock coupling).
"""

from __future__ import annotations

import enum
import math
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.pdistance import PDistanceMap
from repro.portal.client import (
    PortalBusyError,
    PortalClient,
    PortalClientError,
    PortalTransportError,
)

Clock = Callable[[], float]
SleepFn = Callable[[float], None]


class PortalUnavailable(PortalClientError):
    """No fresh view could be fetched and no usable stale view remains."""


class ViewValidationError(PortalClientError):
    """A fetched p-distance view failed the sanity checks."""

    def __init__(self, problems: Sequence[str]) -> None:
        super().__init__("invalid p-distance view: " + "; ".join(problems))
        self.problems: Tuple[str, ...] = tuple(problems)


# -- retry policy ---------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with decorrelated jitter and deadlines.

    ``delays`` yields the sleep before each retry: the first is uniform in
    ``[base_delay, base_delay * multiplier]`` and each subsequent draw is
    uniform in ``[base_delay, previous * multiplier]``, capped at
    ``max_delay`` -- the "decorrelated jitter" scheme, which avoids both
    thundering herds and lock-step doubling.

    ``attempt_timeout`` bounds one RPC (it becomes the socket timeout);
    ``overall_deadline`` bounds the whole retried operation including
    backoff sleeps.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 3.0
    attempt_timeout: float = 5.0
    overall_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if self.attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be positive")

    def delays(self, rng: random.Random) -> Iterator[float]:
        """Backoff delays for retries 1..max_attempts-1 (deterministic for a
        seeded ``rng``)."""
        previous = self.base_delay
        for _ in range(self.max_attempts - 1):
            delay = min(
                self.max_delay,
                rng.uniform(self.base_delay, max(self.base_delay, previous) * self.multiplier),
            )
            previous = delay
            yield delay


# -- circuit breaker ------------------------------------------------------------


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures; probe after
    ``cooldown`` seconds.

    State machine: CLOSED counts consecutive failures and opens at the
    threshold; OPEN rejects calls until ``cooldown`` has elapsed on the
    injected clock, then HALF_OPEN admits a single probe -- success closes
    the breaker, failure re-opens it (restarting the cooldown).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Clock = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self.trip_count = 0
        self.probe_count = 0

    @property
    def state(self) -> BreakerState:
        self._maybe_half_open()
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = BreakerState.HALF_OPEN

    def allow(self) -> bool:
        """May a call proceed now?  Entering HALF_OPEN counts as a probe."""
        self._maybe_half_open()
        if self._state is BreakerState.OPEN:
            return False
        if self._state is BreakerState.HALF_OPEN:
            self.probe_count += 1
        return True

    def record_success(self) -> None:
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._maybe_half_open()
        self._consecutive_failures += 1
        if self._state is BreakerState.HALF_OPEN:
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
        elif (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            self.trip_count += 1


# -- p-distance validation ------------------------------------------------------


@dataclass(frozen=True)
class ValidationPolicy:
    """Which sanity checks :func:`validate_view` applies.

    ``max_churn_factor`` bounds per-version value churn: against the last
    accepted view, any pair whose distance grows or shrinks by more than
    this factor (among pairs both positive) is rejected -- the Sec. 4
    security discussion's defence against a buggy or malicious iTracker
    steering traffic with wild price swings.
    """

    require_finite: bool = True
    require_full_mesh: bool = True
    require_intra_le_inter: bool = True
    max_churn_factor: Optional[float] = 10.0
    expected_pids: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.max_churn_factor is not None and self.max_churn_factor < 1:
            raise ValueError("max_churn_factor must be >= 1")


def validate_view(
    view: PDistanceMap,
    policy: ValidationPolicy = ValidationPolicy(),
    previous: Optional[PDistanceMap] = None,
) -> None:
    """Raise :class:`ViewValidationError` unless ``view`` passes the checks.

    Checks: a non-empty PID set (unconditional), then, each gated by
    ``policy``: all distances finite and non-negative; full mesh over the
    advertised PIDs (no missing rows);
    intra-PID distance no larger than the smallest inter-PID distance from
    the same source (the paper's default cost ordering); PID set equal to
    the expected network map; churn versus ``previous`` bounded by
    ``max_churn_factor``.
    """
    problems: List[str] = []
    if not view.pids:
        # An empty PID set is never a usable view: selection over it can
        # only degrade every session, so pin to the stale cache instead.
        problems.append("empty PID set")
    if policy.expected_pids is not None and set(view.pids) != set(policy.expected_pids):
        missing = set(policy.expected_pids) - set(view.pids)
        extra = set(view.pids) - set(policy.expected_pids)
        problems.append(
            f"PID set mismatch (missing {sorted(missing)}, unexpected {sorted(extra)})"
        )
    if policy.require_finite:
        for pair, value in view.distances.items():
            if not math.isfinite(value) or value < 0:
                problems.append(f"non-finite or negative distance {value!r} for {pair}")
                break
    if policy.require_full_mesh:
        for src in view.pids:
            for dst in view.pids:
                if src != dst and (src, dst) not in view.distances:
                    problems.append(f"missing distance row ({src}, {dst})")
                    break
            else:
                continue
            break
    if policy.require_intra_le_inter and not problems:
        for src in view.pids:
            inter = [
                view.distances[(src, dst)]
                for dst in view.pids
                if dst != src and (src, dst) in view.distances
            ]
            if inter and view.distance(src, src) > min(inter) + 1e-12:
                problems.append(
                    f"intra-PID distance for {src} exceeds its cheapest inter-PID"
                )
                break
    if (
        policy.max_churn_factor is not None
        and previous is not None
        and not problems
    ):
        factor = policy.max_churn_factor
        for pair, value in view.distances.items():
            old = previous.distances.get(pair)
            if old is None or old <= 0 or value <= 0:
                continue
            if value > old * factor or value < old / factor:
                problems.append(
                    f"churn for {pair}: {old:.6g} -> {value:.6g} exceeds x{factor:g}"
                )
                break
    if problems:
        raise ViewValidationError(problems)


# -- the resilient client -------------------------------------------------------


@dataclass(frozen=True)
class ViewSnapshot:
    """A p-distance view plus its provenance, as served to the integrator."""

    view: PDistanceMap
    version: Optional[int]
    fetched_at: float
    stale: bool = False
    age: float = 0.0
    #: Restart generation of the serving iTracker; ``(epoch, version)``
    #: is the fully monotone price-state identity (a crash-restored
    #: portal bumps both; an amnesiac one resets both -- detectable).
    epoch: int = 0
    #: The *server's* advertised staleness when the serving portal is a
    #: standby replica (seconds behind its primary); None from a primary.
    origin_staleness: Optional[float] = None


class _NullCounters:
    """Stands in when no ResilienceCounters instance is wired up."""

    def __getattr__(self, name: str) -> Any:  # pragma: no cover - trivial
        return 0

    def __setattr__(self, name: str, value: Any) -> None:  # pragma: no cover
        pass


class ResilientPortalClient:
    """A :class:`PortalClient` that survives portal faults.

    * **Lazy connect / reconnect** -- no socket is opened until the first
      call; a broken socket is discarded and the next attempt reconnects.
    * **Retry** -- transport failures are retried per ``retry`` (backoff
      sleeps go through the injected ``sleep``; deadlines through
      ``clock``).
    * **Circuit breaking** -- consecutive transport failures trip
      ``breaker``; while OPEN no connection is attempted at all.
    * **Validation** -- every fetched full view passes
      :func:`validate_view` before being accepted; rejected views count as
      failures.
    * **Stale fallback** -- the last accepted view is kept with its version
      and fetch time; while the portal is unreachable (or the breaker is
      open) it is served flagged ``stale`` with its age, up to
      ``stale_ttl`` seconds, after which :class:`PortalUnavailable` is
      raised so callers degrade to native selection (Sec. 5.3).

    ``counters`` (a :class:`repro.management.monitors.ResilienceCounters`)
    receives retry/trip/stale/rejection telemetry when provided.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        stale_ttl: float = 120.0,
        validation: Optional[ValidationPolicy] = None,
        clock: Clock = time.monotonic,
        sleep: Optional[SleepFn] = None,
        rng: Optional[random.Random] = None,
        counters: Optional[Any] = None,
        client_factory: Callable[..., PortalClient] = PortalClient,
        tracer: Optional[Any] = None,
        deadline_budget: Optional[float] = None,
    ) -> None:
        if stale_ttl < 0:
            raise ValueError("stale_ttl must be >= 0")
        if deadline_budget is not None and deadline_budget <= 0:
            raise ValueError("deadline_budget must be positive when set")
        self._address = (host, port)
        self.retry = retry or RetryPolicy()
        self._clock = clock
        self.breaker = breaker or CircuitBreaker(clock=clock)
        self.stale_ttl = stale_ttl
        self.validation = validation or ValidationPolicy()
        self._sleep: SleepFn = sleep if sleep is not None else time.sleep
        # Deterministic by default (replayable simulations, DET001): seed
        # from the portal address, so each client's jitter stream is
        # reproducible yet decorrelated across different portals.
        self._rng = rng if rng is not None else random.Random(f"p4p:{host}:{port}")
        self.counters = counters if counters is not None else _NullCounters()
        #: Optional :class:`repro.observability.Tracer`: resilience
        #: decisions (retries, backoff, breaker rejections, stale serves)
        #: become span events on the active trace, and the underlying
        #: :class:`PortalClient` inherits it so each RPC is a child span.
        self.tracer = tracer
        #: When set, every request frame carries this ``deadline`` budget
        #: (seconds) so an overloaded server abandons work this client
        #: has already given up on.
        self.deadline_budget = deadline_budget
        self._client_factory = client_factory
        self._client: Optional[PortalClient] = None
        self._last_good: Optional[ViewSnapshot] = None

    # -- connection management ---------------------------------------------

    def _ensure_client(self) -> PortalClient:
        if self._client is None:
            try:
                self._client = self._client_factory(
                    *self._address, timeout=self.retry.attempt_timeout
                )
                self.counters.reconnects += 1
            except OSError as exc:
                raise PortalTransportError(f"connect failed: {exc}") from exc
            if self.tracer is not None:
                self._client.tracer = self.tracer
            if self.deadline_budget is not None:
                self._client.deadline = self.deadline_budget
        return self._client

    def _discard_client(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def close(self) -> None:
        self._discard_client()

    def __enter__(self) -> "ResilientPortalClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def breaker_state(self) -> str:
        return self.breaker.state.value

    @property
    def last_good(self) -> Optional[ViewSnapshot]:
        return self._last_good

    # -- tracing helpers ----------------------------------------------------

    def _event(self, name: str, **attributes: Any) -> None:
        """Record a resilience decision on the active span, if tracing."""
        if self.tracer is not None:
            self.tracer.event(name, **attributes)


    # -- retried invocation -------------------------------------------------

    def _invoke(self, operation: Callable[[PortalClient], Any]) -> Any:
        """Run ``operation`` with lazy connect, retry, and breaker checks.

        Only transport failures are retried; a server error *response* is
        deterministic and propagates immediately (without counting against
        the breaker).
        """
        if not self.breaker.allow():
            self._event("breaker-open")
            raise PortalTransportError("circuit breaker is open")
        deadline = (
            self._clock() + self.retry.overall_deadline
            if self.retry.overall_deadline is not None
            else None
        )
        delays = self.retry.delays(self._rng)
        attempt = 0
        while True:
            attempt += 1
            try:
                result = operation(self._ensure_client())
            except PortalBusyError as exc:
                # Overload shedding is the server *working as designed*,
                # not a fault: the connection stays up, the breaker sees
                # neither success nor failure (so shedding can never
                # cascade into breaker-open -> stale-serve flapping), and
                # the backoff honors the server's hint -- jittered, so a
                # synchronized busy wave doesn't return in lock-step.
                delay = next(delays, None)
                if delay is None:
                    raise
                pause = exc.retry_after if exc.retry_after is not None else delay
                pause *= self._rng.uniform(0.5, 1.5)
                if deadline is not None and self._clock() + pause > deadline:
                    raise
                self.counters.busy_backoffs += 1
                self._event("busy-backoff", attempt=attempt, delay=pause)
                self._sleep(pause)
                continue
            except PortalTransportError as exc:
                self._discard_client()
                self.breaker.record_failure()
                delay = next(delays, None)
                if delay is None or not self.breaker.allow():
                    raise
                if deadline is not None and self._clock() + delay > deadline:
                    raise PortalTransportError(
                        f"overall deadline exceeded: {exc}"
                    ) from exc
                self.counters.retries += 1
                self._event("retry", attempt=attempt, error=type(exc).__name__)
                self._event("backoff", delay=delay)
                self._sleep(delay)
                continue
            self.breaker.record_success()
            return result

    # -- pass-through interface methods -------------------------------------

    def get_version(self) -> int:
        return self._invoke(lambda client: client.get_version())

    def get_policy(self):
        return self._invoke(lambda client: client.get_policy())

    def get_capabilities(self, requester: str, **filters: Any):
        return self._invoke(
            lambda client: client.get_capabilities(requester, **filters)
        )

    def lookup_pid(self, ip: str) -> Tuple[str, int]:
        return self._invoke(lambda client: client.lookup_pid(ip))

    # -- the resilient view fetch -------------------------------------------

    def get_view(self, pids: Optional[Sequence[str]] = None) -> ViewSnapshot:
        """The freshest usable view, possibly stale (then flagged with age).

        Fetches the *full* view (partial fetches bypass the portal's version
        cache and would starve the stale fallback -- see
        :meth:`PortalClient.get_pdistances`), validates it, and restricts it
        locally when ``pids`` is given.  Raises :class:`PortalUnavailable`
        when no fresh view can be fetched and the stale one is absent or
        past :attr:`stale_ttl`.
        """
        # Span names stay literal at the tracer call site (TEL001 audits
        # the span catalog statically, like metric names).
        span_cm = (
            nullcontext()
            if self.tracer is None
            else self.tracer.trace("resilient.get_view")
        )
        with span_cm:
            try:
                snapshot = self.fetch_fresh()
            except PortalClientError as exc:
                snapshot = self._stale_or_raise(exc)
            if pids is not None:
                snapshot = replace(
                    snapshot, view=snapshot.view.restricted_to(list(pids))
                )
            return snapshot

    def get_pdistances(self, pids: Optional[Sequence[str]] = None) -> PDistanceMap:
        """Drop-in :meth:`PortalClient.get_pdistances`, resilience included."""
        return self.get_view(pids=pids).view

    def fetch_fresh(self) -> ViewSnapshot:
        """Fetch + validate a fresh full view, no stale fallback.

        This is the building block multi-endpoint failover composes: a
        :class:`~repro.portal.replication.FailoverPortalClient` tries
        ``fetch_fresh`` on every replica before settling for anyone's
        stale view.  Raises :class:`PortalClientError` on any failure.
        """

        def fetch(client: PortalClient) -> Tuple[PDistanceMap, int, int, Optional[float]]:
            # Prefer the full version document (epoch + replica staleness);
            # fall back to the bare version for minimal client stand-ins.
            info_fn = getattr(client, "get_version_info", None)
            if info_fn is not None:
                info = info_fn()
                version = int(info["version"])
                epoch = int(info.get("epoch", 0))
                staleness = info.get("staleness")
            else:
                version, epoch, staleness = client.get_version(), 0, None
            try:
                view = client.get_pdistances()
            except ValueError as exc:
                # e.g. negative distances rejected by PDistanceMap itself:
                # classify as a validation failure, not a crash.
                raise ViewValidationError([str(exc)]) from exc
            return view, version, epoch, staleness

        span_cm = (
            nullcontext()
            if self.tracer is None
            else self.tracer.trace("resilient.fetch")
        )
        try:
            with span_cm:
                view, version, epoch, staleness = self._invoke(fetch)
                previous = self._last_good.view if self._last_good else None
                validate_view(view, self.validation, previous=previous)
        except ViewValidationError:
            self.counters.validation_rejections += 1
            self.breaker.record_failure()
            self._event("validation-rejected")
            raise
        now = self._clock()
        snapshot = ViewSnapshot(
            view=view,
            version=version,
            fetched_at=now,
            epoch=epoch,
            origin_staleness=staleness,
        )
        self._last_good = snapshot
        self.counters.breaker_trips = self.breaker.trip_count
        self.counters.breaker_probes = self.breaker.probe_count
        return snapshot

    def stale_snapshot(self) -> Optional[ViewSnapshot]:
        """The last accepted view flagged stale with its age, if within
        :attr:`stale_ttl`; ``None`` when absent or expired.  Serving it
        counts as a stale serve."""
        if self._last_good is None:
            return None
        age = self._clock() - self._last_good.fetched_at
        if age > self.stale_ttl:
            return None
        self.counters.stale_serves += 1
        self._event("stale-serve", age=age)
        return replace(self._last_good, stale=True, age=age)

    def _stale_or_raise(self, cause: PortalClientError) -> ViewSnapshot:
        self.counters.breaker_trips = self.breaker.trip_count
        self.counters.breaker_probes = self.breaker.probe_count
        snapshot = self.stale_snapshot()
        if snapshot is not None:
            return snapshot
        self.counters.unavailable += 1
        raise PortalUnavailable(
            f"portal {self._address[0]}:{self._address[1]} unavailable and "
            f"stale view {'expired' if self._last_good else 'absent'}: {cause}"
        ) from cause
