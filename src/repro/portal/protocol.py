"""Wire protocol for the P4P portal.

The paper defines the iTracker interfaces in WSDL and serves them over
SOAP; the transport is incidental to the architecture, so this
implementation uses length-prefixed JSON messages -- trivially debuggable
and dependency-free.  A request is a JSON object with a ``method`` and
``params``; a response carries ``result`` or ``error``.

Requests may additionally carry an optional top-level ``trace`` envelope
(:func:`attach_trace`) -- the distributed-tracing context
``{"trace_id", "span_ref", "sampled"}`` defined by
:class:`repro.observability.tracing.TraceContext`.  It rides *beside*
``params``, not inside them, so :data:`METHOD_SCHEMAS` and the API001
lint rule are unaffected; servers that predate tracing ignore it, and a
malformed envelope is ignored rather than rejected (tracing must never
fail a request).

Frame format: 4-byte big-endian payload length, then UTF-8 JSON.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.core.pdistance import PDistanceMap

_HEADER = struct.Struct(">I")

#: Maximum accepted frame size (guards against garbage input).
MAX_FRAME_BYTES = 16 * 1024 * 1024


class ProtocolError(Exception):
    """Malformed frame or message."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError("frame too large")
    return _HEADER.pack(len(payload)) + payload


def read_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF before a header."""
    framed = read_frame_ex(sock)
    return framed[0] if framed is not None else None


def read_frame_ex(
    sock: socket.socket,
) -> Optional[Tuple[Dict[str, Any], int]]:
    """Like :func:`read_frame` but also returns the wire size in bytes
    (header + payload) -- what byte-accounting instrumentation needs."""
    header = _read_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    payload = _read_exact(sock, length, allow_eof=False)
    assert payload is not None
    return _decode_payload(payload), _HEADER.size + length


def _decode_payload(payload: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


async def aread_frame_ex(reader: Any) -> Optional[Tuple[Dict[str, Any], int]]:
    """Asyncio twin of :func:`read_frame_ex` over a ``StreamReader``.

    Same contract: ``None`` on clean EOF before a header,
    :class:`ProtocolError` on a torn frame, an oversized length, or a
    malformed payload -- the async server must sever such connections
    exactly where the threaded server does.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _decode_payload(payload), _HEADER.size + length


def _read_exact(
    sock: socket.socket, n: int, allow_eof: bool
) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- object (de)serialization ---------------------------------------------------


def pdistance_to_wire(view: PDistanceMap) -> Dict[str, Any]:
    return {
        "pids": list(view.pids),
        "distances": [
            [src, dst, value] for (src, dst), value in view.distances.items()
        ],
    }


def pdistance_from_wire(document: Dict[str, Any]) -> PDistanceMap:
    try:
        pids = tuple(document["pids"])
        distances = {
            (src, dst): float(value) for src, dst, value in document["distances"]
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad p-distance document: {exc}") from exc
    return PDistanceMap(pids=pids, distances=distances)


# -- method schemas -------------------------------------------------------------

#: Wire schema of every dispatchable portal method: parameter name ->
#: ``(required, JSON type)``.  This is the single source of truth the
#: server validates requests against (:func:`validate_params`) and that
#: p4plint's API001 rule checks against ``PortalServer``'s ``_do_*``
#: handlers -- adding a handler without a schema entry (or orphaning an
#: entry) is a lint failure, not a latent bug.
METHOD_SCHEMAS: Dict[str, Dict[str, Tuple[bool, str]]] = {
    "get_pdistances": {"pids": (False, "array")},
    "get_policy": {},
    "get_capabilities": {
        "requester": (True, "string"),
        "kind": (False, "string"),
        "pid": (False, "string"),
        "content_id": (False, "string"),
    },
    "lookup_pid": {"ip": (True, "string")},
    "get_version": {},
    "get_state_delta": {"since": (False, "integer")},
    "get_metrics": {"format": (False, "string")},
    "get_alto_costmap": {
        "mode": (False, "string"),
        "pids": (False, "array"),
    },
    "get_alto_networkmap": {},
}

_JSON_TYPES: Dict[str, tuple] = {
    "string": (str,),
    "array": (list,),
    "object": (dict,),
    "number": (int, float),
    "integer": (int,),
    "boolean": (bool,),
}


def validate_params(method: str, params: Dict[str, Any]) -> None:
    """Check ``params`` against :data:`METHOD_SCHEMAS`.

    Raises :class:`ValueError` on an unknown parameter, a missing
    required one, or a type mismatch.  Unknown *methods* pass through --
    dispatch handles those with its own error.  ``None`` is accepted for
    optional parameters (clients send explicit nulls).
    """
    schema = METHOD_SCHEMAS.get(method)
    if schema is None:
        return
    for name in params:
        if name not in schema:
            raise ValueError(f"unexpected parameter {name!r} for {method}")
    for name, (required, type_name) in schema.items():
        value = params.get(name)
        if value is None:
            if required:
                raise ValueError(f"{name} is required")
            continue
        expected = _JSON_TYPES[type_name]
        if isinstance(value, bool) and bool not in expected:
            raise ValueError(
                f"parameter {name!r} for {method} must be {type_name}"
            )
        if not isinstance(value, expected):
            raise ValueError(
                f"parameter {name!r} for {method} must be {type_name}"
            )


def request(method: str, **params: Any) -> Dict[str, Any]:
    return {"method": method, "params": params}


def attach_trace(message: Dict[str, Any], envelope: Dict[str, Any]) -> Dict[str, Any]:
    """Attach a :class:`~repro.observability.tracing.TraceContext` wire
    document to a request message (top-level ``trace`` key)."""
    message["trace"] = envelope
    return message


def ok(result: Any) -> Dict[str, Any]:
    return {"result": result}


def error(message: str) -> Dict[str, Any]:
    return {"error": message}
